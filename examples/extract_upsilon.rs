//! Theorem 10 live: extract Υ^f from stable failure detectors via Fig. 3.
//!
//! Any stable detector strong enough to circumvent *some* f-resilient
//! impossibility can emulate Υ^f. This example runs the generic Fig. 3
//! reduction against four different detectors and prints the emulated
//! output timeline of each.
//!
//! Run with: `cargo run --example extract_upsilon`

use weakest_failure_detector::experiment::{run_fig3, StableSource};
use weakest_failure_detector::fd::{LeaderChoice, OmegaKChoice};
use weakest_failure_detector::sim::{FailurePattern, ProcessId, Time};
use weakest_failure_detector::table::Table;

fn main() {
    // One late crash: stabilized announcements happen while everyone is
    // alive, then survive the crash.
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(2), Time(12_000))
        .build();
    println!("pattern: {pattern}\n");

    let mut table = Table::new(
        "Fig. 3: emulated Upsilon^f from stable detectors",
        &[
            "source D",
            "f",
            "emulated stable set",
            "stable from",
            "steps",
            "verdict",
        ],
    );

    for (source, f) in [
        (StableSource::Omega(LeaderChoice::MinCorrect), 3usize),
        (StableSource::OmegaK(2, OmegaKChoice::default()), 2),
        (StableSource::Perfect, 3),
        (StableSource::EventuallyPerfect, 3),
    ] {
        let out = run_fig3(&pattern, source, f, Time(200), 7, 60_000);
        match &out.report {
            Ok(report) => {
                table.row([
                    out.source.clone(),
                    f.to_string(),
                    report.value.to_string(),
                    report.stable_from.to_string(),
                    out.total_steps.to_string(),
                    "satisfies Upsilon^f".to_string(),
                ]);
            }
            Err(e) => {
                table.row([
                    out.source.clone(),
                    f.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    out.total_steps.to_string(),
                    format!("VIOLATION: {e}"),
                ]);
            }
        }
        out.assert_ok();
    }
    println!("{table}");
    println!(
        "Every emulated set differs from correct(F) = {} — exactly",
        {
            let p = FailurePattern::builder(4)
                .crash(ProcessId(2), Time(12_000))
                .build();
            p.correct()
        }
    );
    println!("the \"very little information about failures\" Υ promises.");
}
