//! Inspect a run at the model's granularity: per-process summaries and an
//! event timeline, straight from the §3.3 run representation.
//!
//! Run with: `cargo run --example trace_explorer`

use weakest_failure_detector::agreement::{fig1, Fig1Config};
use weakest_failure_detector::fd::{UpsilonChoice, UpsilonOracle};
use weakest_failure_detector::render::{render_summary, render_timeline};
use weakest_failure_detector::sim::{
    FailurePattern, ProcessId, ProcessSet, SeededRandom, SimBuilder, Time, TraceLevel,
};

fn main() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(1), Time(30))
        .build();
    let proposals = [Some(11), Some(22), Some(33)];
    let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(60), 99);

    let mut builder = SimBuilder::<ProcessSet>::new(pattern)
        .oracle(oracle)
        .adversary(SeededRandom::new(99))
        .trace_level(TraceLevel::Full) // record op payloads for the timeline
        .max_steps(200_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let outcome = builder.run();

    println!("=== summary ===");
    print!("{}", render_summary(&outcome.run));

    println!("\n=== timeline (first/last 15 events) ===");
    print!(
        "{}",
        render_timeline(&outcome.run, Some(&outcome.memory), 15)
    );

    println!("\n=== shared-memory inventory ===");
    let mut by_name: std::collections::BTreeMap<&str, usize> = Default::default();
    for (_, key, _) in outcome.memory.inventory() {
        *by_name.entry(key.name()).or_default() += 1;
    }
    for (name, count) in by_name {
        println!("  {count:>3} × {name}[..]");
    }

    println!("\n=== run conditions (§3.3) ===");
    match outcome.run.validate_run_conditions() {
        Ok(()) => println!("  all satisfied"),
        Err(e) => println!("  VIOLATED: {e}"),
    }
}
