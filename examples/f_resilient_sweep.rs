//! Theorem 6 across the resilience spectrum: Υ^f + registers solve
//! f-set-agreement in E_f, for every f from consensus-like (f = 1) to
//! wait-free (f = n).
//!
//! Sweeps f and the actual number of crashes, runs the Fig. 2 protocol and
//! reports decisions, distinct values (must be ≤ f) and steps to decide.
//!
//! Run with: `cargo run --example f_resilient_sweep`

use weakest_failure_detector::experiment::{run_fig2, AgreementConfig};
use weakest_failure_detector::fd::UpsilonChoice;
use weakest_failure_detector::sim::{FailurePattern, ProcessId, Time};
use weakest_failure_detector::table::Table;

fn main() {
    let n_plus_1 = 5;
    println!("Fig. 2 (Υ^f-based f-set-agreement), {n_plus_1} processes, distinct proposals.\n");

    let mut table = Table::new(
        "E2: f-resilient f-set agreement sweep",
        &[
            "f",
            "crashes",
            "decided values",
            "distinct",
            "bound ok",
            "steps",
        ],
    );

    for f in 1..=n_plus_1 - 1 {
        for crashes in 0..=f {
            let mut builder = FailurePattern::builder(n_plus_1);
            for c in 0..crashes {
                builder = builder.crash(ProcessId(c), Time(40 + 30 * c as u64));
            }
            let pattern = builder.build();
            let cfg = AgreementConfig::new(pattern).seed(f as u64 * 10 + crashes as u64);
            let out = run_fig2(&cfg, f, UpsilonChoice::default());
            out.assert_ok();
            table.row([
                f.to_string(),
                crashes.to_string(),
                format!("{:?}", out.distinct),
                out.distinct.len().to_string(),
                (out.distinct.len() <= f).to_string(),
                out.total_steps.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("Every row satisfies Termination, Agreement (≤ f values) and Validity.");
}
