//! A guided tour through the paper's results, in order, each demonstrated
//! live in a few seconds.
//!
//! Run with: `cargo run --release --example paper_tour`

use weakest_failure_detector::experiment::{
    run_fig1, run_fig2, run_fig3, run_upsilon1_consensus, AgreementConfig, Sched, StableSource,
};
use weakest_failure_detector::extract::{play, ActivityCandidate, GameConfig, GameVerdict};
use weakest_failure_detector::fd::{LeaderChoice, UpsilonChoice, UpsilonNoise};
use weakest_failure_detector::matrix::hierarchy_table;
use weakest_failure_detector::sim::{FailurePattern, ProcessId, Time};

fn heading(s: &str) {
    println!("\n━━━ {s} ━━━");
}

fn main() {
    println!("On the weakest failure detector ever — the results, live.");

    heading("§4: Υ, the oracle that knows almost nothing");
    println!(
        "Υ eventually outputs, at all correct processes, one common set that is\n\
         NOT the set of correct processes. One excluded candidate among 2^(n+1)−1;\n\
         before that: arbitrary garbage."
    );

    heading("Theorem 2 (Fig. 1): Υ + registers beat wait-free set agreement");
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(1), Time(60))
        .build();
    let cfg = AgreementConfig::new(pattern)
        .seed(1)
        .stabilize_at(Time(150));
    let out = run_fig1(&cfg, UpsilonChoice::default());
    out.assert_ok();
    println!(
        "4 processes, 1 crash, distinct proposals → decisions {:?} ({} value(s) ≤ n = 3), \
         {} steps.",
        out.decided,
        out.distinct.len(),
        out.total_steps
    );

    heading("The impossibility Υ breaks (worst-case view)");
    let cfg = AgreementConfig::new(FailurePattern::failure_free(4))
        .sched(Sched::RoundRobin)
        .noise(UpsilonNoise::ConstantAll)
        .stabilize_at(Time(500));
    let out = run_fig1(&cfg, UpsilonChoice::default());
    out.assert_ok();
    println!(
        "Under lock-step scheduling and useless noise, no decision can precede\n\
         Υ's stabilization at t=500 — and indeed the last decision lands at {}.",
        out.decided_by.expect("terminates")
    );

    heading("Theorem 6 (Fig. 2): the f-resilient generalization Υ^f");
    for f in [1usize, 2, 3] {
        let cfg = AgreementConfig::new(FailurePattern::failure_free(4)).seed(f as u64);
        let out = run_fig2(&cfg, f, UpsilonChoice::default());
        out.assert_ok();
        println!("  f = {f}: decided {:?} (≤ {f} values)", out.distinct);
    }

    heading("Theorem 1: and yet, Υ cannot emulate Ω_n");
    let verdict = play(GameConfig::theorem_1(4, 6), &ActivityCandidate);
    match verdict {
        GameVerdict::NeverStabilizes { changes, .. } => println!(
            "The proof's adversary forced a live candidate extractor through {changes}\n\
             output changes in 6 phases — it can be kept changing forever."
        ),
        GameVerdict::Refuted { .. } => unreachable!("the activity candidate is live"),
    }

    heading("Theorem 10 (Fig. 3): every stable non-trivial detector yields Υ^f");
    let pattern = FailurePattern::failure_free(3);
    for source in [
        StableSource::Omega(LeaderChoice::MinCorrect),
        StableSource::Perfect,
    ] {
        let out = run_fig3(&pattern, source, 2, Time(100), 3, 40_000);
        out.assert_ok();
        println!(
            "  from {}: emulated stable set {}",
            out.source,
            out.report.as_ref().expect("valid").value
        );
    }

    heading("§5.3: the f = 1 exception — consensus from Υ¹");
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(2), Time(70))
        .build();
    let cfg = AgreementConfig::new(pattern).seed(9);
    let out = run_upsilon1_consensus(&cfg, UpsilonChoice::default());
    out.assert_ok();
    println!(
        "Υ¹ → Ω (timestamps) → consensus, composed end to end: decided {:?}.",
        out.distinct
    );

    heading("The hierarchy, revalidated live");
    println!("{}", hierarchy_table());

    println!(
        "Υ is the weakest stable failure detector that is still good for anything —\n\
         and this repository just re-proved it empirically. See EXPERIMENTS.md."
    );
}
