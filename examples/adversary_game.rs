//! Theorems 1 and 5 live: no algorithm extracts Ω_n (or Ω^f, f ≥ 2) from Υ.
//!
//! The proofs build a run in which any candidate's output is forced to
//! change forever. This example plays that run construction as a game
//! against three natural candidates and prints each verdict:
//!
//! * a *live* candidate gets dragged through an endless trajectory of sets
//!   (`NeverStabilizes`);
//! * a *stubborn* candidate is refuted: the adversary exhibits an extension
//!   where its stable set contains no correct process.
//!
//! Run with: `cargo run --example adversary_game`

use weakest_failure_detector::extract::{all_candidates, play, GameConfig, GameVerdict};
use weakest_failure_detector::table::Table;

fn main() {
    println!("Theorem 1 game: extract Omega_n from Upsilon, n+1 = 4 processes.");
    println!("The oracle is pinned to U = {{p1,p2,p3}} — legal whether p4 is");
    println!("correct or the others are faulty; that ambiguity is the weapon.\n");

    let mut table = Table::new(
        "Theorem 1 verdicts (8 phases)",
        &["candidate", "verdict", "forced changes", "detail"],
    );
    for candidate in all_candidates() {
        let verdict = play(GameConfig::theorem_1(4, 8), candidate.as_ref());
        match &verdict {
            GameVerdict::NeverStabilizes {
                changes,
                trajectory,
            } => {
                let path: Vec<String> = trajectory.iter().take(5).map(|s| s.to_string()).collect();
                table.row([
                    candidate.name().to_string(),
                    "never stabilizes".to_string(),
                    changes.to_string(),
                    format!("{} …", path.join(" -> ")),
                ]);
            }
            GameVerdict::Refuted {
                phase, stuck_on, ..
            } => {
                table.row([
                    candidate.name().to_string(),
                    "refuted".to_string(),
                    verdict.changes().to_string(),
                    format!(
                        "stuck on {stuck_on} at phase {phase}: if {stuck_on} crash, \
                         no correct process is ever trusted"
                    ),
                ]);
            }
        }
    }
    println!("{table}");

    println!("Theorem 5 generalization (Upsilon^f vs Omega^f), n+1 = 5:");
    let mut t5 = Table::new(
        "Theorem 5 verdicts (5 phases)",
        &["f", "candidate", "verdict"],
    );
    for f in 2..=4usize {
        for candidate in all_candidates() {
            let verdict = play(GameConfig::theorem_5(5, f, 5), candidate.as_ref());
            let label = match verdict {
                GameVerdict::NeverStabilizes { changes, .. } => {
                    format!("never stabilizes ({changes} changes)")
                }
                GameVerdict::Refuted { .. } => "refuted".to_string(),
            };
            t5.row([f.to_string(), candidate.name().to_string(), label]);
        }
    }
    println!("{t5}");
    println!("Either way each candidate fails — which is Theorem 1/5's claim,");
    println!("instantiated. (For f = 1 the game refuses to run: Υ¹ → Ω is");
    println!("genuinely possible; see `cargo run --example quickstart`.)");
}
