//! §6.1 made concrete: a detector that reveals only the **parity of the
//! number of correct processes** is still non-trivial — and therefore, by
//! the paper's argument, strong enough to emulate Υ and beat the wait-free
//! set-agreement impossibility.
//!
//! The witness map φ is *computed* here (brute force over the correct
//! sets), not hand-written: for faithful detectors the non-constructive
//! step of Corollary 9 becomes an enumeration.
//!
//! Run with: `cargo run --example parity_detector`

use weakest_failure_detector::agreement::{check_k_set_agreement, fig1, Fig1Config};
use weakest_failure_detector::extract::{extraction_algorithm, FaithfulSpec};
use weakest_failure_detector::fd::{
    check_upsilon, held_variable_samples, UpsilonChoice, UpsilonOracle,
};
use weakest_failure_detector::sim::{
    FailurePattern, Output, ProcessId, ProcessSet, SeededRandom, SimBuilder, Time,
};

fn main() {
    let n_plus_1 = 3;
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(1), Time(9_000))
        .build();
    println!(
        "pattern: {pattern}  (correct = {}, |correct| = 2, even)",
        pattern.correct()
    );

    // The detector: "is the number of correct processes even?"
    let spec = FaithfulSpec::from_fn(n_plus_1, |c| c.len() % 2 == 0);
    println!("\nStage 0 — the faithful 'parity' detector:");
    for c in ProcessSet::all_nonempty_subsets(n_plus_1) {
        println!("  correct = {c:<12} -> {}", spec.output_for(c));
    }
    assert!(spec.is_non_trivial());

    // Stage 1: compute φ by enumeration (the §6.1 observation).
    let phi = spec.compute_phi(2);
    println!("\nStage 1 — computed witness map φ:");
    for d in [true, false] {
        let w = phi(&d);
        println!(
            "  stable output {d:<5} -> announce {} after {} batch(es)  \
             (its parity is {}, ≠ {d})",
            w.s,
            w.w,
            spec.output_for(w.s)
        );
    }

    // Stage 2: run Fig. 3 with the computed φ; validate against Υ's spec.
    let oracle = spec.oracle(&pattern, Time(80), 9);
    let run = SimBuilder::<bool>::new(pattern.clone())
        .oracle(oracle)
        .adversary(SeededRandom::new(9))
        .max_steps(40_000)
        .spawn_all(|_| extraction_algorithm(phi.clone()))
        .run()
        .run;
    let published: Vec<_> = run
        .outputs()
        .iter()
        .filter_map(|(t, p, o)| match o {
            Output::LeaderSet(s) => Some((*t, *p, *s)),
            _ => None,
        })
        .collect();
    let samples = held_variable_samples(n_plus_1, &published, Time(run.total_steps()));
    let report = check_upsilon(&pattern, &samples, 1).expect("parity emulates Υ");
    println!(
        "\nStage 2 — Fig. 3 on the parity detector emulated Υ: stable output {}",
        report.value
    );
    println!(
        "           (≠ correct = {}, as Υ requires)",
        pattern.correct()
    );

    // Stage 3: feed the extracted set into Fig. 1 as a pinned Υ and solve
    // set agreement.
    let proposals = [Some(1), Some(2), Some(3)];
    let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::Fixed(report.value), Time(0), 9);
    let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
        .oracle(oracle)
        .adversary(SeededRandom::new(9))
        .max_steps(400_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let run = builder.run().run;
    check_k_set_agreement(&run, 2, &proposals).expect("set agreement from parity");
    println!(
        "\nStage 3 — Fig. 1 driven by that set solved 2-set agreement: decisions {:?}",
        run.decisions()
    );
    println!(
        "\nKnowing only a single bit about failures — the parity of the number of\n\
         correct processes — was enough to circumvent the wait-free impossibility."
    );
}
