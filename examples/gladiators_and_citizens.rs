//! The gladiators-and-citizens dynamics of the Fig. 1 protocol, narrated.
//!
//! Υ eventually splits the processes into *gladiators* (inside the output
//! set U) and *citizens* (outside). Gladiators must eliminate one of their
//! values — guaranteed if one of them crashes — or adopt a citizen's value;
//! either way one proposal dies and n-converge can commit. This example
//! pins the stable set with [`UpsilonChoice::Fixed`] and shows both
//! endgames of Theorem 2's proof.
//!
//! Run with: `cargo run --example gladiators_and_citizens`

use weakest_failure_detector::agreement::{check_k_set_agreement, fig1, Fig1Config};
use weakest_failure_detector::fd::{UpsilonChoice, UpsilonOracle};
use weakest_failure_detector::sim::{
    FailurePattern, ProcessId, ProcessSet, SeededRandom, SimBuilder, Time,
};

fn narrate(title: &str, pattern: FailurePattern, stable: ProcessSet) {
    println!("=== {title} ===");
    println!("pattern    : {pattern}");
    println!("stable U   : {stable}   (gladiators)");
    println!("citizens   : {}", stable.complement(pattern.n_plus_1()));

    let n_plus_1 = pattern.n_plus_1();
    let proposals: Vec<Option<u64>> = (0..n_plus_1).map(|i| Some(10 * (i as u64 + 1))).collect();
    let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::Fixed(stable), Time(80), 1);

    let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
        .oracle(oracle)
        .adversary(SeededRandom::new(1))
        .max_steps(500_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let outcome = builder.run();
    check_k_set_agreement(&outcome.run, pattern.n(), &proposals).expect("Theorem 2");

    println!("proposals  : {proposals:?}");
    println!("decisions  : {:?}", outcome.run.decisions());
    let eliminated: Vec<u64> = proposals
        .iter()
        .flatten()
        .filter(|v| !outcome.run.decided_values().contains(v))
        .copied()
        .collect();
    println!("eliminated : {eliminated:?}  (at least one proposal must die)");
    let rounds = outcome
        .memory
        .inventory()
        .filter(|(_, key, _)| key.name() == "n-conv")
        .count();
    println!("rounds     : {rounds} round(s) of n-convergence were played");
    println!();
}

fn main() {
    // Endgame 1: a gladiator is faulty. U = Π and p3 crashes: the gladiators
    // eventually run (|U|−1)-converge among n survivors and commit.
    narrate(
        "a gladiator crashes",
        FailurePattern::builder(3)
            .crash(ProcessId(2), Time(50))
            .build(),
        ProcessSet::all(3),
    );

    // Endgame 2: a citizen is correct. U = {p1} in a failure-free run: the
    // citizen p2 (or p3) writes its value to D[r]; gladiator p1 adopts it.
    narrate(
        "a citizen saves the round",
        FailurePattern::failure_free(3),
        ProcessSet::from_iter([ProcessId(0)]),
    );

    // Endgame 3: U is a strict subset of the correct processes — both a
    // faulty-free gladiator arena and live citizens outside.
    narrate(
        "gladiators all correct, citizens too",
        FailurePattern::failure_free(4),
        ProcessSet::from_iter([ProcessId(1), ProcessId(2)]),
    );
}
