//! Quickstart: solve wait-free n-set-agreement with Υ and registers.
//!
//! This is the paper's headline result (Theorem 2) in a dozen lines: four
//! processes propose distinct values; the oracle Υ eventually tells everyone
//! one set that is *not* the set of correct processes; the Fig. 1 protocol
//! turns that sliver of information into 3-set agreement, which is
//! impossible without it.
//!
//! Run with: `cargo run --example quickstart`

use weakest_failure_detector::experiment::{run_fig1, AgreementConfig};
use weakest_failure_detector::fd::UpsilonChoice;
use weakest_failure_detector::sim::{FailurePattern, ProcessId, Time};

fn main() {
    // p2 crashes at step 60; Υ stabilizes at step 150 on Π − {p1}.
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(1), Time(60))
        .build();
    println!("pattern   : {pattern}");

    let cfg = AgreementConfig::new(pattern)
        .seed(42)
        .stabilize_at(Time(150));
    println!("proposals : {:?}", cfg.proposals);

    let outcome = run_fig1(&cfg, UpsilonChoice::default());
    outcome.assert_ok();

    println!("decisions : {:?}", outcome.decided);
    println!(
        "agreement : {} distinct value(s) decided (k = {} allowed)",
        outcome.distinct.len(),
        outcome.k
    );
    println!(
        "steps     : {} total, all decisions in by {}",
        outcome.total_steps,
        outcome.decided_by.expect("all correct processes decided")
    );
    println!("spec      : Termination ✓  Agreement ✓  Validity ✓");
}
