#![forbid(unsafe_code)]
//! Executable reproduction of *"On the weakest failure detector ever"*
//! (Guerraoui, Herlihy, Kuznetsov, Lynch, Newport; PODC 2007 / Distributed
//! Computing 2009). See the [`upsilon_core`] facade for the full API; the
//! `examples/` directory for runnable scenarios; and `upsilon-bench` for
//! the benchmarks regenerating every paper artifact.

pub use upsilon_core::*;
