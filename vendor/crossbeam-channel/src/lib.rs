//! Offline vendored stand-in for `crossbeam-channel`.
//!
//! Implements the unbounded MPMC subset the simulator's lockstep runtime
//! uses: [`unbounded`], cloneable [`Sender`]/[`Receiver`], blocking
//! [`Receiver::recv`], and disconnect semantics (send fails once every
//! receiver is gone; recv fails once the queue is empty and every sender is
//! gone). Built on `std` mutex + condvar; throughput is irrelevant here —
//! the simulator grants one step at a time anyway.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Error returned by [`Sender::send`] when every receiver has dropped;
/// carries the undelivered message.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has dropped.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, failing if every receiver has dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.lock();
        if st.receivers == 0 {
            return Err(SendError(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake blocked receivers so they observe the disconnect.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, failing once the channel is empty and
    /// every sender has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive: `None` when the queue is currently empty.
    pub fn try_recv(&self) -> Option<T> {
        self.chan.lock().queue.pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.lock().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || rx.recv().unwrap());
        tx.send(41u32).unwrap();
        assert_eq!(h.join().unwrap(), 41);
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx1.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
        assert_eq!(rx1.try_recv(), None);
    }
}
