//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x surface this workspace uses:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! head), `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`option::of`] and [`bool::ANY`].
//!
//! Differences from the real crate, on purpose:
//! - no shrinking — a failure reports the raw input that triggered it;
//! - generation is fully deterministic: each test's RNG is seeded from a
//!   hash of the test's name, so reruns explore the identical case list.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the deterministic generator.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($S:ident),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($S,)+) = self;
                    ($($S.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<T>` values: `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy (matching the real crate's default
    /// weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

pub mod test_runner {
    use rand::{RngCore, SplitMix64};

    /// Knobs honoured by the vendored runner. Construct with struct-update
    /// syntax over [`ProptestConfig::default`], as with the real crate.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections across the whole test.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// How a single generated case ended, when it did not simply pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case does not count, try another.
        Reject(String),
        /// An assertion failed — the property is violated.
        Fail(String),
    }

    /// Deterministic per-test generator: seeded from the test's name so a
    /// rerun explores the identical sequence of cases.
    pub struct TestRng(SplitMix64);

    impl TestRng {
        /// The generator for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(SplitMix64::new(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Drives one property: keeps generating inputs until `config.cases`
    /// of them pass, panicking on the first failure. No shrinking — the
    /// panic message carries the exact offending input.
    pub fn run<S, F>(name: &str, config: &ProptestConfig, strategy: &S, test: F)
    where
        S: crate::strategy::Strategy,
        S::Value: core::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::for_test(name);
        let mut rejects = 0u32;
        let mut passed = 0u32;
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: {rejects} rejects (last: {why}) \
                             with only {passed}/{} cases passed",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed after {passed} passing cases: \
                         {msg}\n    input: {shown}"
                    );
                }
            }
        }
    }
}

/// Everything a property-test file conventionally imports with
/// `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: an optional `#![proptest_config(..)]` head
/// followed by `#[test] fn name(arg in strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]: expands one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\nassertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
}

/// Discards the current case when `cond` is false; rejected cases do not
/// count toward the configured case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        /// Doc comments on items must parse.
        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u64..10, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_head_parses(b in crate::bool::ANY, o in crate::option::of(1u64..3)) {
            prop_assert!(usize::from(b) <= 1);
            if let Some(v) = o {
                prop_assert!(v == 1 || v == 2);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat =
            (0u64..1000, crate::collection::vec(0u64..50, 0..6)).prop_map(|(a, v)| (a, v.len()));
        let mut r1 = TestRng::for_test("some_test");
        let mut r2 = TestRng::for_test("some_test");
        let a: Vec<_> = (0..20).map(|_| strat.generate(&mut r1)).collect();
        let b: Vec<_> = (0..20).map(|_| strat.generate(&mut r2)).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed after")]
        fn failures_panic_with_input(x in 0u64..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
}
