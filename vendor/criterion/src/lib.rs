//! Offline vendored stand-in for `criterion`.
//!
//! Provides just enough of the criterion 0.5 API for the workspace's
//! benches to compile and run: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], and the `criterion_group!` / `criterion_main!`
//! macros. Instead of statistical sampling it times a small fixed number
//! of iterations per benchmark and prints one line each — enough to smoke
//! the benches and eyeball regressions, without crates.io.

use std::fmt::Display;
use std::time::Instant;

/// Iterations timed per benchmark. Tiny on purpose: the stand-in exists to
/// exercise the bench code paths, not to produce publishable numbers.
const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { elapsed_ns: 0 };
        f(&mut bencher, input);
        println!(
            "  {}/{}: {} ns over {ITERS} iters",
            self.group, id.0, bencher.elapsed_ns
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `ITERS` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Discourages the optimizer from deleting the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(10);
            for n in [1u64, 2, 3] {
                g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                    b.iter(|| (0..n).sum::<u64>());
                });
                ran += 1;
            }
            g.finish();
        }
        assert_eq!(ran, 3);
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("macro_demo");
        g.bench_with_input(BenchmarkId::new("id", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn criterion_group_macro_compiles_and_runs() {
        benches();
    }
}
