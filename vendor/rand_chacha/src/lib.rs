//! Offline vendored stand-in for `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`] with the two traits the workspace uses
//! (`SeedableRng::seed_from_u64` + `RngCore`). The repository relies on
//! *determinism per seed*, not on the ChaCha stream cipher itself, so the
//! stand-in runs a xoshiro256++ core seeded through SplitMix64 — the same
//! construction the real crate documents for `seed_from_u64`.

use rand::{RngCore, SeedableRng, SplitMix64};

/// Deterministic seeded generator (xoshiro256++ core).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        ChaCha8Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..64).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
