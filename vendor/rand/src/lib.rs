//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small, fully deterministic subset of the `rand` 0.8 API it actually
//! uses: [`Rng::gen_range`], [`Rng::gen`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. Every generator is a seeded SplitMix64 /
//! xorshift pipeline — a pure function of the seed, which is exactly the
//! property the simulator's determinism story depends on (no OS entropy, no
//! `thread_rng`, ever).

/// Low-level source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; equal seeds give equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, i32, i64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, matching `rand`'s behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, bound)` by rejection on the top bits.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return Standard::sample(rng);
                }
                start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform draw of a whole value of type `T`.
    #[allow(clippy::wrong_self_convention)]
    fn gen<T: Standard>(&mut self) -> T {
        Standard::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let f: f64 = Standard::sample(self);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: tiny, fast, full-period, and plenty for test workloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The "standard" generator: here a seeded SplitMix64 (the real `StdRng`
    /// API promises no particular algorithm, only determinism per seed).
    #[derive(Clone, Debug)]
    pub struct StdRng(SplitMix64);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Decorrelate consecutive seeds before handing them to SplitMix64.
            StdRng(SplitMix64::new(state ^ 0x5851_F42D_4C95_7F2D))
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extensions: shuffling and choosing.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs, (0..32).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn range_draws_cover_support() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements almost surely move");
        assert_eq!([1u8; 0].choose(&mut r), None);
    }
}
