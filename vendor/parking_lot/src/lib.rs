//! Offline vendored stand-in for `parking_lot`.
//!
//! Provides [`Mutex`] with the `parking_lot` calling convention the
//! simulator uses — `lock()` returns the guard directly (poisoning is
//! swallowed, matching `parking_lot`'s no-poisoning semantics) and
//! `into_inner()` recovers the value. Backed by `std::sync::Mutex`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free. A panic while the lock
    /// was held does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_counting() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn no_poisoning_on_panic() {
        let m = Arc::new(Mutex::new(5u8));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock stays usable after a panic");
    }
}
