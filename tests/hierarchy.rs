//! The failure-detector hierarchy around Υ, as the paper charts it:
//!
//! * Ω ≡ Υ for two processes (§4);
//! * Ω_n → Υ by complement, and the complemented oracle drives Fig. 1
//!   (Corollary 3's baseline);
//! * Υ¹ → Ω in E_1 (§5.3), hence consensus from Υ¹ (the pipeline);
//! * Ω_n boosts n-consensus objects to (n+1)-consensus (Corollary 4),
//!   while Υ cannot even emulate Ω_n (Theorem 1 game, see minimality.rs) —
//!   the strict separation of Corollary 4.

use weakest_failure_detector::experiment::{
    run_baseline_omega_k, run_boost, run_omega_consensus, run_upsilon1_consensus,
    run_upsilon1_to_omega, AgreementConfig, Sched,
};
use weakest_failure_detector::fd::{
    check_omega, check_upsilon, omega_from_upsilon_two_proc, upsilon_from_omega, LeaderChoice,
    OmegaKChoice, OmegaOracle, UpsilonChoice, UpsilonOracle,
};
use weakest_failure_detector::sim::{FailurePattern, Oracle, ProcessId, Time};

fn dense_samples<D: weakest_failure_detector::sim::FdValue>(
    pattern: &FailurePattern,
    oracle: &mut dyn Oracle<D>,
    horizon: u64,
) -> Vec<(Time, ProcessId, D)> {
    let mut out = Vec::new();
    for t in 0..horizon {
        for i in 0..pattern.n_plus_1() {
            let p = ProcessId(i);
            if !pattern.is_crashed_at(p, Time(t)) {
                out.push((Time(t), p, oracle.output(p, Time(t))));
            }
        }
    }
    out
}

/// §4's two-process equivalence, both directions, all patterns.
#[test]
fn two_process_equivalence_both_ways() {
    let patterns = [
        FailurePattern::failure_free(2),
        FailurePattern::builder(2)
            .crash(ProcessId(0), Time(10))
            .build(),
        FailurePattern::builder(2)
            .crash(ProcessId(1), Time(10))
            .build(),
    ];
    for pattern in &patterns {
        // Ω → Υ.
        let omega = OmegaOracle::new(pattern, LeaderChoice::MinCorrect, Time(30), 1);
        let mut ups = upsilon_from_omega(2, omega);
        let samples = dense_samples(pattern, &mut ups, 100);
        check_upsilon(pattern, &samples, 5).unwrap_or_else(|e| panic!("Ω→Υ {pattern}: {e}"));

        // Υ → Ω.
        let ups = UpsilonOracle::wait_free(pattern, UpsilonChoice::default(), Time(30), 2);
        let mut omega = omega_from_upsilon_two_proc(ups);
        let samples = dense_samples(pattern, &mut omega, 100);
        check_omega(pattern, &samples, 5).unwrap_or_else(|e| panic!("Υ→Ω {pattern}: {e}"));
    }
}

/// Corollary 3 baseline: Fig. 1 on the complement of Ω_n solves
/// n-set-agreement — so Ω_n is sufficient, just not necessary.
#[test]
fn omega_n_complement_baseline() {
    for seed in 0..4u64 {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(1), Time(40))
            .build();
        let cfg = AgreementConfig::new(pattern).seed(seed);
        let out = run_baseline_omega_k(&cfg, 3, OmegaKChoice::default());
        out.assert_ok();
    }
}

/// The Ω_k complement also yields k-set agreement for k < n (Ω_f → Υ^f).
#[test]
fn omega_f_complement_for_smaller_f() {
    let pattern = FailurePattern::builder(5)
        .crash(ProcessId(0), Time(50))
        .build();
    for k in 2..=3usize {
        let cfg = AgreementConfig::new(pattern.clone()).seed(k as u64);
        let out = run_baseline_omega_k(&cfg, k, OmegaKChoice::default());
        out.assert_ok();
        assert!(out.distinct.len() <= k);
    }
}

/// §5.3: Υ¹ → Ω in E_1 under every stable-choice shape.
#[test]
fn upsilon1_to_omega_extraction() {
    let patterns = [
        FailurePattern::failure_free(4),
        FailurePattern::builder(4)
            .crash(ProcessId(0), Time(60))
            .build(),
        FailurePattern::builder(4)
            .crash(ProcessId(3), Time(80))
            .build(),
    ];
    for pattern in &patterns {
        for choice in [UpsilonChoice::ComplementOfCorrect, UpsilonChoice::All] {
            let report = run_upsilon1_to_omega(pattern, choice, Time(150), 3, 50_000)
                .unwrap_or_else(|e| panic!("{pattern} {choice:?}: {e}"));
            assert!(
                pattern.is_correct(report.value),
                "elected leader must be correct"
            );
        }
    }
}

/// Consensus from Υ¹ end to end (extraction + Ω-consensus composed),
/// versus plain Ω-consensus — both decide a single value.
#[test]
fn consensus_from_upsilon1_matches_omega_consensus() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(2), Time(70))
        .build();
    for seed in 0..3u64 {
        let cfg = AgreementConfig::new(pattern.clone()).seed(seed);
        let via_upsilon1 = run_upsilon1_consensus(&cfg, UpsilonChoice::default());
        via_upsilon1.assert_ok();
        assert_eq!(via_upsilon1.distinct.len(), 1);

        let via_omega = run_omega_consensus(&cfg, LeaderChoice::MinCorrect);
        via_omega.assert_ok();
        assert_eq!(via_omega.distinct.len(), 1);
    }
}

/// Corollary 4's positive half: Ω_n + n-consensus objects solve
/// (n+1)-process consensus, even with n crashes and under round-robin.
#[test]
fn boosting_under_stress() {
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(0), Time(30))
        .crash(ProcessId(1), Time(60))
        .crash(ProcessId(2), Time(90))
        .build();
    for sched in [Sched::Random, Sched::RoundRobin] {
        let cfg = AgreementConfig::new(pattern.clone()).sched(sched).seed(2);
        let out = run_boost(&cfg, OmegaKChoice::default());
        out.assert_ok();
        assert_eq!(out.distinct.len(), 1);
    }
}

/// Late Ω_n stabilization does not endanger boosting safety.
#[test]
fn boosting_with_late_stabilization() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(1), Time(25))
        .build();
    let cfg = AgreementConfig::new(pattern)
        .stabilize_at(Time(700))
        .seed(11);
    let out = run_boost(&cfg, OmegaKChoice::OneCorrectRestFaulty);
    out.assert_ok();
}
