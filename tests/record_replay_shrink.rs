//! The record / replay / minimize debugging loop, end to end:
//! 1. record the schedule of a run exhibiting a property,
//! 2. replay it deterministically,
//! 3. shrink it with ddmin to a minimal interleaving that still exhibits
//!    the property.

use weakest_failure_detector::converge::ConvergeInstance;
use weakest_failure_detector::mem::SnapshotFlavor;
use weakest_failure_detector::shrink::ddmin;
use weakest_failure_detector::sim::algo;
use weakest_failure_detector::sim::{
    FailurePattern, Key, ProcessId, Scripted, SeededRandom, SimBuilder,
};

/// A buggy "converge" that decides its own value regardless of commitment
/// (the commit-gate mutant from mutations.rs), run under an explicit
/// schedule with no fallback: processes that run out of scripted steps
/// simply stop.
fn distinct_decisions_under(schedule: &[ProcessId]) -> usize {
    let outcome = SimBuilder::<()>::new(FailurePattern::failure_free(3))
        .adversary(Scripted::new(schedule.to_vec()))
        .spawn_all(|pid| {
            algo(move |ctx| async move {
                let inst = ConvergeInstance::new(Key::new("cv"), 3, SnapshotFlavor::Native);
                let (picked, _ignored_commit) = inst.converge(&ctx, 2, pid.index() as u64).await?;
                ctx.decide(picked).await?;
                Ok(())
            })
        })
        .run();
    outcome.run.decided_values().len()
}

#[test]
fn record_replay_shrink_loop() {
    // 1. Record: find a random schedule under which two distinct values
    //    get decided (allowed by 2-converge; we shrink to the interleaving
    //    essence: two full 5-step executions).
    let schedule = (0..64u64)
        .map(|seed| {
            SimBuilder::<()>::new(FailurePattern::failure_free(3))
                .adversary(SeededRandom::new(seed))
                .spawn_all(|pid| {
                    algo(move |ctx| async move {
                        let inst = ConvergeInstance::new(Key::new("cv"), 3, SnapshotFlavor::Native);
                        let (picked, _c) = inst.converge(&ctx, 2, pid.index() as u64).await?;
                        ctx.decide(picked).await?;
                        Ok(())
                    })
                })
                .run()
                .run
                .schedule()
        })
        .find(|s| distinct_decisions_under(s) >= 2)
        .expect("some random schedule lets two values through");

    // 2. Replay determinism: the same script yields the same decisions.
    assert_eq!(
        distinct_decisions_under(&schedule),
        distinct_decisions_under(&schedule)
    );

    // 3. Shrink: the minimal schedule needs exactly two processes running
    //    to completion (5 scripted steps each: 4 converge steps + decide).
    let minimal = ddmin(&schedule, |s| distinct_decisions_under(s) >= 2);
    assert!(distinct_decisions_under(&minimal) >= 2);
    assert_eq!(minimal.len(), 10, "two full 5-step executions: {minimal:?}");
    // 1-minimality: dropping any single step loses the property.
    for i in 0..minimal.len() {
        let mut shorter = minimal.clone();
        shorter.remove(i);
        assert!(
            distinct_decisions_under(&shorter) < 2,
            "minimal schedule must be 1-minimal (index {i})"
        );
    }
}
