//! Dual-engine smoke over the checked-in scenario registry (extends the
//! corpus of `tests/engine_differential.rs` through the scenario entry
//! path): every `scenarios/*.toml` contributes one representative cell
//! whose check target is replayed under both [`EngineKind`]s on a
//! round-robin schedule — traces must be bit-identical and the §3.3
//! verdicts must agree. The `e10-converge` experiment runs its raw
//! simulation under both engines; `e9-baseline` and `e11-snapshots` use
//! the inline-only agreement runners and are the only permitted skips.

use upsilon_check::explore::{replay_token, token_of, Choice};
use upsilon_scenario::matrix::run_one;
use upsilon_scenario::registry::{bench_workload_of, resolve_check, AnyCheck};
use upsilon_scenario::{load_all, Kind, ScenarioDoc};
use upsilon_sim::{EngineKind, ProcessId};

/// Protocols whose runners are inline-only (the agreement harness does
/// not expose an engine knob, and the packed swarm executor is built on
/// the inline engine's suspendable cells); everything else must be
/// exercised under both engines.
const INLINE_ONLY: &[&str] = &["e11-snapshots", "e9-baseline", "swarm"];

fn check_target_of(doc: &ScenarioDoc) -> Option<AnyCheck> {
    let cell = doc.expand().into_iter().next().expect("at least one cell");
    match doc.kind {
        Kind::Check | Kind::Fuzz => Some(resolve_check(&cell).expect("cell resolves")),
        Kind::Bench => Some(bench_workload_of(&cell).expect("cell resolves").1),
        Kind::Experiment | Kind::Swarm => None,
    }
}

/// The comparable rendering of one replay: the full `Debug` of the run
/// (events, schedule, FD samples, outputs, stop reason) plus every spec
/// verdict in checking order.
fn fingerprint(cfg: &AnyCheck, engine: EngineKind) -> String {
    let n = cfg.n_plus_1();
    let path: Vec<Choice> = (0..cfg.depth())
        .map(|i| Choice::Step(ProcessId(i % n)))
        .collect();
    let token = token_of(n, &path, &[]);
    match cfg {
        AnyCheck::Set(cfg) => {
            let out = replay_token(cfg, &token, engine);
            format!("{:?}\n{:?}", out.run, out.verdicts)
        }
        AnyCheck::Unit(cfg) => {
            let out = replay_token(cfg, &token, engine);
            format!("{:?}\n{:?}", out.run, out.verdicts)
        }
    }
}

#[test]
fn every_checked_in_scenario_agrees_across_engines() {
    let docs = load_all().expect("checked-in scenarios load");
    assert!(docs.len() >= 12, "the registry lost scenario files");
    let mut skipped = Vec::new();
    for (path, doc) in &docs {
        match check_target_of(doc) {
            Some(cfg) => {
                let inline = fingerprint(&cfg, EngineKind::Inline);
                let threads = fingerprint(&cfg, EngineKind::Threads);
                assert_eq!(
                    inline,
                    threads,
                    "{}: engines diverged on the representative cell",
                    path.display()
                );
            }
            None if INLINE_ONLY.contains(&doc.protocol.as_str()) => {
                skipped.push(doc.protocol.clone());
            }
            None => {
                // Experiment cells with an engine knob run under both
                // engines end to end.
                let cell = doc.expand().into_iter().next().expect("at least one cell");
                let seed = doc.seeds.first().copied().unwrap_or(0);
                let inline = run_one(doc, &cell, seed, EngineKind::Inline).expect("runs");
                let threads = run_one(doc, &cell, seed, EngineKind::Threads).expect("runs");
                assert_eq!(
                    inline,
                    threads,
                    "{}: engines diverged on the experiment cell",
                    path.display()
                );
            }
        }
    }
    skipped.sort();
    assert_eq!(
        skipped, INLINE_ONLY,
        "only the inline-only agreement runners may skip the differential"
    );
}
