//! The paper's partial-run constructions, built declaratively with
//! [`PhasedAdversary`] and hand-written golden histories with
//! [`TableOracle`] — the static counterpart of the reactive Theorem 1 game.

use weakest_failure_detector::agreement::{check_k_set_agreement, fig1, Fig1Config};
use weakest_failure_detector::extract::{ActivityCandidate, Candidate};
use weakest_failure_detector::fd::TableOracle;
use weakest_failure_detector::sim::{
    DummyOracle, FailurePattern, Output, Phase, PhasedAdversary, ProcessId, ProcessSet, SimBuilder,
    Time,
};

/// Theorem 1's R1 → R2 → R3 prefix, phase by phase: Υ pinned to
/// U = {p1,…,pn}; solo-run p_{n+1}; one step each; solo-run whoever p_{n+1}
/// excluded. After each solo phase the solo process's emulated Ω_n output
/// must differ from the previous phase's — the non-stabilization seed.
#[test]
fn theorem_1_prefix_built_from_static_phases() {
    let n_plus_1 = 4;
    let u = ProcessSet::singleton(ProcessId(3)).complement(n_plus_1);
    let algos = ActivityCandidate.algorithms(n_plus_1, 3);

    // Phase budgets: generous solo phases; the candidate reacts within a
    // few dozen steps.
    let phases = [
        // R1: p4 runs alone until it publishes something.
        Phase::until(ProcessSet::singleton(ProcessId(3)), 5_000, |view| {
            view.last_output[3].is_some()
        }),
        // Interlude: every process takes exactly one step.
        Phase::one_step_each(ProcessSet::all(4)),
        // R2: p4's current output excludes someone; let p1 (a natural
        // excluded candidate under the heartbeat rule) run alone long
        // enough to react.
        Phase::steps(ProcessSet::singleton(ProcessId(0)), 5_000),
    ];

    let mut builder = SimBuilder::<ProcessSet>::new(FailurePattern::failure_free(n_plus_1))
        .oracle(DummyOracle::new(u))
        .adversary(PhasedAdversary::new(phases));
    for (i, algo) in algos.into_iter().enumerate() {
        builder = builder.spawn(ProcessId(i), algo);
    }
    let run = builder.run().run;

    // p4's solo phase produced an output (an Ω_n estimate) …
    let p4_sets: Vec<ProcessSet> = run
        .outputs_of(ProcessId(3))
        .filter_map(|(_, o)| match o {
            Output::LeaderSet(s) => Some(s),
            _ => None,
        })
        .collect();
    assert!(!p4_sets.is_empty(), "R1 forces p4 to output");
    // … and during p1's solo phase, p1's heartbeat overtakes, so p1's own
    // emulated output eventually contains p1 (it "trusts itself") — a set
    // different from any set excluding p1.
    let p1_final = run
        .outputs_of(ProcessId(0))
        .filter_map(|(_, o)| match o {
            Output::LeaderSet(s) => Some(s),
            _ => None,
        })
        .last()
        .expect("R2 forces p1 to output");
    assert!(
        p1_final.contains(ProcessId(0)),
        "solo p1 ends up trusting itself"
    );
}

/// A golden Υ history written by hand (per-process noise, then the common
/// stable set at an exact time) drives Fig. 1 and the decision respects the
/// specification — no seeded generator involved anywhere.
#[test]
fn fig1_on_a_hand_written_history() {
    let pattern = FailurePattern::failure_free(3);
    let stable = ProcessSet::from_iter([ProcessId(0), ProcessId(2)]); // ≠ correct = Π
    let oracle = TableOracle::new(3, ProcessSet::all(3))
        .set_from(ProcessId(0), Time(3), ProcessSet::singleton(ProcessId(0)))
        .set_from(ProcessId(1), Time(5), ProcessSet::singleton(ProcessId(2)))
        .set_all_from(Time(40), stable);
    let proposals = [Some(1), Some(2), Some(3)];
    let mut builder = SimBuilder::<ProcessSet>::new(pattern)
        .oracle(oracle)
        .max_steps(400_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let run = builder.run().run;
    check_k_set_agreement(&run, 2, &proposals).expect("golden history run");
}

/// PhasedAdversary + Fig. 1: freeze two processes for a long prefix (legal
/// in an asynchronous system), then release everyone — decisions still
/// satisfy the spec, and the frozen processes decide after release.
#[test]
fn long_freeze_then_release() {
    let pattern = FailurePattern::failure_free(3);
    let oracle = TableOracle::new(3, ProcessSet::all(3))
        .set_all_from(Time(0), ProcessSet::singleton(ProcessId(1)));
    let proposals = [Some(10), Some(20), Some(30)];
    let phases = [
        Phase::steps(ProcessSet::singleton(ProcessId(0)), 400),
        Phase::until(ProcessSet::all(3), 400_000, |view| {
            view.last_output
                .iter()
                .all(|o| matches!(o, Some(Output::Decide(_))))
        }),
    ];
    let mut builder = SimBuilder::<ProcessSet>::new(pattern)
        .oracle(oracle)
        .adversary(PhasedAdversary::new(phases))
        .max_steps(500_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let run = builder.run().run;
    check_k_set_agreement(&run, 2, &proposals).expect("freeze/release run");
    assert!(run.decisions().iter().all(|d| d.is_some()));
}
