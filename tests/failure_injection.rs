//! Crash-timing sweeps: the protocols must satisfy their specifications no
//! matter *when* crashes land — before, during or after any protocol phase,
//! the oracle's stabilization, or another crash.

use weakest_failure_detector::experiment::{
    run_boost, run_fig1, run_fig2, run_omega_consensus, AgreementConfig, Sched,
};
use weakest_failure_detector::fd::{LeaderChoice, OmegaKChoice, UpsilonChoice};
use weakest_failure_detector::sim::{FailurePattern, ProcessId, Time};

/// Fig. 1 with a single crash swept across the whole interesting window
/// (before, straddling and after Υ's stabilization at t = 100).
#[test]
fn fig1_single_crash_time_sweep() {
    for crash_at in (0..240).step_by(12) {
        for victim in 0..3usize {
            let pattern = FailurePattern::builder(3)
                .crash(ProcessId(victim), Time(crash_at))
                .build();
            let cfg = AgreementConfig::new(pattern).seed(crash_at);
            let out = run_fig1(&cfg, UpsilonChoice::default());
            if let Err(e) = &out.spec {
                panic!("victim=p{} crash_at={crash_at}: {e}", victim + 1);
            }
        }
    }
}

/// Fig. 1 with two crashes at all ordered pairs from a coarse grid.
#[test]
fn fig1_double_crash_grid() {
    let grid = [5u64, 60, 150];
    for &a in &grid {
        for &b in &grid {
            let pattern = FailurePattern::builder(4)
                .crash(ProcessId(1), Time(a))
                .crash(ProcessId(3), Time(b))
                .build();
            let cfg = AgreementConfig::new(pattern).seed(a * 1_000 + b);
            let out = run_fig1(&cfg, UpsilonChoice::FaultyPadded);
            if let Err(e) = &out.spec {
                panic!("crashes at ({a},{b}): {e}");
            }
        }
    }
}

/// Fig. 2: crash lands inside the gladiators' snapshot wait (the lines
/// 17–19 window the Termination proof sweats over). Round-robin keeps the
/// protocol in that window until stabilization.
#[test]
fn fig2_crash_during_snapshot_wait() {
    for crash_at in (20..200).step_by(20) {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(2), Time(crash_at))
            .build();
        let cfg = AgreementConfig::new(pattern)
            .sched(Sched::RoundRobin)
            .stabilize_at(Time(90))
            .seed(crash_at);
        for f in [1usize, 2, 3] {
            let out = run_fig2(&cfg, f, UpsilonChoice::All);
            if let Err(e) = &out.spec {
                panic!("f={f} crash_at={crash_at}: {e}");
            }
        }
    }
}

/// Ω-consensus: the noisy pre-stabilization leader crashes at every phase
/// of the round structure.
#[test]
fn consensus_leader_crash_sweep() {
    for crash_at in (0..160).step_by(16) {
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(0), Time(crash_at))
            .build();
        let cfg = AgreementConfig::new(pattern)
            .stabilize_at(Time(120))
            .seed(crash_at);
        let out = run_omega_consensus(&cfg, LeaderChoice::MinCorrect);
        if let Err(e) = &out.spec {
            panic!("crash_at={crash_at}: {e}");
        }
        assert_eq!(out.distinct.len(), 1, "crash_at={crash_at}");
    }
}

/// Boosting: crashes inside the n-consensus-object round and inside the
/// board wait.
#[test]
fn boost_crash_sweep() {
    for crash_at in (0..120).step_by(15) {
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(1), Time(crash_at))
            .build();
        let cfg = AgreementConfig::new(pattern).seed(crash_at);
        let out = run_boost(&cfg, OmegaKChoice::OneCorrectRestFaulty);
        if let Err(e) = &out.spec {
            panic!("crash_at={crash_at}: {e}");
        }
    }
}

/// All-but-one crash (the wait-free extreme): the lone survivor always
/// decides, whoever it is.
#[test]
fn lone_survivor_always_decides() {
    for survivor in 0..4usize {
        let mut builder = FailurePattern::builder(4);
        let mut delay = 10;
        for v in 0..4usize {
            if v != survivor {
                builder = builder.crash(ProcessId(v), Time(delay));
                delay += 25;
            }
        }
        let pattern = builder.build();
        let cfg = AgreementConfig::new(pattern).seed(survivor as u64);
        let out = run_fig1(&cfg, UpsilonChoice::FaultyPadded);
        out.assert_ok();
        assert!(
            out.decided[survivor].is_some(),
            "survivor p{} must decide",
            survivor + 1
        );
    }
}
