//! The E14 ablation as a regression test: Fig. 2's line 25 min-adoption is
//! exactly what Termination hinges on in the all-citizens-faulty scenario,
//! and nothing else changes — Safety holds in both variants.

use weakest_failure_detector::agreement::Fig2Config;
use weakest_failure_detector::experiment::{run_fig2_custom, AgreementConfig, Sched};
use weakest_failure_detector::fd::UpsilonChoice;
use weakest_failure_detector::mem::SnapshotFlavor;
use weakest_failure_detector::sim::{FailurePattern, ProcessId, ProcessSet, Time};

fn scenario() -> (AgreementConfig, ProcessSet) {
    // n+1 = 4, f = 2: p3 and p4 crash after proposing, Υ² pinned to
    // {p1,p2,p3}, lock-step schedule. Only gladiators p1 and p2 survive.
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(2), Time(20))
        .crash(ProcessId(3), Time(20))
        .build();
    let stable = ProcessSet::from_iter([ProcessId(0), ProcessId(1), ProcessId(2)]);
    let cfg = AgreementConfig::new(pattern)
        .sched(Sched::RoundRobin)
        .stabilize_at(Time(0))
        .max_steps(60_000);
    (cfg, stable)
}

#[test]
fn faithful_protocol_terminates() {
    let (cfg, stable) = scenario();
    let out = run_fig2_custom(&cfg, Fig2Config::new(2), UpsilonChoice::Fixed(stable));
    out.assert_ok();
    assert!(out.decided_by.is_some());
    assert_eq!(
        out.distinct.len(),
        1,
        "both gladiators adopt the same minimum"
    );
}

#[test]
fn ablated_protocol_loses_termination_but_not_safety() {
    let (cfg, stable) = scenario();
    let out = run_fig2_custom(&cfg, Fig2Config::ablated(2), UpsilonChoice::Fixed(stable));
    assert!(
        out.decided_by.is_none(),
        "no decision without the adoption rule"
    );
    // Safety is untouched: nothing wrong was decided (nothing was decided).
    assert!(out.distinct.is_empty());
    assert_eq!(out.total_steps, 60_000, "the run spun its full budget");
}

#[test]
fn ablation_is_harmless_when_citizens_survive() {
    // With a correct citizen the round resolves through D[r] regardless of
    // the adoption rule — the ablation only bites in the proof's exact case.
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(2), Time(20))
        .build();
    let stable = ProcessSet::from_iter([ProcessId(0), ProcessId(1), ProcessId(2)]);
    let cfg = AgreementConfig::new(pattern)
        .sched(Sched::RoundRobin)
        .stabilize_at(Time(0))
        .max_steps(200_000);
    let out = run_fig2_custom(
        &cfg,
        Fig2Config {
            flavor: SnapshotFlavor::Native,
            ..Fig2Config::ablated(2)
        },
        UpsilonChoice::Fixed(stable),
    );
    out.assert_ok();
    assert!(
        out.decided_by.is_some(),
        "the correct citizen p4 rescues the round"
    );
}
