//! The minimality story end to end (§6):
//!
//! * Fig. 3 extracts Υ^f from every stable detector in the repository
//!   (Theorem 10), and the extracted output is *usable*: feeding it into
//!   Fig. 1 closes the loop  D → Υ → set-agreement.
//! * The Theorem 1/5 adversary games refute every candidate Υ → Ω_n
//!   extractor, separating Υ from Ω_n.

use weakest_failure_detector::agreement::{check_k_set_agreement, fig1, Fig1Config};
use weakest_failure_detector::experiment::{run_fig3, StableSource};
use weakest_failure_detector::extract::{all_candidates, play, GameConfig, GameVerdict};
use weakest_failure_detector::fd::{LeaderChoice, OmegaKChoice, UpsilonChoice, UpsilonOracle};
use weakest_failure_detector::sim::{
    FailurePattern, ProcessId, ProcessSet, SeededRandom, SimBuilder, Time,
};

/// Fig. 3 over every stable source and several patterns; emulated output
/// satisfies Υ^f.
#[test]
fn extraction_from_every_stable_source() {
    let patterns = [
        FailurePattern::failure_free(3),
        FailurePattern::builder(3)
            .crash(ProcessId(1), Time(9_000))
            .build(),
        FailurePattern::builder(4)
            .crash(ProcessId(0), Time(50))
            .build(),
    ];
    for pattern in &patterns {
        let f = pattern.n();
        for source in [
            StableSource::Omega(LeaderChoice::MinCorrect),
            StableSource::OmegaK(pattern.n(), OmegaKChoice::default()),
            StableSource::Perfect,
            StableSource::EventuallyPerfect,
        ] {
            let out = run_fig3(pattern, source, f, Time(150), 3, 60_000);
            if let Err(e) = &out.report {
                panic!("{pattern} via {}: {e}", out.source);
            }
        }
    }
}

/// The full reduction chain: run Fig. 3 on ◇P to learn a legal stable set,
/// then solve set agreement with a Υ pinned to exactly that set — i.e.
/// "◇P can do anything Υ can" made concrete.
#[test]
fn extracted_output_powers_set_agreement() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(0), Time(9_000))
        .build();
    let out = run_fig3(
        &pattern,
        StableSource::EventuallyPerfect,
        2,
        Time(100),
        5,
        50_000,
    );
    let report = out.report.expect("valid extraction");
    let extracted = report.value;

    // Stage 2: Υ fixed to the extracted set drives Fig. 1.
    let proposals = [Some(1), Some(2), Some(3)];
    let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::Fixed(extracted), Time(0), 5);
    let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
        .oracle(oracle)
        .adversary(SeededRandom::new(5))
        .max_steps(400_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let run = builder.run().run;
    check_k_set_agreement(&run, 2, &proposals).expect("extracted Υ solves set agreement");
}

/// Theorem 1: every shipped candidate Υ → Ω_n extractor fails, for several
/// system sizes.
#[test]
fn theorem_1_defeats_every_candidate() {
    for n_plus_1 in [3usize, 4, 5] {
        for candidate in all_candidates() {
            let verdict = play(GameConfig::theorem_1(n_plus_1, 4), candidate.as_ref());
            match verdict {
                GameVerdict::NeverStabilizes {
                    changes,
                    ref trajectory,
                } => {
                    assert_eq!(changes, 4, "{}", candidate.name());
                    for w in trajectory.windows(2) {
                        assert_ne!(w[0], w[1], "consecutive sets must differ");
                    }
                    // Every set has size n, as Ω_n requires.
                    assert!(trajectory.iter().all(|s| s.len() == n_plus_1 - 1));
                }
                GameVerdict::Refuted { stuck_on, .. } => {
                    assert!(!stuck_on.is_empty(), "{}", candidate.name());
                }
            }
        }
    }
}

/// Theorem 5: same for Ω^f, 2 ≤ f ≤ n.
#[test]
fn theorem_5_defeats_every_candidate() {
    for f in 2..=4usize {
        for candidate in all_candidates() {
            let verdict = play(GameConfig::theorem_5(6, f, 3), candidate.as_ref());
            let changes = verdict.changes();
            match verdict {
                GameVerdict::NeverStabilizes { .. } => assert_eq!(changes, 3),
                GameVerdict::Refuted { .. } => {}
            }
        }
    }
}

/// The adversary's trajectory is deterministic: replays produce identical
/// verdicts.
#[test]
fn games_are_reproducible() {
    for candidate in all_candidates() {
        let a = play(GameConfig::theorem_1(4, 3), candidate.as_ref());
        let b = play(GameConfig::theorem_1(4, 3), candidate.as_ref());
        assert_eq!(a, b, "{}", candidate.name());
    }
}
