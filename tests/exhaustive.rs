//! Bounded model checking: the k-converge properties and snapshot
//! containment verified over **every** interleaving of small
//! configurations — not a sample, the whole space.
//!
//! The large sweeps fan their (fully independent, each single-threaded)
//! runs across the [`run_batch`] worker pool; results come back in
//! schedule order, so the assertions and failure messages are identical
//! to the sequential loops they replaced.

use std::sync::{Arc, Mutex};
use weakest_failure_detector::converge::ConvergeInstance;
use weakest_failure_detector::exhaustive::{count_interleavings, interleavings};
use weakest_failure_detector::mem::{scan_contained_in, NativeSnapshot, Snapshot, SnapshotFlavor};
use weakest_failure_detector::sim::algo;
use weakest_failure_detector::sim::{
    default_workers, run_batch, FailurePattern, Key, ProcessId, RoundRobin, Scripted, SimBuilder,
};

/// Shared per-process (picked, committed) results of a converge run.
type SharedResults = std::sync::Arc<std::sync::Mutex<Vec<Option<(u64, bool)>>>>;

/// Runs one k-converge instance under an explicit schedule; the scripted
/// prefix covers the whole routine (4 steps per process on native
/// snapshots), with a round-robin tail as a safety net.
fn run_converge_scripted(
    inputs: &[u64],
    k: usize,
    schedule: Vec<ProcessId>,
) -> Vec<Option<(u64, bool)>> {
    let n = inputs.len();
    let results: SharedResults = Arc::new(Mutex::new(vec![None; n]));
    let results2 = Arc::clone(&results);
    let inputs = inputs.to_vec();
    let _ = SimBuilder::<()>::new(FailurePattern::failure_free(n))
        .adversary(Scripted::then(schedule, RoundRobin::new()))
        .spawn_all(move |pid| {
            let results = Arc::clone(&results2);
            let v = inputs[pid.index()];
            algo(move |ctx| async move {
                let inst =
                    ConvergeInstance::new(Key::new("cv"), ctx.n_plus_1(), SnapshotFlavor::Native);
                let out = inst.converge(&ctx, k, v).await?;
                let mut slot = results.lock().unwrap();
                slot[pid.index()] = Some(out);
                Ok(())
            })
        })
        .run();
    Arc::try_unwrap(results).unwrap().into_inner().unwrap()
}

fn assert_converge_properties(
    inputs: &[u64],
    k: usize,
    outs: &[Option<(u64, bool)>],
    schedule_id: usize,
) {
    assert!(
        outs.iter().all(|o| o.is_some()),
        "C-Termination, schedule {schedule_id}"
    );
    let picked: Vec<u64> = outs.iter().flatten().map(|(v, _)| *v).collect();
    for v in &picked {
        assert!(inputs.contains(v), "C-Validity, schedule {schedule_id}");
    }
    if outs.iter().flatten().any(|(_, c)| *c) {
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert!(
            d.len() <= k,
            "C-Agreement, schedule {schedule_id}: {d:?} (k={k})"
        );
    }
    let mut di = inputs.to_vec();
    di.sort_unstable();
    di.dedup();
    if di.len() <= k {
        assert!(
            outs.iter().flatten().all(|(_, c)| *c),
            "Convergence, schedule {schedule_id}"
        );
    }
}

/// Commit–adopt (1-converge) between two processes: all 70 interleavings of
/// its 8 steps, for agreeing and disagreeing inputs.
#[test]
fn commit_adopt_two_processes_every_interleaving() {
    for inputs in [[5u64, 5], [1, 2]] {
        let schedules = interleavings(&[4, 4]);
        assert_eq!(schedules.len(), 70);
        for (i, schedule) in schedules.into_iter().enumerate() {
            let outs = run_converge_scripted(&inputs, 1, schedule);
            assert_converge_properties(&inputs, 1, &outs, i);
            // The classic commit-adopt corollary: a commit forces unanimity.
            let committed: Vec<u64> = outs
                .iter()
                .flatten()
                .filter(|(_, c)| *c)
                .map(|(v, _)| *v)
                .collect();
            if let Some(&v) = committed.first() {
                assert!(outs.iter().flatten().all(|(w, _)| *w == v), "schedule {i}");
            }
        }
    }
}

/// In debug builds the 34 650-schedule sweeps are strided (every 9th
/// schedule) to keep `cargo test` snappy; release builds (`cargo test
/// --release`) check every single interleaving.
fn stride() -> usize {
    if cfg!(debug_assertions) {
        9
    } else {
        1
    }
}

/// 2-converge among three processes with three distinct inputs: all 34 650
/// interleavings of its 12 steps. This is the exact sub-routine Fig. 1's
/// gladiators run with |U| = 3.
#[test]
fn two_converge_three_processes_every_interleaving() {
    let inputs = [1u64, 2, 3];
    let schedules = interleavings(&[4, 4, 4]);
    assert_eq!(schedules.len() as u64, count_interleavings(&[4, 4, 4]));
    let jobs: Vec<_> = schedules
        .into_iter()
        .enumerate()
        .step_by(stride())
        .map(|(i, schedule)| move || (i, run_converge_scripted(&inputs, 2, schedule)))
        .collect();
    for (i, outs) in run_batch(jobs, default_workers()) {
        assert_converge_properties(&inputs, 2, &outs, i);
    }
}

/// 1-converge among three processes with two distinct inputs — the mixed
/// case where commits are schedule-dependent but never unsafe.
#[test]
fn one_converge_three_processes_every_interleaving() {
    let inputs = [7u64, 7, 9];
    let mut commits_seen = false;
    let mut non_commits_seen = false;
    let jobs: Vec<_> = interleavings(&[4, 4, 4])
        .into_iter()
        .enumerate()
        .step_by(stride())
        .map(|(i, schedule)| move || (i, run_converge_scripted(&inputs, 1, schedule)))
        .collect();
    for (i, outs) in run_batch(jobs, default_workers()) {
        assert_converge_properties(&inputs, 1, &outs, i);
        let any_commit = outs.iter().flatten().any(|(_, c)| *c);
        commits_seen |= any_commit;
        non_commits_seen |= !any_commit;
    }
    assert!(commits_seen, "some interleaving lets the routine commit");
    assert!(
        non_commits_seen,
        "some interleaving (lock-step) prevents commitment — both behaviours exist"
    );
}

/// Snapshot containment across every interleaving of one update+scan round
/// of three processes (90 schedules).
#[test]
fn snapshot_containment_every_interleaving() {
    for (i, schedule) in interleavings(&[2, 2, 2]).into_iter().enumerate() {
        let scans: Arc<Mutex<Vec<Vec<Option<u64>>>>> = Arc::new(Mutex::new(Vec::new()));
        let scans2 = Arc::clone(&scans);
        let _ = SimBuilder::<()>::new(FailurePattern::failure_free(3))
            .adversary(Scripted::then(schedule, RoundRobin::new()))
            .spawn_all(move |pid| {
                let scans = Arc::clone(&scans2);
                algo(move |ctx| async move {
                    let snap = NativeSnapshot::<u64>::new(Key::new("S"), 3);
                    snap.update(&ctx, pid.index() as u64 + 1).await?;
                    let s = snap.scan(&ctx).await?;
                    let mut shared = scans.lock().unwrap();
                    shared.push(s);
                    Ok(())
                })
            })
            .run();
        let scans = scans.lock().unwrap();
        assert_eq!(scans.len(), 3);
        for a in scans.iter() {
            for b in scans.iter() {
                assert!(
                    scan_contained_in(a, b) || scan_contained_in(b, a),
                    "schedule {i}: {a:?} vs {b:?}"
                );
            }
        }
        // Every scan contains the scanner's own value (own update precedes
        // own scan in every interleaving).
        assert!(scans.iter().any(|s| s.iter().flatten().count() >= 1));
    }
}

/// Runs one k-converge instance under a script-only schedule (no fallback):
/// processes whose scripted steps run out simply stop — modelling a crash
/// or an arbitrarily long stall at that exact point.
fn run_converge_script_only(
    inputs: &[u64],
    k: usize,
    schedule: Vec<ProcessId>,
) -> Vec<Option<(u64, bool)>> {
    let n = inputs.len();
    let results: SharedResults = Arc::new(Mutex::new(vec![None; n]));
    let results2 = Arc::clone(&results);
    let inputs = inputs.to_vec();
    let _ = SimBuilder::<()>::new(FailurePattern::failure_free(n))
        .adversary(Scripted::new(schedule))
        .spawn_all(move |pid| {
            let results = Arc::clone(&results2);
            let v = inputs[pid.index()];
            algo(move |ctx| async move {
                let inst =
                    ConvergeInstance::new(Key::new("cv"), ctx.n_plus_1(), SnapshotFlavor::Native);
                let out = inst.converge(&ctx, k, v).await?;
                let mut slot = results.lock().unwrap();
                slot[pid.index()] = Some(out);
                Ok(())
            })
        })
        .run();
    Arc::try_unwrap(results).unwrap().into_inner().unwrap()
}

/// Wait-freedom of commit–adopt, exhaustively: for every interleaving of
/// the two processes' 8 steps AND every prefix length at which p1 stops
/// (a crash / unbounded stall at that exact point), p2 still picks, and
/// the safety properties hold among whatever outputs exist.
#[test]
fn commit_adopt_every_interleaving_every_crash_point() {
    let inputs = [4u64, 9];
    let jobs: Vec<_> = interleavings(&[4, 4])
        .into_iter()
        .flat_map(|schedule| (0..=schedule.len()).map(move |cut| (schedule.clone(), cut)))
        .map(|(schedule, cut)| {
            move || {
                // Drop p1's steps at positions ≥ cut: p1 stops there; p2 gets
                // a tail so it always finishes (its own 5th step is the
                // decide).
                let truncated: Vec<ProcessId> = schedule
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| p.index() != 0 || *i < cut)
                    .map(|(_, p)| *p)
                    .chain(std::iter::repeat_n(ProcessId(1), 4))
                    .collect();
                (
                    schedule,
                    cut,
                    run_converge_script_only(&inputs, 1, truncated),
                )
            }
        })
        .collect();
    for (schedule, cut, outs) in run_batch(jobs, default_workers()) {
        assert!(
            outs[1].is_some(),
            "wait-freedom: p2 must pick despite p1 stopping at {cut} in {schedule:?}"
        );
        // Safety among the outputs that exist: C-Validity and
        // C-Agreement (commit ⇒ one value picked overall).
        let picked: Vec<u64> = outs.iter().flatten().map(|(v, _)| *v).collect();
        assert!(picked.iter().all(|v| inputs.contains(v)));
        if outs.iter().flatten().any(|(_, c)| *c) {
            let mut d = picked.clone();
            d.sort_unstable();
            d.dedup();
            assert!(d.len() <= 1, "cut={cut}: {outs:?}");
        }
    }
}
