//! Panic semantics under the inline step engine, and parity with the
//! thread-lockstep engine.
//!
//! A panicking algorithm must stop taking steps at exactly the step where
//! it panicked: the trace records every step up to (and excluding) the
//! panicking poll, the process is not marked finished, and — with
//! `propagate_panics` (the default) — the payload is re-raised to the
//! caller after the run completes.
//!
//! These tests use the deterministic [`RoundRobin`] adversary, not the
//! seeded-random corpus of `tests/engine_differential.rs`: the one
//! engine-visible difference between the two engines is *when* the
//! scheduler learns that a panicked process is gone (immediately inline;
//! via an asynchronous notice under threads), so panic parity is asserted
//! on the recorded per-process facts — step counts, event times, finished
//! flags, survivor decisions — which both engines must agree on exactly.

use weakest_failure_detector::sim::{
    algo, EngineKind, FailurePattern, ProcessId, RoundRobin, Run, SimBuilder,
};

/// p1 panics after taking exactly `steps_before_panic` steps; p2 decides.
fn panicky_run(engine: EngineKind, steps_before_panic: u64) -> Run<()> {
    SimBuilder::<()>::new(FailurePattern::failure_free(2))
        .engine(engine)
        .adversary(RoundRobin::new())
        .propagate_panics(false)
        .spawn_all(move |pid| {
            algo(move |ctx| async move {
                if pid == ProcessId(0) {
                    for _ in 0..steps_before_panic {
                        ctx.yield_step().await?;
                    }
                    panic!("deliberate test panic");
                }
                ctx.yield_step().await?;
                ctx.yield_step().await?;
                ctx.decide(7).await?;
                Ok(())
            })
        })
        .run()
        .run
}

#[test]
fn inline_panic_is_a_crash_at_the_exact_step() {
    let run = panicky_run(EngineKind::Inline, 3);
    // The panicking poll consumed a grant but produced no step: exactly the
    // three pre-panic steps are on record.
    assert_eq!(run.steps_by()[0], 3, "steps recorded before the panic");
    assert!(
        !run.finished(ProcessId(0)),
        "a panicked process is not finished"
    );
    assert!(
        run.finished(ProcessId(1)),
        "the survivor runs to completion"
    );
    assert_eq!(run.decisions()[1], Some(7), "the survivor's decision lands");
}

#[test]
fn panic_step_time_matches_thread_engine() {
    for steps_before_panic in [0u64, 1, 3, 5] {
        let inline = panicky_run(EngineKind::Inline, steps_before_panic);
        let threads = panicky_run(EngineKind::Threads, steps_before_panic);
        for p in [ProcessId(0), ProcessId(1)] {
            let times =
                |run: &Run<()>| -> Vec<_> { run.events_of(p).map(|e| format!("{e:?}")).collect() };
            assert_eq!(
                times(&inline),
                times(&threads),
                "event history of {p} diverged at steps_before_panic={steps_before_panic}"
            );
            assert_eq!(inline.finished(p), threads.finished(p), "finished({p})");
        }
        assert_eq!(
            inline.steps_by(),
            threads.steps_by(),
            "per-process step counts at steps_before_panic={steps_before_panic}"
        );
        assert_eq!(inline.decisions(), threads.decisions());
    }
}

#[test]
fn inline_panic_propagates_by_default() {
    let result = std::panic::catch_unwind(|| {
        SimBuilder::<()>::new(FailurePattern::failure_free(2))
            .engine(EngineKind::Inline)
            .adversary(RoundRobin::new())
            .spawn_all(|pid| {
                algo(move |ctx| async move {
                    ctx.yield_step().await?;
                    if pid == ProcessId(1) {
                        panic!("deliberate inline panic");
                    }
                    ctx.yield_step().await?;
                    Ok(())
                })
            })
            .run()
    });
    let payload = result.expect_err("panic must propagate from the inline engine");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or_else(|| payload.downcast_ref::<String>().map_or("", |s| s));
    assert!(
        msg.contains("deliberate inline panic"),
        "the original payload is re-raised, got: {msg:?}"
    );
}
