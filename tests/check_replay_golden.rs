//! Golden counterexample regression: a stored `UCHK1:` token must keep
//! replaying to the *same* violation, bit-identically, under both engines.
//!
//! The token in `tests/golden/commit_buggy.uchk1` is the explorer's shrunk
//! counterexample for the seeded snapshot-commit bug (`p1` drops its
//! announcement write; see `upsilon_check::samples::snapshot_commit`). If
//! the simulator's scheduling, the replay-token format or the spec
//! checkers drift, this file is the tripwire.

use upsilon_check::{check, replay_token, samples, ReplayToken};
use upsilon_sim::{EngineKind, StopReason};

const GOLDEN: &str = include_str!("golden/commit_buggy.uchk1");

fn golden_token() -> ReplayToken {
    ReplayToken::parse(GOLDEN.trim()).expect("golden token parses")
}

#[test]
fn golden_token_round_trips_through_its_encoding() {
    let token = golden_token();
    assert_eq!(token.encode(), GOLDEN.trim());
    assert_eq!(ReplayToken::parse(&token.encode()).unwrap(), token);
}

#[test]
fn golden_token_replays_to_the_same_violation_under_both_engines() {
    let cfg = samples::snapshot_commit(2, 1, 9, true);
    let token = golden_token();

    let inline = replay_token(&cfg, &token, EngineKind::Inline);
    let threads = replay_token(&cfg, &token, EngineKind::Threads);

    // Bit-identical traces across engines.
    assert_eq!(inline.run.events(), threads.run.events());
    assert_eq!(inline.run.outputs(), threads.run.outputs());
    assert_eq!(inline.run.fd_samples(), threads.run.fd_samples());
    assert_eq!(inline.run.stop_reason(), threads.run.stop_reason());

    // Identical verdicts: run conditions hold, 1-set agreement breaks.
    assert_eq!(inline.verdicts, threads.verdicts);
    for (name, verdict) in &inline.verdicts {
        match name.as_str() {
            "run-conditions" => assert!(verdict.is_ok(), "replay must be a legal run"),
            "k-set-agreement" => {
                let msg = verdict.as_ref().expect_err("the seeded bug must reproduce");
                assert!(msg.contains("2 distinct values"), "drifted message: {msg}");
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    // The replay consumed the whole scripted schedule and ran to the end
    // of its step budget (the spinning non-decider never finishes).
    assert_eq!(inline.run.total_steps() as usize, token.schedule.len());
    assert_eq!(inline.run.stop_reason(), StopReason::BudgetExhausted);
}

#[test]
fn sound_variant_survives_the_golden_schedule() {
    // Replaying the same schedule against the *fixed* protocol must be
    // clean — the token pins the interleaving, not the verdict.
    let cfg = samples::snapshot_commit(2, 1, 9, false);
    let replayed = replay_token(&cfg, &golden_token(), EngineKind::Inline);
    for (name, verdict) in &replayed.verdicts {
        assert!(verdict.is_ok(), "{name}: {verdict:?}");
    }
}

#[test]
fn explorer_still_finds_the_golden_counterexample_first() {
    // Determinism end to end: re-running the exploration from scratch
    // rediscovers exactly the stored token.
    let report = check(&samples::snapshot_commit(2, 1, 9, true));
    assert!(!report.ok());
    assert_eq!(report.violations[0].token, golden_token());
}
