//! Property-based tests (proptest): the paper's invariants under random
//! failure patterns, schedules, proposals and oracle shapes.

use proptest::prelude::*;
use weakest_failure_detector::agreement::{
    check_k_set_agreement, fig1, fig2, Fig1Config, Fig2Config,
};
use weakest_failure_detector::converge::ConvergeInstance;
use weakest_failure_detector::fd::{UpsilonChoice, UpsilonOracle};
use weakest_failure_detector::mem::{scan_contained_in, NativeSnapshot, Snapshot, SnapshotFlavor};
use weakest_failure_detector::sim::algo;
use weakest_failure_detector::sim::{
    FailurePattern, Key, ProcessId, ProcessSet, SeededRandom, SimBuilder, Time,
};

/// Shared per-process (picked, committed) results of a converge run.
type SharedResults = std::sync::Arc<std::sync::Mutex<Vec<Option<(u64, bool)>>>>;

/// A random failure pattern for `n_plus_1` processes with at most `f`
/// crashes at times below `horizon`.
fn arb_pattern(n_plus_1: usize, f: usize, horizon: u64) -> impl Strategy<Value = FailurePattern> {
    let victims = proptest::collection::vec(0..n_plus_1, 0..=f);
    let times = proptest::collection::vec(0..horizon, f);
    (victims, times).prop_map(move |(victims, times)| {
        let mut builder = FailurePattern::builder(n_plus_1);
        let mut victims = victims;
        victims.sort_unstable();
        victims.dedup();
        if victims.len() == n_plus_1 {
            victims.pop();
        }
        for (i, v) in victims.into_iter().enumerate() {
            builder = builder.crash(ProcessId(v), Time(times[i % times.len().max(1)]));
        }
        builder.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Fig. 1 satisfies n-set-agreement for random patterns, seeds,
    /// proposals and stable-set policies.
    #[test]
    fn fig1_always_satisfies_the_spec(
        pattern in arb_pattern(4, 3, 80),
        seed in 0u64..1_000,
        base in 0u64..50,
        stab in 0u64..300,
    ) {
        let proposals: Vec<Option<u64>> = (0..4).map(|i| Some(base + i)).collect();
        let oracle = UpsilonOracle::wait_free(
            &pattern, UpsilonChoice::RandomLegal, Time(stab), seed);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(600_000);
        for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
            builder = builder.spawn(pid, algo);
        }
        let run = builder.run().run;
        prop_assert!(check_k_set_agreement(&run, 3, &proposals).is_ok(),
            "{:?}", check_k_set_agreement(&run, 3, &proposals));
    }

    /// Fig. 2 satisfies f-set-agreement for random f and patterns in E_f.
    #[test]
    fn fig2_always_satisfies_the_spec(
        f in 1usize..=3,
        seed in 0u64..1_000,
        stab in 0u64..200,
        crash_time in 0u64..100,
        victim in 0usize..4,
    ) {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(victim), Time(crash_time))
            .build();
        prop_assume!(pattern.in_environment(f));
        let proposals: Vec<Option<u64>> = (0..4).map(|i| Some(i + 1)).collect();
        let oracle = UpsilonOracle::new(
            &pattern, f, UpsilonChoice::RandomLegal, Time(stab), seed);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(800_000);
        for (pid, algo) in fig2::algorithms(Fig2Config::new(f), &proposals) {
            builder = builder.spawn(pid, algo);
        }
        let run = builder.run().run;
        prop_assert!(check_k_set_agreement(&run, f, &proposals).is_ok(),
            "f={f}: {:?}", check_k_set_agreement(&run, f, &proposals));
    }

    /// k-converge C-properties for random inputs, k and schedules.
    #[test]
    fn k_converge_properties(
        inputs in proptest::collection::vec(1u64..6, 2..=5),
        k in 1usize..=4,
        seed in 0u64..1_000,
    ) {
        use std::sync::{Arc, Mutex};
        let n = inputs.len();
        let results: SharedResults =
            Arc::new(Mutex::new(vec![None; n]));
        let results2 = Arc::clone(&results);
        let inputs2 = inputs.clone();
        let _ = SimBuilder::<()>::new(FailurePattern::failure_free(n))
            .adversary(SeededRandom::new(seed))
            .spawn_all(move |pid| {
                let results = Arc::clone(&results2);
                let v = inputs2[pid.index()];
                algo(move |ctx| async move {
                    let inst = ConvergeInstance::new(
                        Key::new("cv"), ctx.n_plus_1(), SnapshotFlavor::Native);
                    let out = inst.converge(&ctx, k, v).await?;
                    results.lock().unwrap()[pid.index()] = Some(out);
                    Ok(())
                })
            })
            .run();
        let outs = results.lock().unwrap().clone();
        // C-Termination.
        prop_assert!(outs.iter().all(|o| o.is_some()));
        let picked: Vec<u64> = outs.iter().flatten().map(|(v, _)| *v).collect();
        // C-Validity.
        prop_assert!(picked.iter().all(|v| inputs.contains(v)));
        // C-Agreement.
        if outs.iter().flatten().any(|(_, c)| *c) {
            let mut d = picked.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert!(d.len() <= k, "committed but {} values picked (k={k})", d.len());
        }
        // Convergence.
        let mut di = inputs.clone();
        di.sort_unstable();
        di.dedup();
        if di.len() <= k {
            prop_assert!(outs.iter().flatten().all(|(_, c)| *c));
        }
    }

    /// Snapshot containment: scans from random concurrent histories are
    /// totally ordered, for both implementations.
    #[test]
    fn snapshot_scans_are_containment_ordered(
        seed in 0u64..1_000,
        rounds in 1usize..4,
        register_based in proptest::bool::ANY,
    ) {
        use std::sync::{Arc, Mutex};
        use weakest_failure_detector::mem::{AfekSnapshot, FlavoredSnapshot};
        let scans: Arc<Mutex<Vec<Vec<Option<u64>>>>> = Arc::new(Mutex::new(Vec::new()));
        let scans2 = Arc::clone(&scans);
        let flavor = if register_based {
            SnapshotFlavor::RegisterBased
        } else {
            SnapshotFlavor::Native
        };
        let _ = SimBuilder::<()>::new(FailurePattern::failure_free(3))
            .adversary(SeededRandom::new(seed))
            .spawn_all(move |pid| {
                let scans = Arc::clone(&scans2);
                algo(move |ctx| async move {
                    let snap = FlavoredSnapshot::<u64>::new(flavor, Key::new("S"), 3);
                    for r in 0..rounds as u64 {
                        snap.update(&ctx, pid.index() as u64 * 100 + r).await?;
                        let s = snap.scan(&ctx).await?;
                        scans.lock().unwrap().push(s);
                    }
                    Ok(())
                })
            })
            .run();
        let scans = scans.lock().unwrap();
        for a in scans.iter() {
            for b in scans.iter() {
                prop_assert!(
                    scan_contained_in(a, b) || scan_contained_in(b, a),
                    "not containment-related: {a:?} / {b:?}"
                );
            }
        }
        // Silence unused-import lint paths for the two concrete types.
        let _ = (NativeSnapshot::<u64>::new(Key::new("x"), 1),
                 AfekSnapshot::<u64>::new(Key::new("y"), 1));
    }

    /// Υ oracle histories always satisfy the Υ spec, for random legal
    /// configurations.
    #[test]
    fn upsilon_oracle_histories_satisfy_spec(
        pattern in arb_pattern(4, 3, 50),
        seed in 0u64..1_000,
        stab in 0u64..120,
    ) {
        use weakest_failure_detector::fd::check_upsilon;
        use weakest_failure_detector::sim::Oracle;
        let mut o = UpsilonOracle::wait_free(
            &pattern, UpsilonChoice::RandomLegal, Time(stab), seed);
        let mut samples = Vec::new();
        for t in 0..stab + 60 {
            for i in 0..4 {
                let p = ProcessId(i);
                if !pattern.is_crashed_at(p, Time(t)) {
                    samples.push((Time(t), p, o.output(p, Time(t))));
                }
            }
        }
        prop_assert!(check_upsilon(&pattern, &samples, 10).is_ok());
    }
}
