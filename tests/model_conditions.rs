//! Model fidelity: every protocol run satisfies the run conditions of §3.3
//! (crashed processes take no steps, strictly increasing times, consistent
//! failure-detector samples), and whole runs are deterministic functions of
//! their configuration.

use weakest_failure_detector::agreement::{fig1, fig2, Fig1Config, Fig2Config};
use weakest_failure_detector::extract::extraction_algorithm;
use weakest_failure_detector::extract::phi_omega;
use weakest_failure_detector::fd::{LeaderChoice, OmegaOracle, UpsilonChoice, UpsilonOracle};
use weakest_failure_detector::sim::{
    FailurePattern, ProcessId, ProcessSet, Run, SeededRandom, SimBuilder, Time, TraceLevel,
};

fn fig1_run(seed: u64, trace: TraceLevel) -> Run<ProcessSet> {
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(1), Time(35))
        .crash(ProcessId(3), Time(70))
        .build();
    let proposals = [Some(1), Some(2), Some(3), Some(4)];
    let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(90), seed);
    let mut builder = SimBuilder::<ProcessSet>::new(pattern)
        .oracle(oracle)
        .adversary(SeededRandom::new(seed))
        .trace_level(trace)
        .max_steps(400_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    builder.run().run
}

#[test]
fn fig1_runs_satisfy_run_conditions() {
    for seed in 0..6u64 {
        let run = fig1_run(seed, TraceLevel::Steps);
        run.validate_run_conditions()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn fig2_runs_satisfy_run_conditions() {
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(0), Time(40))
        .build();
    let proposals = [Some(9), Some(8), Some(7), Some(6)];
    for f in 1..=3usize {
        let oracle = UpsilonOracle::new(&pattern, f, UpsilonChoice::default(), Time(100), 3);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(3))
            .max_steps(500_000);
        for (pid, algo) in fig2::algorithms(Fig2Config::new(f), &proposals) {
            builder = builder.spawn(pid, algo);
        }
        let run = builder.run().run;
        run.validate_run_conditions()
            .unwrap_or_else(|e| panic!("f {f}: {e}"));
    }
}

#[test]
fn extraction_runs_satisfy_run_conditions() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(2), Time(30))
        .build();
    let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(70), 5);
    let run = SimBuilder::<ProcessId>::new(pattern)
        .oracle(oracle)
        .adversary(SeededRandom::new(5))
        .max_steps(20_000)
        .spawn_all(|_| extraction_algorithm(phi_omega(3)))
        .run()
        .run;
    run.validate_run_conditions().expect("well-formed run");
}

#[test]
fn identical_configurations_reproduce_identical_runs() {
    let a = fig1_run(42, TraceLevel::Full);
    let b = fig1_run(42, TraceLevel::Full);
    assert_eq!(a.events(), b.events());
    assert_eq!(a.outputs(), b.outputs());
    assert_eq!(a.fd_samples(), b.fd_samples());
    assert_eq!(a.decisions(), b.decisions());
}

#[test]
fn different_seeds_diverge() {
    let a = fig1_run(1, TraceLevel::Steps);
    let b = fig1_run(2, TraceLevel::Steps);
    assert_ne!(
        a.events(),
        b.events(),
        "schedules and noise must differ across seeds"
    );
}

#[test]
fn crashed_processes_stop_exactly_at_their_crash_time() {
    let run = fig1_run(7, TraceLevel::Steps);
    for ev in run.events() {
        assert!(
            !run.pattern().is_crashed_at(ev.pid, ev.time),
            "{} took a step at {} after crashing",
            ev.pid,
            ev.time
        );
    }
    // And the correct processes kept taking steps to the end of their
    // protocol (they all finished).
    for p in run.pattern().correct() {
        assert!(run.finished(p), "{p} is correct and must finish");
    }
}

#[test]
fn fd_samples_match_the_oracle_history() {
    // Re-query a fresh oracle at the recorded (p, t) points: the values
    // must agree (histories are schedule-independent functions).
    use weakest_failure_detector::sim::Oracle;
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(1), Time(35))
        .crash(ProcessId(3), Time(70))
        .build();
    let run = fig1_run(9, TraceLevel::Steps);
    let mut fresh = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(90), 9);
    for (t, p, v) in run.fd_samples() {
        assert_eq!(*v, fresh.output(*p, *t), "H({p}, {t}) must be reproducible");
    }
}

#[test]
fn indistinguishability_closure_of_the_task_spec() {
    // §3.4: the problems considered are closed under indistinguishability —
    // if a trace ⟨F, σ, T⟩ is in the problem, so is ⟨F′, σ, T′⟩ whenever
    // correct(F) = correct(F′). Check the k-set-agreement checker honours
    // this: two runs with the same σ and patterns sharing a correct set get
    // the same verdict, regardless of crash *times* and step times.
    use weakest_failure_detector::agreement::check_k_set_agreement;
    let proposals = [Some(1), Some(2), Some(3)];
    let make = |crash_at: u64, seed: u64| {
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(1), Time(crash_at))
            .build();
        let oracle =
            UpsilonOracle::wait_free(&pattern, UpsilonChoice::ComplementOfCorrect, Time(60), seed);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern)
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(400_000);
        for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
            builder = builder.spawn(pid, algo);
        }
        builder.run().run
    };
    // Same correct set {p1, p3}; different crash times, same seed — runs
    // may or may not share σ, but whenever they do the verdicts agree.
    let a = make(40, 3);
    let b = make(90, 3);
    let va = check_k_set_agreement(&a, 2, &proposals).is_ok();
    let vb = check_k_set_agreement(&b, 2, &proposals).is_ok();
    assert!(va && vb);
    if a.induced_trace().same_sigma(&b.induced_trace()) {
        assert_eq!(a.decided_values(), b.decided_values());
    }
    // And a run re-timed (replayed through its own schedule) has an
    // identical induced trace.
    let schedule = a.schedule();
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(1), Time(40))
        .build();
    let oracle =
        UpsilonOracle::wait_free(&pattern, UpsilonChoice::ComplementOfCorrect, Time(60), 3);
    let mut builder = SimBuilder::<ProcessSet>::new(pattern)
        .oracle(oracle)
        .adversary(weakest_failure_detector::sim::Scripted::new(schedule))
        .max_steps(400_000);
    for (pid, algo) in fig1::algorithms(Fig1Config::default(), &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let replayed = builder.run().run;
    assert!(a.induced_trace().same_sigma(&replayed.induced_trace()));
}
