//! Differential harness for the two execution engines.
//!
//! Every configuration in the corpus below is run twice — once under the
//! single-threaded [`EngineKind::Inline`] step engine and once under the
//! thread-per-process [`EngineKind::Threads`] lockstep engine — and the
//! resulting runs must be **bit-identical**: same events, same schedule,
//! same FD samples, same outputs, same stop reason. The §3.3 run-condition
//! verdicts computed by `upsilon-analysis` must agree as well.
//!
//! The corpus spans every algorithm family in the workspace (k-converge,
//! Fig. 1, Fig. 2, Ω-consensus, boosting, both FD extraction loops, and
//! raw register/snapshot workloads) across failure patterns, oracle
//! choices, snapshot flavors and adversary seeds — 50+ seeded configs in
//! total. All configs are panic-free: panic *notification timing* is the
//! one place the thread engine is racy (see DESIGN.md), so panicking
//! algorithms are compared separately in `tests/engine_panics.rs`.

use upsilon_analysis::check_run_for;
use weakest_failure_detector::agreement::boost::BoostConfig;
use weakest_failure_detector::agreement::{
    boost, consensus, fig1, fig2, Fig1Config, Fig2Config, OmegaConsensusConfig,
};
use weakest_failure_detector::converge::ConvergeInstance;
use weakest_failure_detector::extract::{
    upsilon1_to_omega_algorithm, upsilon_to_anti_omega_algorithm,
};
use weakest_failure_detector::fd::{
    LeaderChoice, OmegaKChoice, OmegaKOracle, OmegaOracle, UpsilonChoice, UpsilonOracle,
};
use weakest_failure_detector::mem::{FlavoredSnapshot, RegisterArray, Snapshot, SnapshotFlavor};
use weakest_failure_detector::sim::{
    algo, run_batch, EngineKind, FailurePattern, FdValue, Key, Output, ProcessId, Run,
    SeededRandom, SimBuilder, Time,
};

/// Everything that must match between the two engines, as one comparable
/// string: the full `Debug` rendering of the run (events, schedule, FD
/// samples, outputs, stop reason — `Run` carries the whole trace) plus the
/// §3.3 run-condition verdict.
fn fingerprint<D: FdValue>(run: &Run<D>) -> String {
    format!("{run:?}\n{:?}", check_run_for(run))
}

/// A named corpus entry: given an engine, produce the run fingerprint.
type Job = (String, Box<dyn Fn(EngineKind) -> String + Send + Sync>);

fn job(name: String, f: impl Fn(EngineKind) -> String + Send + Sync + 'static) -> Job {
    (name, Box::new(f))
}

fn one_crash(n_plus_1: usize, who: usize, at: u64) -> FailurePattern {
    FailurePattern::builder(n_plus_1)
        .crash(ProcessId(who), Time(at))
        .build()
}

/// k-converge on distinct inputs; each process decides its picked value so
/// the result lands in the trace.
fn converge_jobs(corpus: &mut Vec<Job>) {
    let input_sets: [&[u64]; 3] = [&[5, 3, 8], &[1, 1, 2, 9], &[4, 7]];
    for (si, inputs) in input_sets.iter().enumerate() {
        for flavor in [SnapshotFlavor::Native, SnapshotFlavor::RegisterBased] {
            for seed in [11u64, 42] {
                let inputs: Vec<u64> = inputs.to_vec();
                let k = 1 + si % 2;
                corpus.push(job(
                    format!("converge/set{si}/k{k}/{flavor:?}/seed{seed}"),
                    move |engine| {
                        let n = inputs.len();
                        let inputs = inputs.clone();
                        let run = SimBuilder::<()>::new(FailurePattern::failure_free(n))
                            .engine(engine)
                            .adversary(SeededRandom::new(seed))
                            .spawn_all(move |pid| {
                                let v = inputs[pid.index()];
                                algo(move |ctx| async move {
                                    let inst = ConvergeInstance::new(
                                        Key::new("cv"),
                                        ctx.n_plus_1(),
                                        flavor,
                                    );
                                    let (picked, committed) = inst.converge(&ctx, k, v).await?;
                                    ctx.decide(picked * 2 + u64::from(committed)).await?;
                                    Ok(())
                                })
                            })
                            .run()
                            .run;
                        fingerprint(&run)
                    },
                ));
            }
        }
    }
}

/// Fig. 1 (Υ-based n-set agreement) across patterns, Υ policies and seeds.
fn fig1_jobs(corpus: &mut Vec<Job>) {
    let patterns = [
        ("ff3", FailurePattern::failure_free(3)),
        ("crash0@40of4", one_crash(4, 0, 40)),
    ];
    for (pname, pattern) in patterns {
        for choice in [UpsilonChoice::ComplementOfCorrect, UpsilonChoice::All] {
            for seed in [1u64, 9] {
                let pattern = pattern.clone();
                corpus.push(job(
                    format!("fig1/{pname}/{choice:?}/seed{seed}"),
                    move |engine| {
                        let n_plus_1 = pattern.n_plus_1();
                        let proposals: Vec<Option<u64>> =
                            (0..n_plus_1).map(|i| Some(i as u64 + 1)).collect();
                        let oracle = UpsilonOracle::wait_free(&pattern, choice, Time(60), seed);
                        let mut builder = SimBuilder::new(pattern.clone())
                            .engine(engine)
                            .oracle(oracle)
                            .adversary(SeededRandom::new(seed))
                            .max_steps(600_000);
                        for (pid, a) in fig1::algorithms(Fig1Config::default(), &proposals) {
                            builder = builder.spawn(pid, a);
                        }
                        fingerprint(&builder.run().run)
                    },
                ));
            }
        }
    }
}

/// Fig. 2 (Υ^f-based f-set agreement) for f ∈ {1, 2}.
fn fig2_jobs(corpus: &mut Vec<Job>) {
    for f in [1usize, 2] {
        for seed in [2u64, 5, 13] {
            corpus.push(job(format!("fig2/f{f}/seed{seed}"), move |engine| {
                let pattern = one_crash(4, 1, 25);
                assert!(pattern.in_environment(f));
                let proposals: Vec<Option<u64>> = (0..4).map(|i| Some(i + 1)).collect();
                let oracle =
                    UpsilonOracle::new(&pattern, f, UpsilonChoice::default(), Time(80), seed);
                let mut builder = SimBuilder::new(pattern.clone())
                    .engine(engine)
                    .oracle(oracle)
                    .adversary(SeededRandom::new(seed))
                    .max_steps(800_000);
                for (pid, a) in fig2::algorithms(Fig2Config::new(f), &proposals) {
                    builder = builder.spawn(pid, a);
                }
                fingerprint(&builder.run().run)
            }));
        }
    }
}

/// Ω-based consensus across patterns and seeds.
fn consensus_jobs(corpus: &mut Vec<Job>) {
    let patterns = [
        ("ff3", FailurePattern::failure_free(3)),
        ("crash2@15of3", one_crash(3, 2, 15)),
    ];
    for (pname, pattern) in patterns {
        for seed in [3u64, 7, 21] {
            let pattern = pattern.clone();
            corpus.push(job(
                format!("consensus/{pname}/seed{seed}"),
                move |engine| {
                    let proposals = [Some(10), Some(20), Some(30)];
                    let oracle =
                        OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(30), seed);
                    let mut builder = SimBuilder::new(pattern.clone())
                        .engine(engine)
                        .oracle(oracle)
                        .adversary(SeededRandom::new(seed))
                        .max_steps(400_000);
                    for (pid, a) in
                        consensus::algorithms(OmegaConsensusConfig::default(), &proposals)
                    {
                        builder = builder.spawn(pid, a);
                    }
                    fingerprint(&builder.run().run)
                },
            ));
        }
    }
}

/// Corollary 4 boosting: (n+1)-consensus from n-process objects and Ω_n.
fn boost_jobs(corpus: &mut Vec<Job>) {
    for seed in [4u64, 8, 15] {
        corpus.push(job(format!("boost/ff3/seed{seed}"), move |engine| {
            let pattern = FailurePattern::failure_free(3);
            let proposals = [Some(1), Some(2), Some(3)];
            let oracle = OmegaKOracle::new(
                &pattern,
                pattern.n(),
                OmegaKChoice::default(),
                Time(40),
                seed,
            );
            let mut builder = SimBuilder::new(pattern.clone())
                .engine(engine)
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(400_000);
            for (pid, a) in boost::algorithms(BoostConfig::default(), &proposals) {
                builder = builder.spawn(pid, a);
            }
            fingerprint(&builder.run().run)
        }));
    }
}

/// The two FD extraction loops (infinite; bounded by `max_steps`).
fn extraction_jobs(corpus: &mut Vec<Job>) {
    for seed in [6u64, 12, 18] {
        corpus.push(job(format!("upsilon1-omega/seed{seed}"), move |engine| {
            let pattern = one_crash(3, 0, 30);
            let oracle = UpsilonOracle::new(&pattern, 1, UpsilonChoice::default(), Time(90), seed);
            let run = SimBuilder::new(pattern.clone())
                .engine(engine)
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(10_000)
                .spawn_all(|_| upsilon1_to_omega_algorithm())
                .run()
                .run;
            fingerprint(&run)
        }));
        corpus.push(job(format!("anti-omega/seed{seed}"), move |engine| {
            let pattern = one_crash(3, 0, 30);
            let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::All, Time(80), seed);
            let run = SimBuilder::new(pattern.clone())
                .engine(engine)
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(10_000)
                .spawn_all(|_| upsilon_to_anti_omega_algorithm())
                .run()
                .run;
            fingerprint(&run)
        }));
    }
}

/// Raw shared-memory workloads with mid-run crashes: snapshot update/scan
/// rounds and register-array collect loops.
fn memory_jobs(corpus: &mut Vec<Job>) {
    for flavor in [SnapshotFlavor::Native, SnapshotFlavor::RegisterBased] {
        for seed in [16u64, 23, 99] {
            corpus.push(job(
                format!("snapshot/{flavor:?}/seed{seed}"),
                move |engine| {
                    let pattern = one_crash(4, 3, 12);
                    let run = SimBuilder::<()>::new(pattern)
                        .engine(engine)
                        .adversary(SeededRandom::new(seed))
                        .max_steps(50_000)
                        .spawn_all(move |pid| {
                            algo(move |ctx| async move {
                                let snap = FlavoredSnapshot::<u64>::new(
                                    flavor,
                                    Key::new("ds"),
                                    ctx.n_plus_1(),
                                );
                                for round in 0..4u64 {
                                    snap.update(&ctx, round * 10 + pid.index() as u64).await?;
                                    let view = snap.scan(&ctx).await?;
                                    let sum: u64 = view.iter().flatten().sum();
                                    ctx.output(Output::Value(sum)).await?;
                                }
                                Ok(())
                            })
                        })
                        .run()
                        .run;
                    fingerprint(&run)
                },
            ));
        }
    }
    for seed in [31u64, 44, 58, 71] {
        corpus.push(job(format!("registers/seed{seed}"), move |engine| {
            let pattern = FailurePattern::builder(3)
                .crash(ProcessId(1), Time(8))
                .crash(ProcessId(2), Time(20))
                .build();
            let run = SimBuilder::<()>::new(pattern)
                .engine(engine)
                .adversary(SeededRandom::new(seed))
                .max_steps(50_000)
                .spawn_all(move |pid| {
                    algo(move |ctx| async move {
                        let arr = RegisterArray::<u64>::new(Key::new("ra"), ctx.n_plus_1(), 0);
                        for ts in 1..=5u64 {
                            arr.write_mine(&ctx, ts * 100 + pid.index() as u64).await?;
                            let seen = arr.collect(&ctx).await?;
                            let top = seen.into_iter().max().unwrap_or(0);
                            ctx.output(Output::Value(top)).await?;
                        }
                        Ok(())
                    })
                })
                .run()
                .run;
            fingerprint(&run)
        }));
    }
}

fn corpus() -> Vec<Job> {
    let mut corpus = Vec::new();
    converge_jobs(&mut corpus);
    fig1_jobs(&mut corpus);
    fig2_jobs(&mut corpus);
    consensus_jobs(&mut corpus);
    boost_jobs(&mut corpus);
    extraction_jobs(&mut corpus);
    memory_jobs(&mut corpus);
    corpus
}

/// The headline differential test: both engines, every config, bit-identical
/// traces and run-condition verdicts. The inline side of the corpus runs
/// through [`run_batch`] (the parallel run-batch executor), which both
/// speeds the test up and smoke-tests deterministic result ordering — the
/// batch results must come back in corpus order.
#[test]
fn engines_agree_on_the_whole_corpus() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 50,
        "differential corpus must hold at least 50 configs, got {}",
        corpus.len()
    );

    let inline_jobs: Vec<_> = corpus
        .iter()
        .map(|(_, f)| move || f(EngineKind::Inline))
        .collect();
    let inline_runs = run_batch(inline_jobs, 4);
    assert_eq!(inline_runs.len(), corpus.len());

    let mut mismatches = Vec::new();
    for ((name, f), inline_fp) in corpus.iter().zip(&inline_runs) {
        let threads_fp = f(EngineKind::Threads);
        if *inline_fp != threads_fp {
            // Locate the first diverging line for the failure message.
            let diverge = inline_fp
                .lines()
                .zip(threads_fp.lines())
                .position(|(a, b)| a != b);
            mismatches.push(format!("{name}: first divergence at line {diverge:?}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "engines diverged on {} of {} configs:\n{}",
        mismatches.len(),
        corpus.len(),
        mismatches.join("\n")
    );
}

/// A single config fingerprint is itself reproducible under the batch
/// executor regardless of worker count (including the degenerate 1-worker
/// pool): determinism is per-run, not per-pool.
#[test]
fn batch_worker_count_does_not_affect_results() {
    let corpus = corpus();
    let sample: Vec<&Job> = corpus.iter().take(6).collect();
    let fp_with = |workers: usize| -> Vec<String> {
        let jobs: Vec<_> = sample
            .iter()
            .map(|(_, f)| move || f(EngineKind::Inline))
            .collect();
        run_batch(jobs, workers)
    };
    let one = fp_with(1);
    let four = fp_with(4);
    assert_eq!(one, four, "worker count changed batch results");
}
