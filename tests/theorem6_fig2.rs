//! Theorem 6 across the resilience spectrum: Fig. 2 solves f-set-agreement
//! with Υ^f and registers in E_f, plus the consistency corner cases
//! (f = n reduces to the wait-free problem; f = 1 is consensus).

use weakest_failure_detector::agreement::{check_k_set_agreement, fig2, Fig2Config};
use weakest_failure_detector::experiment::{run_fig2, AgreementConfig, Sched};
use weakest_failure_detector::fd::{all_legal_stable_sets, UpsilonChoice, UpsilonOracle};
use weakest_failure_detector::mem::SnapshotFlavor;
use weakest_failure_detector::sim::{
    Environment, FailurePattern, ProcessId, ProcessSet, SeededRandom, SimBuilder, Time,
};

fn run_once(
    pattern: &FailurePattern,
    f: usize,
    stable: ProcessSet,
    seed: u64,
    flavor: SnapshotFlavor,
) -> Result<(), String> {
    let proposals: Vec<Option<u64>> = (0..pattern.n_plus_1())
        .map(|i| Some(i as u64 + 1))
        .collect();
    let oracle = UpsilonOracle::new(pattern, f, UpsilonChoice::Fixed(stable), Time(120), seed);
    let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
        .oracle(oracle)
        .adversary(SeededRandom::new(seed))
        .max_steps(800_000);
    for (pid, algo) in fig2::algorithms(
        Fig2Config {
            flavor,
            ..Fig2Config::new(f)
        },
        &proposals,
    ) {
        builder = builder.spawn(pid, algo);
    }
    let run = builder.run().run;
    check_k_set_agreement(&run, f, &proposals)
        .map_err(|e| format!("pattern={pattern} f={f} U={stable} seed={seed}: {e}"))
}

/// Exhaustive 3-process check: every f, every pattern of E_f, every legal
/// stable set of Υ^f.
#[test]
fn exhaustive_three_processes_all_f() {
    for f in 1..=2usize {
        let env = Environment::new(3, f);
        for pattern in env.all_patterns_crashing_at(Time(50)) {
            for stable in all_legal_stable_sets(&pattern, f) {
                run_once(&pattern, f, stable, 3, SnapshotFlavor::Native)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }
}

/// Four processes, every f, exactly f crashes (the maximum the environment
/// allows), every legal stable set.
#[test]
fn max_crashes_for_every_f() {
    for f in 1..=3usize {
        let mut builder = FailurePattern::builder(4);
        for c in 0..f {
            builder = builder.crash(ProcessId(c), Time(30 + 25 * c as u64));
        }
        let pattern = builder.build();
        for stable in all_legal_stable_sets(&pattern, f) {
            run_once(&pattern, f, stable, 9, SnapshotFlavor::Native)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

/// The f = n corner: Fig. 2 solves exactly the problem Fig. 1 solves.
#[test]
fn wait_free_corner_agrees_with_fig1() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(0), Time(35))
        .crash(ProcessId(1), Time(70))
        .build();
    for stable in all_legal_stable_sets(&pattern, 2) {
        run_once(&pattern, 2, stable, 5, SnapshotFlavor::Native).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The f = 1 corner is consensus (single decided value).
#[test]
fn one_resilient_corner_is_consensus() {
    for seed in 0..5u64 {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(3), Time(40))
            .build();
        let cfg = AgreementConfig::new(pattern).seed(seed);
        let out = run_fig2(&cfg, 1, UpsilonChoice::default());
        out.assert_ok();
        assert_eq!(
            out.distinct.len(),
            1,
            "seed {seed}: f = 1 must yield one value"
        );
    }
}

/// Register-only substrate for Fig. 2 (snapshots and converges both built
/// from registers).
#[test]
fn register_only_substrate() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(1), Time(45))
        .build();
    run_once(
        &pattern,
        2,
        ProcessSet::all(3),
        13,
        SnapshotFlavor::RegisterBased,
    )
    .unwrap_or_else(|e| panic!("{e}"));
}

/// Round-robin schedules with five processes across all f.
#[test]
fn round_robin_five_processes() {
    for f in 1..=4usize {
        let pattern = FailurePattern::builder(5)
            .crash(ProcessId(2), Time(60))
            .build();
        if !pattern.in_environment(f) {
            continue;
        }
        let cfg = AgreementConfig::new(pattern)
            .sched(Sched::RoundRobin)
            .seed(f as u64);
        let out = run_fig2(&cfg, f, UpsilonChoice::default());
        out.assert_ok();
        assert!(out.distinct.len() <= f);
    }
}
