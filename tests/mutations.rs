//! Mutation tests: deliberately broken protocol variants must be *caught*
//! by the specification checkers. This validates that the checkers (and
//! hence every green test in this repository) are not vacuous, and doubles
//! as documentation of which protocol ingredient carries which property.

use weakest_failure_detector::agreement::{check_k_set_agreement, TaskViolation};
use weakest_failure_detector::converge::ConvergeInstance;
use weakest_failure_detector::mem::{Register, SnapshotFlavor};
use weakest_failure_detector::sim::algo;
use weakest_failure_detector::sim::{
    AlgoFn, FailurePattern, Key, ProcessSet, RoundRobin, Run, SimBuilder,
};

/// A broken Fig. 1: decides the value *picked* by n-converge even when it
/// did not commit. The commit gate is what carries Agreement — without it,
/// under a lock-step schedule all n+1 distinct proposals survive and get
/// decided.
fn fig1_without_commit_gate(v: u64) -> AlgoFn<ProcessSet> {
    algo(move |ctx| async move {
        let n = ctx.n();
        let inst = ConvergeInstance::new(
            Key::new("n-conv").at(1),
            ctx.n_plus_1(),
            SnapshotFlavor::Native,
        );
        let (picked, _committed_ignored) = inst.converge(&ctx, n, v).await?;
        // BUG: decide unconditionally.
        ctx.decide(picked).await?;
        Ok(())
    })
}

/// A broken leader consensus: decides the leader's proposal directly,
/// skipping commit–adopt. Before Ω stabilizes, two processes can trust two
/// different leaders and decide two values.
fn consensus_without_commit_adopt(v: u64) -> AlgoFn<upsilon_sim_pid::Pid> {
    algo(move |ctx| async move {
        let me = ctx.pid();
        let prop = Register::<Option<u64>>::new(Key::new("prop"), None);
        let leader = ctx.query_fd().await?;
        if leader == me {
            prop.write(&ctx, Some(v)).await?;
            // BUG: decide own proposal without any agreement layer.
            ctx.decide(v).await?;
            return Ok(());
        }
        loop {
            if let Some(w) = prop.read(&ctx).await? {
                // BUG: decide whatever the first observed "leader" wrote.
                ctx.decide(w).await?;
                return Ok(());
            }
            if ctx.query_fd().await? != leader {
                // BUG: give up waiting and decide own value.
                ctx.decide(v).await?;
                return Ok(());
            }
        }
    })
}

/// Alias so the closure type above can name Ω's value type tersely.
mod upsilon_sim_pid {
    pub type Pid = weakest_failure_detector::sim::ProcessId;
}

#[test]
fn missing_commit_gate_violates_agreement() {
    // Round-robin: every process writes before anyone scans, so every
    // n-converge pick is the process's own value — 3 distinct decisions.
    let proposals = [Some(1), Some(2), Some(3)];
    let outcome = SimBuilder::<ProcessSet>::new(FailurePattern::failure_free(3))
        .oracle(weakest_failure_detector::sim::DummyOracle::new(
            ProcessSet::all(3),
        ))
        .adversary(RoundRobin::new())
        .spawn_all(|pid| fig1_without_commit_gate(pid.index() as u64 + 1))
        .run()
        .run;
    let err = check_k_set_agreement(&outcome, 2, &proposals)
        .expect_err("the checker must catch the missing commit gate");
    assert!(matches!(err, TaskViolation::Agreement { .. }), "{err}");
}

#[test]
fn missing_commit_adopt_violates_consensus() {
    use weakest_failure_detector::fd::{LeaderChoice, OmegaOracle};
    use weakest_failure_detector::sim::{ProcessId, SeededRandom, Time};
    // Noisy Ω for a long time: different processes trust different leaders.
    let pattern = FailurePattern::failure_free(3);
    let proposals = [Some(10), Some(20), Some(30)];
    let mut caught = false;
    for seed in 0..20u64 {
        let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(10_000), seed);
        let run: Run<ProcessId> = SimBuilder::<ProcessId>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(100_000)
            .spawn_all(|pid| consensus_without_commit_adopt((pid.index() as u64 + 1) * 10))
            .run()
            .run;
        if let Err(TaskViolation::Agreement { .. }) = check_k_set_agreement(&run, 1, &proposals) {
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "skipping commit-adopt must eventually produce disagreement"
    );
}

#[test]
fn wrong_clean_threshold_breaks_c_agreement() {
    // A "k-converge" that computes cleanliness against k+1: with k = 1 and
    // two distinct inputs under round-robin, both processes see 2 distinct
    // values, wrongly call themselves clean, and commit their own values —
    // 2 values picked although someone committed.
    use std::sync::{Arc, Mutex};
    use upsilon_core::mem::{distinct_values, NativeSnapshot, Snapshot};

    fn broken_converge(v: u64) -> AlgoFn<()> {
        algo(move |ctx| async move {
            let n = ctx.n_plus_1();
            let s1 = NativeSnapshot::<u64>::new(Key::new("s1"), n);
            let s2 = NativeSnapshot::<(u64, bool)>::new(Key::new("s2"), n);
            s1.update(&ctx, v).await?;
            let scan1 = s1.scan(&ctx).await?;
            // BUG: threshold is k + 1 = 2 instead of k = 1.
            let clean = distinct_values(&scan1).len() <= 2;
            s2.update(&ctx, (v, clean)).await?;
            let scan2 = s2.scan(&ctx).await?;
            let all_clean = scan2.iter().flatten().all(|(_, c)| *c);
            let picked = if all_clean { (v, true) } else { (v, false) };
            ctx.output(weakest_failure_detector::sim::Output::Value(
                picked.0 * 2 + u64::from(picked.1),
            ))
            .await?;
            Ok(())
        })
    }

    let results: Arc<Mutex<Vec<(u64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let outcome = SimBuilder::<()>::new(FailurePattern::failure_free(2))
        .adversary(RoundRobin::new())
        .spawn_all(|pid| broken_converge(pid.index() as u64 + 1))
        .run()
        .run;
    drop(results);
    // Decode outputs: value*2+committed.
    let mut picked = Vec::new();
    let mut committed = false;
    for (_, _, o) in outcome.outputs() {
        if let weakest_failure_detector::sim::Output::Value(x) = o {
            picked.push(x >> 1);
            committed |= x & 1 == 1;
        }
    }
    picked.sort_unstable();
    picked.dedup();
    assert!(committed, "the broken routine commits under round-robin");
    assert!(
        picked.len() > 1,
        "C-Agreement is violated: someone committed yet {picked:?} were picked — \
         which the real k-converge never allows (see E10: zero violations)"
    );
}

#[test]
fn broken_upsilon_oracle_is_rejected_by_the_spec_checker() {
    // An "oracle" that stabilizes on exactly the correct set — the one
    // forbidden value. The Υ checker must reject it.
    use weakest_failure_detector::fd::check_upsilon;
    use weakest_failure_detector::sim::{ProcessId, Time};
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(0), Time(5))
        .build();
    let bad = pattern.correct();
    let samples: Vec<_> = (0..60u64)
        .flat_map(|t| (1..3usize).map(move |i| (Time(t), ProcessId(i), bad)))
        .collect();
    assert!(check_upsilon(&pattern, &samples, 1).is_err());
}

#[test]
fn run_condition_validator_catches_fabricated_traces() {
    // Hand-build a run whose trace has a crashed process taking a step; the
    // §3.3 validator must flag it. (The simulator itself can never produce
    // this — see model_conditions.rs — so we check the checker on a doctored
    // trace by re-validating a legitimate run against a *different* pattern.)
    use weakest_failure_detector::sim::{ProcessId, Time};
    let run = SimBuilder::<()>::new(FailurePattern::failure_free(2))
        .adversary(RoundRobin::new())
        .spawn_all(|_| {
            algo(move |ctx| async move {
                for _ in 0..5 {
                    ctx.yield_step().await?;
                }
                Ok(())
            })
        })
        .run()
        .run;
    assert_eq!(run.validate_run_conditions(), Ok(()));
    // The same events under a pattern where p2 crashed at time 0 would be
    // illegal; simulate the doctoring by checking directly.
    let strict = FailurePattern::builder(2)
        .crash(ProcessId(1), Time(0))
        .build();
    let illegal = run
        .events()
        .iter()
        .any(|e| strict.is_crashed_at(e.pid, e.time));
    assert!(
        illegal,
        "the doctored pattern must make some recorded step illegal"
    );
}
