//! Theorem 2, exhaustively: the Fig. 1 protocol solves n-set-agreement
//! using Υ and registers, across *every* failure pattern of the wait-free
//! environment, *every* legal stable output of Υ, and several schedules.

use weakest_failure_detector::agreement::{check_k_set_agreement, fig1, Fig1Config};
use weakest_failure_detector::experiment::{run_fig1, AgreementConfig, Sched};
use weakest_failure_detector::fd::{
    all_legal_stable_sets, UpsilonChoice, UpsilonNoise, UpsilonOracle,
};
use weakest_failure_detector::mem::SnapshotFlavor;
use weakest_failure_detector::sim::{
    Environment, FailurePattern, ProcessSet, SeededRandom, SimBuilder, Time,
};

fn run_once(
    pattern: &FailurePattern,
    stable: ProcessSet,
    seed: u64,
    flavor: SnapshotFlavor,
) -> Result<(), String> {
    let n = pattern.n();
    let proposals: Vec<Option<u64>> = (0..pattern.n_plus_1())
        .map(|i| Some(i as u64 + 1))
        .collect();
    let oracle = UpsilonOracle::wait_free(pattern, UpsilonChoice::Fixed(stable), Time(120), seed);
    let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
        .oracle(oracle)
        .adversary(SeededRandom::new(seed))
        .max_steps(600_000);
    for (pid, algo) in fig1::algorithms(Fig1Config { flavor }, &proposals) {
        builder = builder.spawn(pid, algo);
    }
    let run = builder.run().run;
    check_k_set_agreement(&run, n, &proposals)
        .map_err(|e| format!("pattern={pattern} U={stable} seed={seed}: {e}"))
}

/// Every (pattern, legal stable set) pair for a 3-process system: the
/// paper's §1 example ("eventually output any subset but {p2, p3}")
/// systematically.
#[test]
fn exhaustive_three_processes() {
    let env = Environment::wait_free(3);
    for pattern in env.all_patterns_crashing_at(Time(60)) {
        for stable in all_legal_stable_sets(&pattern, pattern.n()) {
            for seed in [1u64, 2] {
                run_once(&pattern, stable, seed, SnapshotFlavor::Native)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }
}

/// Spot-check of 4-process patterns with every legal stable set.
#[test]
fn four_processes_all_stable_sets() {
    use weakest_failure_detector::sim::ProcessId;
    let patterns = [
        FailurePattern::failure_free(4),
        FailurePattern::builder(4)
            .crash(ProcessId(0), Time(30))
            .build(),
        FailurePattern::builder(4)
            .crash(ProcessId(1), Time(30))
            .crash(ProcessId(3), Time(75))
            .build(),
        FailurePattern::builder(4)
            .crash(ProcessId(0), Time(20))
            .crash(ProcessId(1), Time(40))
            .crash(ProcessId(2), Time(60))
            .build(),
    ];
    for pattern in &patterns {
        for stable in all_legal_stable_sets(pattern, pattern.n()) {
            run_once(pattern, stable, 7, SnapshotFlavor::Native).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

/// The register-only claim: Fig. 1 works when every snapshot inside
/// k-converge is the Afek et al. register construction.
#[test]
fn register_only_substrate() {
    use weakest_failure_detector::sim::ProcessId;
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(2), Time(40))
        .build();
    for stable in all_legal_stable_sets(&pattern, 2).into_iter().take(3) {
        run_once(&pattern, stable, 11, SnapshotFlavor::RegisterBased)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Adversarial worst case: constant-Π noise plus lock-step scheduling makes
/// every decision wait for true stabilization; the protocol still
/// terminates right after it.
#[test]
fn worst_case_noise_terminates_after_stabilization() {
    for (n_plus_1, stab) in [(3usize, 500u64), (4, 800), (5, 1_000)] {
        let cfg = AgreementConfig::new(FailurePattern::failure_free(n_plus_1))
            .sched(Sched::RoundRobin)
            .noise(UpsilonNoise::ConstantAll)
            .stabilize_at(Time(stab));
        let out = run_fig1(&cfg, UpsilonChoice::default());
        out.assert_ok();
        let decided_by = out.decided_by.expect("terminated");
        assert!(
            decided_by.value() >= stab,
            "n+1={n_plus_1}: decision at {decided_by} cannot precede stabilization at {stab}"
        );
        assert!(
            out.total_steps < stab + 40_000,
            "n+1={n_plus_1}: decision should come promptly after stabilization"
        );
    }
}

/// Heavily skewed relative speeds (asynchrony!) change nothing.
#[test]
fn skewed_speeds_are_harmless() {
    use weakest_failure_detector::sim::ProcessId;
    let pattern = FailurePattern::builder(4)
        .crash(ProcessId(2), Time(55))
        .build();
    for seed in 0..4u64 {
        let cfg = AgreementConfig::new(pattern.clone())
            .sched(Sched::SkewedRandom)
            .seed(seed);
        run_fig1(&cfg, UpsilonChoice::default()).assert_ok();
    }
}

/// Many random seeds on a mid-size system, mixing stable-set policies.
#[test]
fn randomized_five_processes() {
    use weakest_failure_detector::sim::ProcessId;
    let pattern = FailurePattern::builder(5)
        .crash(ProcessId(1), Time(45))
        .crash(ProcessId(4), Time(90))
        .build();
    for seed in 0..8u64 {
        for choice in [
            UpsilonChoice::ComplementOfCorrect,
            UpsilonChoice::All,
            UpsilonChoice::FaultyPadded,
            UpsilonChoice::SubsetOfCorrect,
            UpsilonChoice::RandomLegal,
        ] {
            let cfg = AgreementConfig::new(pattern.clone()).seed(seed);
            let out = run_fig1(&cfg, choice);
            if let Err(e) = &out.spec {
                panic!("seed={seed} {choice:?}: {e}");
            }
        }
    }
}
