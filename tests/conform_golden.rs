//! Golden JSON-diagnostic snapshots for the static analyzers.
//!
//! The JSON renderings of `upsilon-conform`, `upsilon-commute` and the
//! determinism lint are consumed by CI and by external tooling; their
//! shape and ordering must not drift silently. Each test renders a report
//! over *fixed* inputs (the deliberately nonconforming / mis-classified
//! fixture crates, and a synthetic lint target) and compares it
//! byte-for-byte against a checked-in golden file.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test conform_golden
//! ```

use std::fs;
use std::path::PathBuf;
use upsilon_analysis::lint;
use upsilon_conform::{check_sources, Allowlist};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the golden file, or rewrites the file when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn conform_fixture_report_matches_golden_json() {
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/conform/fixtures/src");
    let mut sources: Vec<(String, String)> = [
        "c1_double_op.rs",
        "c2_banned_api.rs",
        "c3_leaked_handle.rs",
        "c4_unbounded_helping.rs",
    ]
    .iter()
    .map(|f| {
        let src = fs::read_to_string(fixtures.join(f)).expect("fixture readable");
        (format!("crates/conform/fixtures/src/{f}"), src)
    })
    .collect();
    sources.sort();
    let report = check_sources(&sources, &Allowlist::empty());
    assert_golden("conform_fixtures.json", &report.to_json());
}

#[test]
fn commute_fixture_report_matches_golden_json() {
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/commute/fixtures/src");
    let mut sources: Vec<(String, String)> = [
        "m1_read_writes.rs",
        "m2_write_escapes.rs",
        "m3_unknown_claim.rs",
        "m4_arm_mismatch.rs",
    ]
    .iter()
    .map(|f| {
        let src = fs::read_to_string(fixtures.join(f)).expect("fixture readable");
        (format!("crates/commute/fixtures/src/{f}"), src)
    })
    .collect();
    sources.sort();
    let report = upsilon_commute::check_sources(&sources, &upsilon_commute::Allowlist::empty());
    assert_golden("commute_fixtures.json", &report.to_json());
}

#[test]
fn lint_report_matches_golden_json() {
    // A synthetic source hitting several lint rules at fixed lines; one is
    // suppressed through an allowlist entry so both report sections are
    // pinned.
    let src = "\
use std::collections::HashMap;
use std::time::Instant;

fn noise() -> u64 {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
    m.len() as u64 + t.elapsed().as_secs()
}

fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}
";
    // The simulator-crate path puts the source in bare-unwrap's scope, so
    // the allowlisted suppression is exercised too.
    let findings = lint::scan_source("crates/sim/src/demo.rs", src);
    assert!(!findings.is_empty(), "the synthetic source must trip rules");
    let allow = lint::Allowlist::parse("bare-unwrap crates/sim/src/demo.rs pinned suppression")
        .expect("valid allowlist");
    let mut report = lint::LintReport {
        files_scanned: 1,
        ..Default::default()
    };
    for f in findings {
        if allow.permits(f.rule, &f.file) {
            report.suppressed.push(f);
        } else {
            report.violations.push(f);
        }
    }
    assert_golden("lint_demo.json", &report.to_json());
}
