//! The swarm determinism contract, held against the standalone runners:
//! every instance template run packed — at every worker count, batch size
//! and window mode — produces an [`InstanceResult`] **byte-identical** to
//! the same spec driven to completion alone through `SimBuilder::run`.
//! "Byte-identical" is the full `PartialEq` on the result: every decision,
//! the k-set-agreement verdict, each §3.3 run-condition verdict, the step
//! metrics and the canonical state fingerprint.
//!
//! The suite also pins the campaign layer: OS-style shard slices merged
//! through the content-addressed store reproduce the whole-campaign
//! report exactly.

use upsilon_swarm::{
    campaign_shard_range, campaign_specs, merge_records, mix_to_string, run_packed_specs,
    run_standalone, run_standalone_batch, run_swarm, run_swarm_collect, sample_specs, template,
    InstanceSpec, ShardRecord, SwarmConfig, TEMPLATES,
};

/// The packed-mode sweep of the acceptance criteria: worker counts 1/2/8
/// crossed with batch quotas 1/16/4096, plus both window modes at the
/// house batch.
const WORKERS: &[usize] = &[1, 2, 8];
const BATCHES: &[u64] = &[1, 16, 4096];

/// A mixed arena: every template, several seeds each, interleaved so that
/// neighbours in the arena run different protocols.
fn mixed_specs(copies: u64) -> Vec<InstanceSpec> {
    let mut specs = Vec::new();
    for seed_round in 0..copies {
        for spec in sample_specs(seed_round * 1001) {
            specs.push(spec);
        }
    }
    specs
}

/// Every template, standalone vs packed-with-neighbours, across the full
/// worker × batch sweep: the per-instance results must be equal field for
/// field, fingerprints included.
#[test]
fn every_template_packed_equals_standalone() {
    let specs = mixed_specs(3);
    let standalone: Vec<_> = specs.iter().map(run_standalone).collect();
    for &workers in WORKERS {
        for &batch in BATCHES {
            let (report, packed) = run_packed_specs(&specs, batch, workers, None, true);
            let packed = packed.expect("collect requested");
            assert_eq!(report.instances as usize, specs.len());
            assert_eq!(
                packed, standalone,
                "workers={workers} batch={batch}: packed results diverged from standalone"
            );
        }
    }
}

/// The same sweep in streaming mode: a bounded window (smaller than the
/// arena, including the degenerate window of one) changes residency, never
/// results or counters.
#[test]
fn windowed_streaming_equals_full_pack() {
    let specs = mixed_specs(2);
    let (full_report, full) = run_packed_specs(&specs, 64, 1, None, true);
    for &workers in WORKERS {
        for window in [1usize, 7, 64] {
            let (report, windowed) = run_packed_specs(&specs, 64, workers, Some(window), true);
            assert_eq!(
                windowed, full,
                "workers={workers} window={window}: streaming diverged from full pack"
            );
            assert_eq!(
                report, full_report,
                "workers={workers} window={window}: report fields must be window-invariant"
            );
        }
    }
}

/// The standalone reference itself is pool-invariant: `run_standalone_batch`
/// returns the same results at any worker count, in spec order.
#[test]
fn standalone_batch_matches_sequential_reference() {
    let specs = mixed_specs(2);
    let sequential: Vec<_> = specs.iter().map(run_standalone).collect();
    for &workers in WORKERS {
        assert_eq!(
            run_standalone_batch(&specs, workers),
            sequential,
            "workers={workers}: batch pool perturbed a standalone run"
        );
    }
}

/// Every checked-in template finishes cleanly — spec held, §3.3 run
/// conditions held, run completed — both alone and packed. A template that
/// cannot finish would poison every campaign mix that names it.
#[test]
fn every_template_is_clean() {
    for &(name, _, _, _) in TEMPLATES {
        let spec = template(name).expect("checked-in template");
        let alone = run_standalone(&spec);
        assert!(
            alone.outcome.spec.is_ok() && alone.outcome.run_conditions.is_ok(),
            "{name}: standalone run is not clean: {:?}",
            alone.outcome
        );
        let (report, _) = run_packed_specs(std::slice::from_ref(&spec), 16, 1, None, false);
        assert!(report.all_ok(), "{name}: packed run is not clean");
        assert_eq!(report.decisions, alone.decisions(), "{name}: decisions");
    }
}

/// Campaign-level differential: a 9-template-mix campaign collected
/// through [`run_swarm_collect`] equals the per-index standalone runs of
/// the campaign's own spec function.
#[test]
fn campaign_results_equal_standalone_specs() {
    let mix = vec![
        ("echo".to_string(), 2),
        ("converge-pair".to_string(), 3),
        ("fig1".to_string(), 2),
        ("fig2".to_string(), 1),
        ("converge-crash".to_string(), 1),
    ];
    let mut cfg = SwarmConfig::new(mix.clone(), 180);
    cfg.campaign_seed = 0xC0FFEE;
    cfg.batch = 8;
    cfg.workers = 2;
    let (report, packed) = run_swarm_collect(&cfg);
    assert!(report.all_ok(), "campaign must be clean");
    let specs = campaign_specs(&mix, cfg.campaign_seed, 0..180);
    let standalone: Vec<_> = specs.iter().map(run_standalone).collect();
    assert_eq!(packed, standalone);
}

/// Sharding differential: splitting a campaign into OS-style shard ranges,
/// running each slice separately and merging the shard records through the
/// content-addressed store reproduces the whole-campaign report exactly —
/// and every shard's collected results line up with the whole campaign's.
#[test]
fn sharded_campaign_merges_to_the_whole() {
    let mix = vec![
        ("converge-pair".to_string(), 2),
        ("fig1-crash".to_string(), 1),
        ("converge".to_string(), 1),
    ];
    let instances = 120;
    let mut whole = SwarmConfig::new(mix.clone(), instances);
    whole.campaign_seed = 7;
    whole.batch = 32;
    let (whole_report, whole_results) = run_swarm_collect(&whole);

    for shards in [2u64, 3, 5] {
        let mut records = Vec::new();
        let mut stitched = Vec::new();
        for index in 0..shards {
            let (lo, hi) = campaign_shard_range(instances, shards, index);
            let mut cfg = whole.clone();
            cfg.range = Some((lo, hi));
            let (report, results) = run_swarm_collect(&cfg);
            records.push(ShardRecord {
                mix: mix_to_string(&cfg.mix),
                instances,
                campaign_seed: cfg.campaign_seed,
                shard_index: index,
                shards,
                lo,
                hi,
                batch: cfg.batch,
                workers: cfg.workers as u64,
                report,
            });
            stitched.extend(results);
        }
        let merged = merge_records(&records).expect("ranges partition the campaign");
        assert_eq!(merged, whole_report, "{shards} shards: merged report");
        assert_eq!(stitched, whole_results, "{shards} shards: stitched results");
    }
}

/// The matrix-facing aggregate: `run_swarm` (counters only) agrees with
/// `run_swarm_collect` (counters + results), and both are worker- and
/// window-invariant.
#[test]
fn report_is_mode_invariant() {
    let mix = vec![("echo".to_string(), 1), ("fig1".to_string(), 1)];
    let mut cfg = SwarmConfig::new(mix, 64);
    cfg.campaign_seed = 99;
    let base = run_swarm(&cfg);
    for &workers in WORKERS {
        for window in [None, Some(5)] {
            let mut alt = cfg.clone();
            alt.workers = workers;
            alt.window = window;
            assert_eq!(run_swarm(&alt), base, "workers={workers} window={window:?}");
            let (collected, results) = run_swarm_collect(&alt);
            assert_eq!(collected, base);
            assert_eq!(results.len() as u64, base.instances);
        }
    }
}
