//! Property suite for the packed executor's invariants:
//!
//! * per-instance results are invariant under instance count, batch size,
//!   packing order, worker count and window mode;
//! * campaign seeding is collision-free (`instance_seed` acts injectively
//!   on any practical campaign range);
//! * memory accounting is monotone: retirement occupancy dominates
//!   admission occupancy, both are positive sums over instances, and
//!   growing the arena never shrinks either.

use proptest::collection::vec;
use proptest::prelude::*;
use upsilon_swarm::{instance_seed, run_packed_specs, run_standalone, InstanceSpec, TEMPLATES};

/// A random instance: any checked-in template under a small seed. Small
/// seeds are as good as large ones here (the scheduler hashes them), and
/// keep failure cases readable.
fn spec_strategy() -> impl Strategy<Value = InstanceSpec> {
    (0..TEMPLATES.len(), 0u64..1000).prop_map(|(t, seed)| {
        let (_, protocol, n_plus_1, crashes) = TEMPLATES[t];
        InstanceSpec {
            protocol,
            n_plus_1,
            crashes,
            seed,
        }
    })
}

fn arena_strategy() -> impl Strategy<Value = Vec<InstanceSpec>> {
    vec(spec_strategy(), 1..14)
}

proptest! {
    // Each case packs a whole arena several times; a few dozen cases give
    // broad template/seed coverage without minutes of wall clock.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Per-instance results are a function of the spec alone: neither the
    /// surrounding arena's size, nor the batch quota, nor the worker
    /// count, nor the window mode may leak into any instance.
    #[test]
    fn results_depend_only_on_the_spec(
        specs in arena_strategy(),
        batch in 1u64..200,
        workers in 1usize..5,
        window in proptest::option::of(1usize..10),
    ) {
        let standalone: Vec<_> = specs.iter().map(run_standalone).collect();
        let (report, packed) = run_packed_specs(&specs, batch, workers, window, true);
        prop_assert_eq!(packed.expect("collected"), standalone);
        prop_assert_eq!(report.instances as usize, specs.len());
    }

    /// Packing order is immaterial: reversing the arena permutes the
    /// results exactly, changing nothing per instance — and the aggregate
    /// report (a sum over instances) is identical.
    #[test]
    fn packing_order_is_immaterial(specs in arena_strategy(), batch in 1u64..100) {
        let (report, forward) = run_packed_specs(&specs, batch, 1, None, true);
        let reversed: Vec<_> = specs.iter().rev().cloned().collect();
        let (rev_report, backward) = run_packed_specs(&reversed, batch, 1, None, true);
        let mut backward = backward.expect("collected");
        backward.reverse();
        prop_assert_eq!(forward.expect("collected"), backward);
        prop_assert_eq!(report, rev_report);
    }

    /// Adding neighbours to the arena never disturbs the instances already
    /// there: the packed results over a prefix are the prefix of the packed
    /// results over the whole.
    #[test]
    fn neighbours_do_not_disturb_a_prefix(
        specs in arena_strategy(),
        cut in 0usize..14,
        batch in 1u64..100,
    ) {
        let cut = cut.min(specs.len());
        let (_, whole) = run_packed_specs(&specs, batch, 1, None, true);
        let (_, prefix) = run_packed_specs(&specs[..cut], batch, 1, None, true);
        prop_assert_eq!(&whole.expect("collected")[..cut], &prefix.expect("collected")[..]);
    }

    /// `instance_seed` is collision-free over any practical campaign: all
    /// seeds in a drawn window are distinct, and remain distinct across
    /// two distinct campaign seeds.
    #[test]
    fn campaign_seeding_has_no_collisions(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        lo in 0u64..1_000_000,
        len in 1u64..2_000,
    ) {
        let mut seen = std::collections::BTreeSet::new();
        for i in lo..lo + len {
            prop_assert!(seen.insert(instance_seed(a, i)), "collision within campaign {a} at {i}");
            if b != a {
                prop_assert!(
                    seen.insert(instance_seed(b, i)),
                    "collision across campaigns {a}/{b} at {i}"
                );
            }
        }
    }

    /// Memory accounting is monotone and positive: every instance admits
    /// at a positive occupancy, retires no smaller than it admitted
    /// (accumulator capacity never shrinks), and extending the arena can
    /// only grow both sums. All of it window-invariant.
    #[test]
    fn memory_accounting_is_monotone(
        specs in arena_strategy(),
        cut in 0usize..14,
        window in proptest::option::of(1usize..10),
    ) {
        let (whole, _) = run_packed_specs(&specs, 64, 1, window, false);
        prop_assert!(whole.packed_bytes >= specs.len() as u64, "admission occupancy is positive");
        prop_assert!(
            whole.arena_bytes >= whole.packed_bytes,
            "retirement occupancy {} under admission occupancy {}",
            whole.arena_bytes,
            whole.packed_bytes
        );
        let cut = cut.min(specs.len());
        let (prefix, _) = run_packed_specs(&specs[..cut], 64, 1, window, false);
        prop_assert!(prefix.packed_bytes <= whole.packed_bytes);
        prop_assert!(prefix.arena_bytes <= whole.arena_bytes);
        prop_assert!(prefix.total_steps <= whole.total_steps);
        // And the byte sums themselves are window-invariant.
        let (full_pack, _) = run_packed_specs(&specs, 64, 1, None, false);
        prop_assert_eq!(whole, full_pack);
    }
}
