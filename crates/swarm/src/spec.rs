//! Instance specs: what one swarm tenant runs.
//!
//! A swarm instance is an ordinary protocol run — Fig. 1, Fig. 2 or a bare
//! k-converge round — described by an [`InstanceSpec`] and constructed
//! through the *same* builder path as the standalone experiment runners in
//! `upsilon-core`. That sharing is the determinism contract of the swarm:
//! an instance's [`AgreementOutcome`] is byte-identical whether the run is
//! driven to completion in one shot ([`run_standalone`]) or interleaved
//! with millions of neighbours by the packed executor
//! ([`run_swarm`](crate::run_swarm)), because both paths execute the same
//! `RunCell` scheduler loop on the same configuration.

use upsilon_agreement::to_algorithms;
use upsilon_converge::ConvergeInstance;
use upsilon_core::experiment::{
    fig1_builder, fig2_builder, staggered_crashes, AgreementConfig, AgreementOutcome,
};
use upsilon_fd::UpsilonChoice;
use upsilon_sim::{
    algo, default_workers, run_batch, trace_fingerprint, FnvWrite, Key, ProcessSet, SimBuilder,
    SimOutcome, Time,
};

/// Which protocol an instance runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwarmProtocol {
    /// The paper's Fig. 1: Υ-based wait-free n-set-agreement.
    Fig1,
    /// The paper's Fig. 2: Υ^f-based f-resilient f-set-agreement.
    Fig2 {
        /// The resilience/agreement parameter `f ≥ 1`.
        f: usize,
    },
    /// The degenerate tenant: every process decides its own proposal in
    /// a single step. With proposals capped at one distinct value this is
    /// a trivially correct 1-set-agreement instance whose entire cost is
    /// the swarm machinery itself — the probe `bench_swarm` uses to
    /// measure executor overhead per decision.
    Echo,
    /// One bare k-converge round (Yang–Neiger–Gafni): every process
    /// invokes `k-converge` with its proposal and decides the picked
    /// value. Proposals are capped at `k` distinct values, so the
    /// Convergence property forces commits and C-Agreement bounds the
    /// decisions — a valid (and very cheap) k-set-agreement instance
    /// with no failure detector at all.
    Converge {
        /// The convergence parameter `k ≥ 1`.
        k: usize,
    },
}

impl SwarmProtocol {
    /// Short stable label for reports and mix strings.
    pub fn label(&self) -> String {
        match self {
            SwarmProtocol::Fig1 => "fig1".to_string(),
            SwarmProtocol::Echo => "echo".to_string(),
            SwarmProtocol::Fig2 { f } => format!("fig2(f={f})"),
            SwarmProtocol::Converge { k } => format!("converge(k={k})"),
        }
    }
}

/// One swarm tenant: protocol, system size, crash script and seed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstanceSpec {
    /// The protocol this instance runs.
    pub protocol: SwarmProtocol,
    /// Number of processes in the instance's system.
    pub n_plus_1: usize,
    /// Processes crashing at staggered times (`p_c` at `20 + 30·c`);
    /// `0` is failure-free.
    pub crashes: usize,
    /// The instance seed (drives scheduler and oracle noise). Campaign
    /// instances derive theirs via [`instance_seed`].
    pub seed: u64,
}

impl InstanceSpec {
    /// The agreement configuration the spec denotes. Oracles stabilize
    /// early (`t = 32`) — swarm instances are throughput tenants, not
    /// stabilization experiments — and the step budget is 200k, far above
    /// any of the packed protocols' worst cases.
    pub fn agreement_config(&self) -> AgreementConfig {
        let pattern = staggered_crashes(self.n_plus_1, self.crashes, 20);
        let mut cfg = AgreementConfig::new(pattern)
            .seed(self.seed)
            .stabilize_at(Time(32))
            .max_steps(200_000);
        match self.protocol {
            SwarmProtocol::Converge { k } => {
                let k = k.max(1);
                cfg = cfg.proposals(
                    (0..self.n_plus_1)
                        .map(|i| Some(1 + (i % k) as u64))
                        .collect(),
                );
            }
            SwarmProtocol::Echo => {
                cfg = cfg.proposals(vec![Some(1); self.n_plus_1]);
            }
            SwarmProtocol::Fig1 | SwarmProtocol::Fig2 { .. } => {}
        }
        cfg
    }

    /// The configured run: the builder, the `k` the outcome is checked
    /// against, and the proposals. Fig. 1/Fig. 2 go through the public
    /// `upsilon-core` builder constructors (the standalone runners' own
    /// path); the converge round is assembled here from the same
    /// `AgreementConfig` pieces.
    pub fn build(&self) -> (SimBuilder<ProcessSet>, usize, Vec<Option<u64>>) {
        let cfg = self.agreement_config();
        match self.protocol {
            SwarmProtocol::Fig1 => {
                let (builder, k) = fig1_builder(&cfg, UpsilonChoice::default());
                (builder, k, cfg.proposals)
            }
            SwarmProtocol::Fig2 { f } => {
                let (builder, k) = fig2_builder(&cfg, f.max(1), UpsilonChoice::default());
                (builder, k, cfg.proposals)
            }
            SwarmProtocol::Echo => {
                let algos = to_algorithms(&cfg.proposals, move |v| {
                    algo(move |ctx| async move {
                        ctx.decide(v).await?;
                        Ok(())
                    })
                });
                let mut builder = SimBuilder::<ProcessSet>::new(cfg.pattern.clone())
                    .adversary(cfg.sched.build(cfg.seed, self.n_plus_1))
                    .max_steps(cfg.max_steps);
                for (pid, a) in algos {
                    builder = builder.spawn(pid, a);
                }
                (builder, 1, cfg.proposals)
            }
            SwarmProtocol::Converge { k } => {
                let k = k.max(1);
                let n_plus_1 = self.n_plus_1;
                let flavor = cfg.flavor;
                let algos = to_algorithms(&cfg.proposals, move |v| {
                    algo(move |ctx| async move {
                        let inst = ConvergeInstance::new(Key::new("swarm-cv"), n_plus_1, flavor);
                        let (picked, _committed) = inst.converge(&ctx, k, v).await?;
                        ctx.decide(picked).await?;
                        Ok(())
                    })
                });
                let mut builder = SimBuilder::<ProcessSet>::new(cfg.pattern.clone())
                    .adversary(cfg.sched.build(cfg.seed, n_plus_1))
                    .max_steps(cfg.max_steps);
                for (pid, a) in algos {
                    builder = builder.spawn(pid, a);
                }
                (builder, k, cfg.proposals)
            }
        }
    }
}

/// One instance's final, comparable result: the full [`AgreementOutcome`]
/// plus the canonical state fingerprint of its run against its final
/// shared memory.
#[derive(Clone, PartialEq, Debug)]
pub struct InstanceResult {
    /// Decisions, spec verdict, §3.3 run-condition verdict, step metrics.
    pub outcome: AgreementOutcome,
    /// [`trace_fingerprint`] of the completed run.
    pub fingerprint: u64,
}

impl InstanceResult {
    /// Decisions made in this instance.
    pub fn decisions(&self) -> u64 {
        self.outcome.decided.iter().flatten().count() as u64
    }
}

/// Folds a completed run into its [`InstanceResult`] — the one fold both
/// the standalone path and the packed executor apply.
pub fn fold_outcome(
    outcome: &SimOutcome<ProcessSet>,
    k: usize,
    proposals: &[Option<u64>],
) -> InstanceResult {
    InstanceResult {
        outcome: AgreementOutcome::from_run(&outcome.run, &outcome.memory, k, proposals),
        fingerprint: trace_fingerprint(&outcome.run, &outcome.memory),
    }
}

/// Runs one instance standalone: build, drive to completion in one shot,
/// fold. The reference the differential suite holds the packed executor
/// against.
pub fn run_standalone(spec: &InstanceSpec) -> InstanceResult {
    let (builder, k, proposals) = spec.build();
    let outcome = builder.run();
    fold_outcome(&outcome, k, &proposals)
}

/// Runs many instances standalone over the [`run_batch`] worker pool;
/// results come back in spec order at any worker count.
pub fn run_standalone_batch(specs: &[InstanceSpec], workers: usize) -> Vec<InstanceResult> {
    let jobs: Vec<_> = specs
        .iter()
        .cloned()
        .map(|spec| move || run_standalone(&spec))
        .collect();
    run_batch(jobs, workers.max(1))
}

/// Derives the seed of campaign instance `index` from the campaign seed:
/// FNV-1a over `campaign_seed ‖ index`. Deterministic, shard-independent,
/// and collision-free across any practical campaign (locked by a proptest).
pub fn instance_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut w = FnvWrite::new();
    w.write_u64(campaign_seed);
    w.write_u64(index);
    w.finish()
}

/// The named instance templates a protocol mix draws from. Each entry is
/// `(name, protocol, n_plus_1, crashes)`; the differential suite runs every
/// one of them packed vs standalone.
pub const TEMPLATES: &[(&str, SwarmProtocol, usize, usize)] = &[
    // The cheapest tenant: four processes decide in one step each;
    // measures pure executor overhead.
    ("echo", SwarmProtocol::Echo, 4, 0),
    // The cheapest real tenant: a 2-process commit–adopt round, ~6 steps
    // each.
    ("converge-pair", SwarmProtocol::Converge { k: 1 }, 2, 0),
    ("converge", SwarmProtocol::Converge { k: 2 }, 3, 0),
    // The throughput tenant: one wide converge round amortizes the
    // per-instance pack/fold overhead over 16 decisions.
    ("converge-wide", SwarmProtocol::Converge { k: 2 }, 16, 0),
    ("converge-crash", SwarmProtocol::Converge { k: 2 }, 3, 1),
    ("fig1", SwarmProtocol::Fig1, 3, 0),
    ("fig1-crash", SwarmProtocol::Fig1, 3, 1),
    ("fig2", SwarmProtocol::Fig2 { f: 1 }, 3, 1),
];

/// Looks a template up by name (seed 0; campaigns overwrite it).
pub fn template(name: &str) -> Option<InstanceSpec> {
    TEMPLATES
        .iter()
        .find(|(n, _, _, _)| *n == name)
        .map(|&(_, protocol, n_plus_1, crashes)| InstanceSpec {
            protocol,
            n_plus_1,
            crashes,
            seed: 0,
        })
}

/// Parses a protocol-mix string: comma-separated `name[:weight]` entries,
/// e.g. `"converge-pair:8,fig1:1,fig2:1"`. Weights default to 1 and must
/// be positive; names must be known [`TEMPLATES`].
pub fn parse_mix(s: &str) -> Result<Vec<(String, u32)>, String> {
    let mut mix = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(format!("empty entry in mix `{s}`"));
        }
        let (name, weight) = match part.split_once(':') {
            Some((n, w)) => {
                let weight: u32 = w
                    .parse()
                    .map_err(|_| format!("bad weight `{w}` in mix entry `{part}`"))?;
                (n.trim(), weight)
            }
            None => (part, 1),
        };
        if weight == 0 {
            return Err(format!("zero weight in mix entry `{part}`"));
        }
        if template(name).is_none() {
            return Err(format!(
                "unknown template `{name}` in mix (known: {})",
                TEMPLATES
                    .iter()
                    .map(|(n, _, _, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        mix.push((name.to_string(), weight));
    }
    Ok(mix)
}

/// Renders a mix back to its canonical string (inverse of [`parse_mix`]).
pub fn mix_to_string(mix: &[(String, u32)]) -> String {
    mix.iter()
        .map(|(n, w)| format!("{n}:{w}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// The spec of campaign instance `index`: the template is the weighted
/// round-robin pick at `index mod Σweights` (protocols interleave evenly
/// through the arena), the seed is [`instance_seed`]. A pure function of
/// `(mix, campaign_seed, index)` — shards of the same campaign agree on
/// every instance without coordination.
pub fn campaign_spec(mix: &[(String, u32)], campaign_seed: u64, index: u64) -> InstanceSpec {
    let total: u64 = mix.iter().map(|(_, w)| u64::from(*w)).sum();
    let mut r = index % total.max(1);
    let mut name = mix
        .last()
        .map(|(n, _)| n.as_str())
        .expect("mix validated non-empty");
    for (n, w) in mix {
        if r < u64::from(*w) {
            name = n;
            break;
        }
        r -= u64::from(*w);
    }
    let mut spec = template(name).expect("mix validated against templates");
    spec.seed = instance_seed(campaign_seed, index);
    spec
}

/// The specs of campaign instances `range` (a shard's slice), in index
/// order.
pub fn campaign_specs(
    mix: &[(String, u32)],
    campaign_seed: u64,
    range: std::ops::Range<u64>,
) -> Vec<InstanceSpec> {
    range
        .map(|i| campaign_spec(mix, campaign_seed, i))
        .collect()
}

/// One spec per checked-in template, seeded from `campaign_seed` — the
/// protocol samples the differential suite sweeps.
pub fn sample_specs(campaign_seed: u64) -> Vec<InstanceSpec> {
    TEMPLATES
        .iter()
        .enumerate()
        .map(|(i, &(_, protocol, n_plus_1, crashes))| InstanceSpec {
            protocol,
            n_plus_1,
            crashes,
            seed: instance_seed(campaign_seed, i as u64),
        })
        .collect()
}

/// Default worker count for swarm CLI runs (the `run_batch` cap).
pub fn swarm_default_workers() -> usize {
    default_workers()
}
