//! The packed executor: many suspended runs, one engine loop.
//!
//! [`run_packed_specs`] packs every instance of a shard into a `SwarmCell`
//! arena (a vector of suspended [`RunCell`]s plus their fold parameters)
//! and sweeps it round-robin, granting each live cell a bounded step quota
//! per sweep. One thread therefore interleaves an arbitrary number of
//! protocol instances with no per-instance thread, channel or context
//! switch — the swarm pays one `poll` per granted step, exactly like a
//! standalone run, plus a pointer chase per cell per sweep.
//!
//! Batched stepping changes *when* an instance's steps happen relative to
//! its neighbours but never *which* steps happen: cells share nothing, and
//! a `RunCell` advanced in arbitrary quota slices is byte-identical to the
//! one-shot run by construction (see `upsilon-sim`). The differential and
//! property suites lock this: per-instance outcomes are invariant under
//! instance count, batch size, packing order and worker count.
//!
//! Worker sharding is contiguous: `workers` jobs over `run_batch`, each
//! packing and sweeping its own slice of the spec list, results merged in
//! spec order. Instances are independent, so the pool parallelises across
//! arena slices without perturbing any run.

use crate::spec::{campaign_specs, fold_outcome, mix_to_string, InstanceResult, InstanceSpec};
use upsilon_sim::{run_batch, ProcessSet, RunCell, StopReason};

/// A swarm campaign: the mix, the arena size, stepping and sharding knobs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SwarmConfig {
    /// Protocol mix as `(template name, weight)` pairs (see
    /// [`parse_mix`](crate::spec::parse_mix)).
    pub mix: Vec<(String, u32)>,
    /// Total campaign instances.
    pub instances: u64,
    /// Campaign seed; instance `i` runs at
    /// [`instance_seed`](crate::spec::instance_seed)`(seed, i)`.
    pub campaign_seed: u64,
    /// Step quota each live cell is granted per sweep.
    pub batch: u64,
    /// Worker threads (arena slices) for this process.
    pub workers: usize,
    /// The slice `[lo, hi)` of the campaign this process runs (an OS-level
    /// shard); `None` runs the whole campaign.
    pub range: Option<(u64, u64)>,
    /// Live-cell window per worker: `None` packs the whole slice before
    /// stepping (maximum residency — the "instances packed" headline);
    /// `Some(w)` streams the slice through at most `w` resident cells,
    /// admitting the next instance as one retires (bounded memory, cache-
    /// resident working set — the throughput mode). Per-instance results
    /// and every report field are window-invariant.
    pub window: Option<usize>,
}

impl SwarmConfig {
    /// A whole-campaign config with the house defaults: batch 64, one
    /// worker, seed 0.
    pub fn new(mix: Vec<(String, u32)>, instances: u64) -> Self {
        SwarmConfig {
            mix,
            instances,
            campaign_seed: 0,
            batch: 64,
            workers: 1,
            range: None,
            window: None,
        }
    }

    /// The instance index range this config covers.
    pub fn effective_range(&self) -> std::ops::Range<u64> {
        match self.range {
            Some((lo, hi)) => lo.min(self.instances)..hi.min(self.instances),
            None => 0..self.instances,
        }
    }

    /// Canonical one-line description (shard records embed it to detect
    /// mixed-campaign merges).
    pub fn campaign_key(&self) -> String {
        format!(
            "mix={} instances={} seed={}",
            mix_to_string(&self.mix),
            self.instances,
            self.campaign_seed
        )
    }
}

/// Aggregate result of a packed run. Every field is a sum over instances
/// (bytes included), so reports are independent of batch size, worker
/// count and packing order — asserted by the property suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SwarmReport {
    /// Instances executed.
    pub instances: u64,
    /// Σ cell `approx_bytes` at admission, before the instance's first
    /// step — in full-pack mode, the arena occupancy right after packing.
    pub packed_bytes: u64,
    /// Final arena occupancy: Σ cell `approx_bytes` at retirement — each
    /// cell's high-water mark, since accumulator capacity never shrinks.
    pub arena_bytes: u64,
    /// Steps granted across all instances.
    pub total_steps: u64,
    /// Decisions produced across all instances.
    pub decisions: u64,
    /// Failure-detector queries across all instances.
    pub fd_queries: u64,
    /// Instances whose k-set-agreement spec held.
    pub spec_ok: u64,
    /// Instances whose §3.3 run conditions held.
    pub run_cond_ok: u64,
    /// Instances that ran to completion (`StopReason::AllDone`).
    pub finished: u64,
}

impl SwarmReport {
    /// Final arena occupancy per instance, rounded up.
    pub fn bytes_per_instance(&self) -> u64 {
        if self.instances == 0 {
            0
        } else {
            self.arena_bytes.div_ceil(self.instances)
        }
    }

    /// Whether every instance finished with both verdicts clean.
    pub fn all_ok(&self) -> bool {
        self.spec_ok == self.instances
            && self.run_cond_ok == self.instances
            && self.finished == self.instances
    }

    fn absorb(&mut self, other: &SwarmReport) {
        self.instances += other.instances;
        self.packed_bytes += other.packed_bytes;
        self.arena_bytes += other.arena_bytes;
        self.total_steps += other.total_steps;
        self.decisions += other.decisions;
        self.fd_queries += other.fd_queries;
        self.spec_ok += other.spec_ok;
        self.run_cond_ok += other.run_cond_ok;
        self.finished += other.finished;
    }
}

/// One packed cell: the suspended run plus its outcome-fold parameters.
struct SwarmCell {
    cell: RunCell<ProcessSet>,
    k: usize,
    proposals: Vec<Option<u64>>,
}

/// Builds and suspends one instance.
fn pack(spec: &InstanceSpec) -> SwarmCell {
    let (builder, k, proposals) = spec.build();
    SwarmCell {
        cell: builder.into_cell(),
        k,
        proposals,
    }
}

/// Packs `specs` into one arena and sweeps it to completion on the calling
/// thread. `window` bounds the live cells (`None` = pack everything up
/// front); a retiring cell's slot immediately admits the next unpacked
/// instance, so the sweep streams the slice through a bounded arena.
/// Returns the aggregate report and, when `collect` is set, every
/// instance's result in spec order.
fn run_shard(
    specs: &[InstanceSpec],
    batch: u64,
    window: Option<usize>,
    collect: bool,
) -> (SwarmReport, Option<Vec<InstanceResult>>) {
    let batch = batch.max(1);
    let window = window.map_or(specs.len(), |w| w.clamp(1, specs.len().max(1)));
    let mut report = SwarmReport {
        instances: specs.len() as u64,
        ..SwarmReport::default()
    };
    let mut results: Option<Vec<Option<InstanceResult>>> =
        collect.then(|| (0..specs.len()).map(|_| None).collect());

    // Pack the first window before any step runs; full-pack mode admits
    // the whole slice here. Each slot carries its spec index so results
    // land in spec order whatever the retirement order.
    let mut next = 0usize;
    let mut slots: Vec<Option<(usize, SwarmCell)>> = Vec::with_capacity(window);
    while next < specs.len() && slots.len() < window {
        let packed = pack(&specs[next]);
        report.packed_bytes += packed.cell.approx_bytes() as u64;
        slots.push(Some((next, packed)));
        next += 1;
    }

    // Sweep: round-robin batched stepping until every cell retires and no
    // instance awaits admission.
    let mut live = slots.len();
    while live > 0 {
        for slot in &mut slots {
            let Some((_, packed)) = slot.as_mut() else {
                continue;
            };
            if packed.cell.step_quota(batch).is_none() {
                continue;
            }
            let (idx, packed) = slot.take().expect("slot checked live above");
            report.arena_bytes += packed.cell.approx_bytes() as u64;
            let sim = packed.cell.finish();
            if sim.run.stop_reason() == StopReason::AllDone {
                report.finished += 1;
            }
            let res = fold_outcome(&sim, packed.k, &packed.proposals);
            report.total_steps += res.outcome.total_steps;
            report.decisions += res.decisions();
            report.fd_queries += res.outcome.fd_queries as u64;
            report.spec_ok += u64::from(res.outcome.spec.is_ok());
            report.run_cond_ok += u64::from(res.outcome.run_conditions.is_ok());
            if let Some(results) = results.as_mut() {
                results[idx] = Some(res);
            }
            // Streaming refill: the retired slot admits the next instance.
            if next < specs.len() {
                let fresh = pack(&specs[next]);
                report.packed_bytes += fresh.cell.approx_bytes() as u64;
                *slot = Some((next, fresh));
                next += 1;
            } else {
                live -= 1;
            }
        }
    }

    (report, results.map(|v| v.into_iter().flatten().collect()))
}

/// The contiguous balanced range `[lo, hi)` of campaign instances that
/// OS-level shard `index` of `shards` runs. The ranges over all indices
/// partition `[0, instances)`; the first `instances mod shards` shards are
/// one instance longer.
pub fn campaign_shard_range(instances: u64, shards: u64, index: u64) -> (u64, u64) {
    let shards = shards.max(1);
    let index = index.min(shards - 1);
    let base = instances / shards;
    let rem = instances % shards;
    let lo = index * base + index.min(rem);
    let hi = lo + base + u64::from(index < rem);
    (lo, hi)
}

/// Contiguous balanced partition of `n` items into at most `workers`
/// non-empty chunks.
fn shard_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1).min(n.max(1));
    let base = n / workers;
    let rem = n % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut lo = 0;
    for i in 0..workers {
        let len = base + usize::from(i < rem);
        if len == 0 {
            continue;
        }
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

/// Packs `specs` into `workers` arena slices over the `run_batch` pool and
/// returns the merged report plus (when `collect` is set) every instance's
/// result in spec order. Per-instance results are independent of `batch`,
/// `workers` and the packing order of the surrounding arena.
pub fn run_packed_specs(
    specs: &[InstanceSpec],
    batch: u64,
    workers: usize,
    window: Option<usize>,
    collect: bool,
) -> (SwarmReport, Option<Vec<InstanceResult>>) {
    let ranges = shard_ranges(specs.len(), workers);
    let jobs: Vec<_> = ranges
        .into_iter()
        .map(|(lo, hi)| {
            let slice = specs[lo..hi].to_vec();
            move || run_shard(&slice, batch, window, collect)
        })
        .collect();
    let outs = run_batch(jobs, workers.max(1));
    let mut report = SwarmReport::default();
    let mut results = collect.then(Vec::new);
    for (shard_report, shard_results) in outs {
        report.absorb(&shard_report);
        if let (Some(all), Some(mut shard)) = (results.as_mut(), shard_results) {
            all.append(&mut shard);
        }
    }
    (report, results)
}

/// Runs a campaign slice and returns the aggregate report.
pub fn run_swarm(cfg: &SwarmConfig) -> SwarmReport {
    let specs = campaign_specs(&cfg.mix, cfg.campaign_seed, cfg.effective_range());
    run_packed_specs(&specs, cfg.batch, cfg.workers, cfg.window, false).0
}

/// Runs a campaign slice and returns the report plus per-instance results.
pub fn run_swarm_collect(cfg: &SwarmConfig) -> (SwarmReport, Vec<InstanceResult>) {
    let specs = campaign_specs(&cfg.mix, cfg.campaign_seed, cfg.effective_range());
    let (report, results) = run_packed_specs(&specs, cfg.batch, cfg.workers, cfg.window, true);
    (report, results.unwrap_or_default())
}
