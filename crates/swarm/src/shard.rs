//! Content-addressed shard store for OS-level campaign sharding.
//!
//! A campaign too large for one process is split into contiguous index
//! ranges, each run by a separate `upsilon-swarm shard` invocation. Every
//! shard writes one [`ShardRecord`] — campaign identity, its range and
//! its [`SwarmReport`] — into a shared store directory, named
//! `<fnv64-of-payload>.uswm1` exactly like the fuzz corpus: saves are
//! idempotent (a re-run shard rewrites the same file), loads sort by
//! filename, and [`merge_records`] refuses to sum shards unless their
//! ranges partition the campaign and their campaign identities agree.

use crate::executor::SwarmReport;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use upsilon_sim::Fnv64;

/// The file extension of shard records.
pub const SHARD_EXT: &str = "uswm1";

/// One completed shard of a campaign: identity, range and report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardRecord {
    /// Canonical mix string ([`mix_to_string`](crate::spec::mix_to_string)).
    pub mix: String,
    /// Total campaign instances (across all shards).
    pub instances: u64,
    /// The campaign seed.
    pub campaign_seed: u64,
    /// This shard's index in `0..shards`.
    pub shard_index: u64,
    /// Total shard count of the campaign.
    pub shards: u64,
    /// First campaign instance index this shard ran (inclusive).
    pub lo: u64,
    /// Last campaign instance index this shard ran (exclusive).
    pub hi: u64,
    /// Step quota per sweep the shard ran with.
    pub batch: u64,
    /// Worker threads the shard ran with.
    pub workers: u64,
    /// The shard's aggregate report.
    pub report: SwarmReport,
}

impl ShardRecord {
    /// Canonical single-line encoding, `USWM1:`-prefixed.
    pub fn encode(&self) -> String {
        let r = &self.report;
        format!(
            "USWM1: mix={} instances={} seed={} shard={}/{} lo={} hi={} \
             batch={} workers={} ran={} packed_bytes={} arena_bytes={} \
             steps={} decisions={} fd_queries={} spec_ok={} run_cond_ok={} \
             finished={}",
            self.mix,
            self.instances,
            self.campaign_seed,
            self.shard_index,
            self.shards,
            self.lo,
            self.hi,
            self.batch,
            self.workers,
            r.instances,
            r.packed_bytes,
            r.arena_bytes,
            r.total_steps,
            r.decisions,
            r.fd_queries,
            r.spec_ok,
            r.run_cond_ok,
            r.finished,
        )
    }

    /// Parses the [`encode`](Self::encode) form.
    pub fn parse(text: &str) -> Result<Self, String> {
        let body = text
            .trim()
            .strip_prefix("USWM1:")
            .ok_or_else(|| "missing USWM1: prefix".to_string())?;
        let get = |key: &str| -> Result<String, String> {
            for field in body.split_whitespace() {
                if let Some(v) = field.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
                    return Ok(v.to_string());
                }
            }
            Err(format!("missing field `{key}`"))
        };
        let num = |v: String, key: &str| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("bad number `{v}` for `{key}`"))
        };
        let mix = get("mix")?;
        let shard = get("shard")?;
        let (idx, total) = shard
            .split_once('/')
            .ok_or_else(|| format!("bad shard field `{shard}`"))?;
        let report = SwarmReport {
            instances: num(get("ran")?, "ran")?,
            packed_bytes: num(get("packed_bytes")?, "packed_bytes")?,
            arena_bytes: num(get("arena_bytes")?, "arena_bytes")?,
            total_steps: num(get("steps")?, "steps")?,
            decisions: num(get("decisions")?, "decisions")?,
            fd_queries: num(get("fd_queries")?, "fd_queries")?,
            spec_ok: num(get("spec_ok")?, "spec_ok")?,
            run_cond_ok: num(get("run_cond_ok")?, "run_cond_ok")?,
            finished: num(get("finished")?, "finished")?,
        };
        Ok(ShardRecord {
            mix,
            instances: num(get("instances")?, "instances")?,
            campaign_seed: num(get("seed")?, "seed")?,
            shard_index: idx
                .parse()
                .map_err(|_| format!("bad shard index `{idx}`"))?,
            shards: total
                .parse()
                .map_err(|_| format!("bad shard count `{total}`"))?,
            lo: num(get("lo")?, "lo")?,
            hi: num(get("hi")?, "hi")?,
            batch: num(get("batch")?, "batch")?,
            workers: num(get("workers")?, "workers")?,
            report,
        })
    }

    /// Campaign identity; records with different keys never merge.
    pub fn campaign_key(&self) -> String {
        format!(
            "mix={} instances={} seed={}",
            self.mix, self.instances, self.campaign_seed
        )
    }
}

fn record_name(record: &ShardRecord) -> String {
    let mut h = Fnv64::new();
    h.write(record.encode().as_bytes());
    format!("{:016x}.{SHARD_EXT}", h.finish())
}

/// Writes `record` into `dir` (created if missing), named by content hash.
/// Re-saving an identical record rewrites the same file. Returns the path
/// written.
pub fn save_record(dir: &Path, record: &ShardRecord) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(record_name(record));
    fs::write(&path, format!("{}\n", record.encode()))?;
    Ok(path)
}

/// Loads every `.uswm1` record in `dir`, sorted by filename. A missing
/// directory is an empty store; an unparsable record is an
/// [`io::ErrorKind::InvalidData`] error naming the file.
pub fn load_records(dir: &Path) -> io::Result<Vec<ShardRecord>> {
    let mut names: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == SHARD_EXT))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    names.sort();
    names
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path)?;
            ShardRecord::parse(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })
        })
        .collect()
}

/// Merges shard records of one campaign into its aggregate report.
///
/// Fails unless all records share one campaign key and their `[lo, hi)`
/// ranges exactly partition `[0, instances)` — no gap, no overlap, no
/// missing shard. Duplicate records (identical ranges, e.g. a shard saved
/// from a re-run) are deduplicated only if byte-identical.
pub fn merge_records(records: &[ShardRecord]) -> Result<SwarmReport, String> {
    let first = records.first().ok_or("no shard records to merge")?;
    let key = first.campaign_key();
    let mut unique: Vec<&ShardRecord> = Vec::new();
    for rec in records {
        if rec.campaign_key() != key {
            return Err(format!(
                "campaign mismatch: `{}` vs `{}`",
                rec.campaign_key(),
                key
            ));
        }
        match unique.iter().find(|u| u.lo == rec.lo && u.hi == rec.hi) {
            Some(u) if *u == rec => {}
            Some(_) => {
                return Err(format!(
                    "conflicting records for range [{}, {})",
                    rec.lo, rec.hi
                ))
            }
            None => unique.push(rec),
        }
    }
    unique.sort_by_key(|r| r.lo);
    let mut expect = 0;
    for rec in &unique {
        if rec.lo != expect {
            return Err(format!(
                "shard ranges do not partition the campaign: expected lo={expect}, got [{}, {})",
                rec.lo, rec.hi
            ));
        }
        if rec.hi <= rec.lo {
            return Err(format!("empty or inverted range [{}, {})", rec.lo, rec.hi));
        }
        expect = rec.hi;
    }
    if expect != first.instances {
        return Err(format!(
            "shard ranges cover [0, {expect}) but the campaign has {} instances",
            first.instances
        ));
    }
    let mut report = SwarmReport::default();
    for rec in &unique {
        report = SwarmReport {
            instances: report.instances + rec.report.instances,
            packed_bytes: report.packed_bytes + rec.report.packed_bytes,
            arena_bytes: report.arena_bytes + rec.report.arena_bytes,
            total_steps: report.total_steps + rec.report.total_steps,
            decisions: report.decisions + rec.report.decisions,
            fd_queries: report.fd_queries + rec.report.fd_queries,
            spec_ok: report.spec_ok + rec.report.spec_ok,
            run_cond_ok: report.run_cond_ok + rec.report.run_cond_ok,
            finished: report.finished + rec.report.finished,
        };
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(lo: u64, hi: u64, shards: u64, idx: u64) -> ShardRecord {
        ShardRecord {
            mix: "converge-pair:1".to_string(),
            instances: 100,
            campaign_seed: 7,
            shard_index: idx,
            shards,
            lo,
            hi,
            batch: 64,
            workers: 2,
            report: SwarmReport {
                instances: hi - lo,
                packed_bytes: 1000 * (hi - lo),
                arena_bytes: 2000 * (hi - lo),
                total_steps: 12 * (hi - lo),
                decisions: 2 * (hi - lo),
                fd_queries: 0,
                spec_ok: hi - lo,
                run_cond_ok: hi - lo,
                finished: hi - lo,
            },
        }
    }

    #[test]
    fn encode_parse_round_trip() {
        let r = rec(0, 50, 2, 0);
        assert_eq!(ShardRecord::parse(&r.encode()).expect("parses"), r);
    }

    #[test]
    fn save_is_idempotent_and_load_sorted() {
        let dir = std::env::temp_dir().join(format!("upsilon-swarm-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = rec(0, 50, 2, 0);
        let b = rec(50, 100, 2, 1);
        let p1 = save_record(&dir, &a).expect("save");
        let p2 = save_record(&dir, &a).expect("save");
        assert_eq!(p1, p2, "identical records share one file");
        save_record(&dir, &b).expect("save");
        let loaded = load_records(&dir).expect("load");
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains(&a) && loaded.contains(&b));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn merge_requires_partition() {
        let full = merge_records(&[rec(0, 50, 2, 0), rec(50, 100, 2, 1)]).expect("partition");
        assert_eq!(full.instances, 100);
        assert_eq!(full.decisions, 200);
        assert!(merge_records(&[rec(0, 50, 2, 0)]).is_err(), "gap at tail");
        assert!(
            merge_records(&[rec(0, 60, 2, 0), rec(50, 100, 2, 1)]).is_err(),
            "overlap"
        );
        assert!(merge_records(&[rec(10, 100, 2, 1)]).is_err(), "gap at head");
    }

    #[test]
    fn merge_rejects_campaign_mismatch() {
        let mut other = rec(50, 100, 2, 1);
        other.campaign_seed = 8;
        assert!(merge_records(&[rec(0, 50, 2, 0), other]).is_err());
    }
}
