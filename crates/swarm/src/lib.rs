//! `upsilon-swarm` — the multi-tenant swarm executor.
//!
//! The simulator's inline engine makes one protocol instance cost a few
//! hundred nanoseconds per step; what limits campaign scale is not the
//! stepping but the per-run scaffolding (threads, channels, allocation
//! churn). This crate removes that scaffolding: a swarm packs up to
//! millions of *suspended* runs — [`RunCell`](upsilon_sim::RunCell)s —
//! into one arena and drives them all from a single loop with batched
//! round-robin stepping, accounting arena bytes per instance as it goes.
//!
//! The determinism contract, locked by the differential and property
//! suites in `tests/`:
//!
//! * every instance's [`AgreementOutcome`](upsilon_core::experiment::AgreementOutcome)
//!   and state fingerprint is **byte-identical** to the same spec run
//!   standalone through `SimBuilder::run` / `run_batch`;
//! * per-instance results are invariant under instance count, batch
//!   size, packing order and worker count;
//! * campaign seeds are a pure function of `(campaign_seed, index)`, so
//!   OS-level shards of one campaign agree on every instance without
//!   coordination.
//!
//! Campaign shards persist their reports in a content-addressed store
//! ([`shard`]) keyed by record payload, mirroring the fuzz corpus: saves
//! are idempotent, loads are order-independent, and a merge verifies the
//! shard ranges partition the campaign before summing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod shard;
pub mod spec;

pub use executor::{
    campaign_shard_range, run_packed_specs, run_swarm, run_swarm_collect, SwarmConfig, SwarmReport,
};
pub use shard::{load_records, merge_records, save_record, ShardRecord};
pub use spec::{
    campaign_spec, campaign_specs, fold_outcome, instance_seed, mix_to_string, parse_mix,
    run_standalone, run_standalone_batch, sample_specs, swarm_default_workers, template,
    InstanceResult, InstanceSpec, SwarmProtocol, TEMPLATES,
};
