//! Command-line front end for swarm campaigns:
//! `cargo run -p upsilon-swarm -- run --mix converge-pair --instances 100000`.
//!
//! Subcommands:
//!
//! * `run` — pack and sweep a campaign (or a `--range` slice) in this
//!   process and print the aggregate report;
//! * `shard` — run one OS-level shard (`--shard I/T`) and write its
//!   record into a content-addressed `--store` directory;
//! * `campaign` — spawn `--shards` child `shard` processes of this same
//!   binary, wait for them, then merge the store;
//! * `merge` — merge the records already in a store.
//!
//! The CLI prints counters only — never wall-clock rates; timing lives in
//! `upsilon-bench`'s `bench_swarm`, outside the determinism-lint scan set.

use std::path::PathBuf;
use std::process::ExitCode;
use upsilon_swarm::{
    campaign_shard_range, load_records, merge_records, mix_to_string, parse_mix, run_swarm,
    save_record, swarm_default_workers, ShardRecord, SwarmConfig, SwarmReport,
};

const USAGE: &str = "usage: upsilon-swarm <run|shard|campaign|merge> [options]
  --mix LIST          comma-separated name[:weight] templates
                      (echo, converge-pair, converge, converge-wide,
                       converge-crash, fig1, fig1-crash, fig2;
                       default converge-pair)
  --instances N       total campaign instances (default 1024)
  --seed N            campaign seed (default 0)
  --batch N           step quota per cell per sweep (default 64)
  --window N          max live cells per worker (0 = pack all up front;
                      streaming admission otherwise; default 0)
  --workers N         worker threads per process (default 0 = auto)
  --range LO..HI      run only campaign indices [LO, HI) (run)
  --shard I/T         this process is shard I of T (shard)
  --shards T          child shard processes to spawn (campaign, default 2)
  --store DIR         shard-record store directory (shard/campaign/merge)
  --expect-ok         exit 1 unless every instance finished clean
  --help              this text";

#[derive(Clone, Debug)]
struct Args {
    mix: Vec<(String, u32)>,
    instances: u64,
    seed: u64,
    batch: u64,
    window: u64,
    workers: usize,
    range: Option<(u64, u64)>,
    shard: Option<(u64, u64)>,
    shards: u64,
    store: Option<PathBuf>,
    expect_ok: bool,
}

fn parse_args(it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        mix: vec![("converge-pair".to_string(), 1)],
        instances: 1024,
        seed: 0,
        batch: 64,
        window: 0,
        workers: 0,
        range: None,
        shard: None,
        shards: 2,
        store: None,
        expect_ok: false,
    };
    let mut it = it.peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        fn pair(name: &str, v: &str, sep: &str) -> Result<(u64, u64), String> {
            let (a, b) = v
                .split_once(sep)
                .ok_or_else(|| format!("{name}: expected A{sep}B, got `{v}`"))?;
            Ok((
                a.parse().map_err(|_| format!("{name}: bad number `{a}`"))?,
                b.parse().map_err(|_| format!("{name}: bad number `{b}`"))?,
            ))
        }
        match flag.as_str() {
            "--mix" => args.mix = parse_mix(&value("--mix")?)?,
            "--instances" => args.instances = num("--instances", value("--instances")?)?,
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            "--batch" => args.batch = num("--batch", value("--batch")?)?,
            "--window" => args.window = num("--window", value("--window")?)?,
            "--workers" => args.workers = num("--workers", value("--workers")?)?,
            "--range" => args.range = Some(pair("--range", &value("--range")?, "..")?),
            "--shard" => args.shard = Some(pair("--shard", &value("--shard")?, "/")?),
            "--shards" => args.shards = num("--shards", value("--shards")?)?,
            "--store" => args.store = Some(PathBuf::from(value("--store")?)),
            "--expect-ok" => args.expect_ok = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn config(args: &Args) -> SwarmConfig {
    SwarmConfig {
        mix: args.mix.clone(),
        instances: args.instances,
        campaign_seed: args.seed,
        batch: args.batch.max(1),
        window: (args.window > 0).then_some(args.window as usize),
        workers: if args.workers == 0 {
            swarm_default_workers()
        } else {
            args.workers
        },
        range: args.range,
    }
}

fn print_report(prefix: &str, report: &SwarmReport) {
    println!(
        "{prefix}: instances={} finished={} spec_ok={} run_cond_ok={} decisions={}",
        report.instances, report.finished, report.spec_ok, report.run_cond_ok, report.decisions
    );
    println!(
        "{prefix}: steps={} fd_queries={} packed_bytes={} arena_bytes={} bytes/instance={}",
        report.total_steps,
        report.fd_queries,
        report.packed_bytes,
        report.arena_bytes,
        report.bytes_per_instance()
    );
}

fn verdict(args: &Args, report: &SwarmReport) -> Result<(), String> {
    if args.expect_ok && !report.all_ok() {
        return Err(format!(
            "expected every instance clean: {}/{} finished, {}/{} spec_ok, {}/{} run_cond_ok",
            report.finished,
            report.instances,
            report.spec_ok,
            report.instances,
            report.run_cond_ok,
            report.instances
        ));
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let cfg = config(args);
    println!(
        "run: {} range={:?} batch={} workers={}",
        cfg.campaign_key(),
        cfg.effective_range(),
        cfg.batch,
        cfg.workers
    );
    let report = run_swarm(&cfg);
    print_report("run", &report);
    verdict(args, &report)
}

fn cmd_shard(args: &Args) -> Result<(), String> {
    let (index, total) = args.shard.ok_or("shard: --shard I/T is required")?;
    if total == 0 || index >= total {
        return Err(format!("shard: bad --shard {index}/{total}"));
    }
    let store = args.store.clone().ok_or("shard: --store DIR is required")?;
    let (lo, hi) = campaign_shard_range(args.instances, total, index);
    let mut cfg = config(args);
    cfg.range = Some((lo, hi));
    let report = run_swarm(&cfg);
    let record = ShardRecord {
        mix: mix_to_string(&cfg.mix),
        instances: cfg.instances,
        campaign_seed: cfg.campaign_seed,
        shard_index: index,
        shards: total,
        lo,
        hi,
        batch: cfg.batch,
        workers: cfg.workers as u64,
        report,
    };
    let path = save_record(&store, &record).map_err(|e| format!("shard: --store: {e}"))?;
    println!("shard {index}/{total}: [{lo}, {hi}) -> {}", path.display());
    print_report(&format!("shard {index}/{total}"), &report);
    verdict(args, &report)
}

fn cmd_merge(args: &Args) -> Result<(), String> {
    let store = args.store.clone().ok_or("merge: --store DIR is required")?;
    let records = load_records(&store).map_err(|e| format!("merge: --store: {e}"))?;
    println!("merge: {} record(s) in {}", records.len(), store.display());
    let report = merge_records(&records)?;
    print_report("merge", &report);
    verdict(args, &report)
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let store = args
        .store
        .clone()
        .ok_or("campaign: --store DIR is required")?;
    if args.shards == 0 {
        return Err("campaign: --shards must be positive".to_string());
    }
    let exe = std::env::current_exe().map_err(|e| format!("campaign: current_exe: {e}"))?;
    let mix = mix_to_string(&args.mix);
    let mut children = Vec::new();
    for index in 0..args.shards {
        let child = std::process::Command::new(&exe)
            .arg("shard")
            .args(["--mix", &mix])
            .args(["--instances", &args.instances.to_string()])
            .args(["--seed", &args.seed.to_string()])
            .args(["--batch", &args.batch.to_string()])
            .args(["--window", &args.window.to_string()])
            .args(["--workers", &args.workers.to_string()])
            .args(["--shard", &format!("{index}/{}", args.shards)])
            .arg("--store")
            .arg(&store)
            .spawn()
            .map_err(|e| format!("campaign: spawning shard {index}: {e}"))?;
        children.push((index, child));
    }
    for (index, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("campaign: waiting on shard {index}: {e}"))?;
        if !status.success() {
            return Err(format!("campaign: shard {index} failed: {status}"));
        }
    }
    cmd_merge(args)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let sub = argv.next().unwrap_or_else(|| "--help".to_string());
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match sub.as_str() {
        "run" => cmd_run(&args),
        "shard" => cmd_shard(&args),
        "campaign" => cmd_campaign(&args),
        "merge" => cmd_merge(&args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
