//! Small descriptive statistics for experiment tables.

use std::fmt;

/// Summary statistics of a set of `u64` samples (step counts, times).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean, rounded to nearest.
    pub mean: u64,
    /// Median (lower of the two middles for even counts).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
}

impl Summary {
    /// Computes the summary of `samples` (all zeros when empty).
    ///
    /// ```
    /// use upsilon_core::stats::Summary;
    /// let s = Summary::of(&[4, 1, 9]);
    /// assert_eq!((s.min, s.p50, s.max), (1, 4, 9));
    /// ```
    pub fn of(samples: &[u64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        let rank = |q_num: usize, q_den: usize| -> u64 {
            let idx = (count * q_num).div_ceil(q_den).clamp(1, count) - 1;
            sorted[idx]
        };
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: u64::try_from(sum / count as u128).unwrap_or(u64::MAX),
            p50: rank(1, 2),
            p95: rank(19, 20),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p50={} mean={} p95={} max={}",
            self.count, self.min, self.p50, self.mean, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7]);
        assert_eq!(
            (s.count, s.min, s.max, s.mean, s.p50, s.p95),
            (1, 7, 7, 7, 7, 7)
        );
    }

    #[test]
    fn known_distribution() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 50);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[5, 1, 9, 3]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.p50, 3);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1, 2, 3]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("max=3"));
    }
}
