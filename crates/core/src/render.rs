//! Human-readable rendering of recorded runs — per-process summaries and
//! event timelines, used by examples and debugging sessions.

use std::fmt::Write as _;
use upsilon_sim::{FdValue, Memory, ProcessId, Run, StepKind};

/// A per-process summary of a run: steps, queries, outputs, fate.
pub fn render_summary<D: FdValue>(run: &Run<D>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run under {} — {} steps total",
        run.pattern(),
        run.total_steps()
    );
    for i in 0..run.n_plus_1() {
        let p = ProcessId(i);
        let queries = run.fd_samples().iter().filter(|(_, q, _)| *q == p).count();
        let outputs = run.outputs_of(p).count();
        let fate = if run.finished(p) {
            "finished".to_string()
        } else if let Some(t) = run.crash_observed(p) {
            format!("crashed at {t}")
        } else if run.pattern().is_faulty(p) {
            "faulty (crash after last step)".to_string()
        } else {
            "still running at cutoff".to_string()
        };
        let decision = run.decisions()[i]
            .map(|v| format!("decided {v}"))
            .unwrap_or_else(|| "no decision".to_string());
        let _ = writeln!(
            out,
            "  {p}: {:>6} steps, {queries:>5} FD queries, {outputs:>3} outputs, {decision}, {fate}",
            run.steps_by()[i],
        );
    }
    out
}

/// The first and last `window` events of a run as a readable timeline.
/// With `memory`, shared-object operations are labelled by object name.
pub fn render_timeline<D: FdValue>(run: &Run<D>, memory: Option<&Memory>, window: usize) -> String {
    fn emit<D: FdValue>(
        out: &mut String,
        memory: Option<&Memory>,
        range: &[upsilon_sim::Event<D>],
    ) {
        for ev in range {
            let what = match &ev.kind {
                StepKind::Op { object, detail, .. } => {
                    let name = memory
                        .and_then(|m| m.name_of(*object))
                        .map(|k| k.to_string())
                        .unwrap_or_else(|| object.to_string());
                    match detail {
                        Some(d) => format!("op {name}: {d}"),
                        None => format!("op {name}"),
                    }
                }
                StepKind::Query(v) => format!("query FD -> {v:?}"),
                StepKind::Output(o) => format!("output {o}"),
                StepKind::NoOp => "noop".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:>8} {:<4} {what}",
                ev.time.to_string(),
                ev.pid.to_string()
            );
        }
    }

    let events = run.events();
    let mut out = String::new();
    if events.len() <= 2 * window {
        emit(&mut out, memory, events);
    } else {
        emit(&mut out, memory, &events[..window]);
        let _ = writeln!(out, "  … {} events elided …", events.len() - 2 * window);
        emit(&mut out, memory, &events[events.len() - window..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_sim::{algo, FailurePattern, Key, Output, SimBuilder, Time, TraceLevel};

    fn sample_outcome() -> upsilon_sim::SimOutcome<()> {
        let pattern = FailurePattern::builder(2)
            .crash(upsilon_sim::ProcessId(1), Time(3))
            .build();
        SimBuilder::<()>::new(pattern)
            .trace_level(TraceLevel::Full)
            .spawn_all(|pid| {
                algo(move |ctx| async move {
                    let reg = crate::mem::Register::new(Key::new("r"), 0u64);
                    for i in 0..4 {
                        reg.write(&ctx, i).await?;
                    }
                    ctx.output(Output::Decide(pid.index() as u64)).await?;
                    Ok(())
                })
            })
            .run()
    }

    #[test]
    fn summary_mentions_every_process() {
        let outcome = sample_outcome();
        let text = render_summary(&outcome.run);
        assert!(text.contains("p1:"), "{text}");
        assert!(text.contains("p2:"), "{text}");
        assert!(text.contains("decided 0"), "{text}");
        assert!(text.contains("crashed at"), "{text}");
    }

    #[test]
    fn timeline_labels_objects_and_elides() {
        let outcome = sample_outcome();
        let text = render_timeline(&outcome.run, Some(&outcome.memory), 2);
        assert!(text.contains("op r"), "{text}");
        assert!(text.contains("elided"), "{text}");
        let full = render_timeline(&outcome.run, Some(&outcome.memory), 100);
        assert!(full.contains("output decide(0)"), "{full}");
        assert!(!full.contains("elided"));
    }

    #[test]
    fn timeline_without_memory_uses_ids() {
        let outcome = sample_outcome();
        let text = render_timeline(&outcome.run, None, 100);
        assert!(text.contains("op obj#0"), "{text}");
    }
}
