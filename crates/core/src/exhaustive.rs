//! Exhaustive schedule enumeration for small configurations — a bounded
//! model checker for the lockstep simulator.
//!
//! Randomized schedules sample the interleaving space; for small protocols
//! the space is small enough to *enumerate*: a wait-free routine in which
//! process `i` takes exactly `c_i` steps has
//! `(Σc_i)! / Πc_i!` interleavings. For the paper's k-converge with native
//! snapshots (4 steps per process) that is 70 schedules for two processes
//! and 34 650 for three — every one of them can be run and checked in
//! seconds, turning statistical confidence into exhaustive coverage.
//!
//! Protocols whose step counts vary per schedule (anything looping on what
//! it reads, or using the register-based snapshot) are driven by the
//! enumerated prefix and completed with fair round-robin: coverage is then
//! "all interleavings of the first Σc_i steps", still a strong guarantee.

use upsilon_sim::ProcessId;

/// All interleavings of `counts[i]` steps of process `p_{i+1}`, in
/// lexicographic order.
///
/// ```
/// use upsilon_core::exhaustive::interleavings;
/// // Two steps of p1 merged with one step of p2: 3 interleavings.
/// assert_eq!(interleavings(&[2, 1]).len(), 3);
/// ```
///
/// # Panics
///
/// Panics if the total number of interleavings exceeds `10_000_000`
/// (guarding against accidental combinatorial explosions).
pub fn interleavings(counts: &[usize]) -> Vec<Vec<ProcessId>> {
    assert!(
        count_interleavings(counts) <= 10_000_000,
        "interleaving space too large to enumerate: {:?}",
        counts
    );
    let mut out = Vec::new();
    let mut remaining: Vec<usize> = counts.to_vec();
    let total: usize = counts.iter().sum();
    let mut current = Vec::with_capacity(total);
    recurse(&mut remaining, &mut current, total, &mut out);
    out
}

fn recurse(
    remaining: &mut Vec<usize>,
    current: &mut Vec<ProcessId>,
    total: usize,
    out: &mut Vec<Vec<ProcessId>>,
) {
    if current.len() == total {
        out.push(current.clone());
        return;
    }
    for i in 0..remaining.len() {
        if remaining[i] > 0 {
            remaining[i] -= 1;
            current.push(ProcessId(i));
            recurse(remaining, current, total, out);
            current.pop();
            remaining[i] += 1;
        }
    }
}

/// The number of interleavings of `counts[i]` steps per process
/// (`(Σc)! / Πc!`), saturating at `u64::MAX`.
pub fn count_interleavings(counts: &[usize]) -> u64 {
    // Multiply binomials incrementally to avoid overflow: the count is
    // Π_i C(prefix_i, c_i) with prefix_i the running total.
    let mut total: u64 = 0;
    let mut result: u64 = 1;
    for &c in counts {
        for j in 1..=c as u64 {
            total += 1;
            // result *= total; result /= j — keep exact by multiplying
            // first (binomial prefixes are integers).
            result = match result.checked_mul(total) {
                Some(r) => r / j,
                None => return u64::MAX,
            };
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn counting_matches_enumeration() {
        for counts in [
            vec![1usize, 1],
            vec![2, 2],
            vec![2, 1, 1],
            vec![3, 3],
            vec![2, 2, 2],
        ] {
            let all = interleavings(&counts);
            assert_eq!(all.len() as u64, count_interleavings(&counts), "{counts:?}");
        }
    }

    #[test]
    fn known_counts() {
        assert_eq!(count_interleavings(&[4, 4]), 70);
        assert_eq!(count_interleavings(&[4, 4, 4]), 34_650);
        assert_eq!(count_interleavings(&[1]), 1);
        assert_eq!(count_interleavings(&[]), 1);
    }

    #[test]
    fn schedules_are_distinct_and_well_formed() {
        let counts = [2usize, 3];
        let all = interleavings(&counts);
        let set: BTreeSet<&Vec<ProcessId>> = all.iter().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
        for s in &all {
            assert_eq!(s.len(), 5);
            assert_eq!(s.iter().filter(|p| p.index() == 0).count(), 2);
            assert_eq!(s.iter().filter(|p| p.index() == 1).count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn explosion_guard() {
        let _ = interleavings(&[20, 20, 20]);
    }
}
