//! Exhaustive schedule enumeration for small configurations — a bounded
//! model checker for the lockstep simulator.
//!
//! Randomized schedules sample the interleaving space; for small protocols
//! the space is small enough to *enumerate*: a wait-free routine in which
//! process `i` takes exactly `c_i` steps has
//! `(Σc_i)! / Πc_i!` interleavings. For the paper's k-converge with native
//! snapshots (4 steps per process) that is 70 schedules for two processes
//! and 34 650 for three — every one of them can be run and checked in
//! seconds, turning statistical confidence into exhaustive coverage.
//!
//! Protocols whose step counts vary per schedule (anything looping on what
//! it reads, or using the register-based snapshot) are driven by the
//! enumerated prefix and completed with fair round-robin: coverage is then
//! "all interleavings of the first Σc_i steps", still a strong guarantee.

use upsilon_sim::ProcessId;

/// All interleavings of `counts[i]` steps of process `p_{i+1}`, in
/// lexicographic order.
///
/// ```
/// use upsilon_core::exhaustive::interleavings;
/// // Two steps of p1 merged with one step of p2: 3 interleavings.
/// assert_eq!(interleavings(&[2, 1]).len(), 3);
/// ```
///
/// # Panics
///
/// Panics if the total number of interleavings exceeds `10_000_000`
/// (guarding against accidental combinatorial explosions).
pub fn interleavings(counts: &[usize]) -> Vec<Vec<ProcessId>> {
    assert!(
        count_interleavings(counts) <= 10_000_000,
        "interleaving space too large to enumerate: {:?}",
        counts
    );
    let mut out = Vec::new();
    for_each_interleaving(counts, |s| out.push(s.to_vec()));
    out
}

/// Visits every interleaving of `counts[i]` steps per process in
/// lexicographic order without materializing the space — the streaming
/// backbone of [`interleavings`], and the fallback enumerator for callers
/// (like `upsilon-check`'s naive mode) that walk spaces too large to
/// collect.
///
/// ```
/// use upsilon_core::exhaustive::for_each_interleaving;
/// let mut n = 0u64;
/// for_each_interleaving(&[4, 4], |_| n += 1);
/// assert_eq!(n, 70);
/// ```
pub fn for_each_interleaving(counts: &[usize], mut visit: impl FnMut(&[ProcessId])) {
    let mut remaining: Vec<usize> = counts.to_vec();
    let total: usize = counts.iter().sum();
    let mut current = Vec::with_capacity(total);
    recurse(&mut remaining, &mut current, total, &mut visit);
}

fn recurse(
    remaining: &mut Vec<usize>,
    current: &mut Vec<ProcessId>,
    total: usize,
    visit: &mut impl FnMut(&[ProcessId]),
) {
    if current.len() == total {
        visit(current);
        return;
    }
    for i in 0..remaining.len() {
        if remaining[i] > 0 {
            remaining[i] -= 1;
            current.push(ProcessId(i));
            recurse(remaining, current, total, visit);
            current.pop();
            remaining[i] += 1;
        }
    }
}

/// The number of nodes in the full scheduling tree of depth `depth` over
/// `width` always-eligible processes — `Σ_{d=1..depth} width^d`, saturating
/// at `u64::MAX`. This is what an explorer without partial-order reduction
/// visits in the worst case; comparing against its actual node count gives
/// the reduction ratio.
pub fn count_schedule_tree(width: usize, depth: usize) -> u64 {
    let mut total: u64 = 0;
    let mut level: u64 = 1;
    for _ in 0..depth {
        level = match level.checked_mul(width as u64) {
            Some(l) => l,
            None => return u64::MAX,
        };
        total = match total.checked_add(level) {
            Some(t) => t,
            None => return u64::MAX,
        };
    }
    total
}

/// The number of interleavings of `counts[i]` steps per process
/// (`(Σc)! / Πc!`), saturating at `u64::MAX`.
pub fn count_interleavings(counts: &[usize]) -> u64 {
    // Multiply binomials incrementally to avoid overflow: the count is
    // Π_i C(prefix_i, c_i) with prefix_i the running total.
    let mut total: u64 = 0;
    let mut result: u64 = 1;
    for &c in counts {
        for j in 1..=c as u64 {
            total += 1;
            // result *= total; result /= j — keep exact by multiplying
            // first (binomial prefixes are integers).
            result = match result.checked_mul(total) {
                Some(r) => r / j,
                None => return u64::MAX,
            };
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn counting_matches_enumeration() {
        for counts in [
            vec![1usize, 1],
            vec![2, 2],
            vec![2, 1, 1],
            vec![3, 3],
            vec![2, 2, 2],
        ] {
            let all = interleavings(&counts);
            assert_eq!(all.len() as u64, count_interleavings(&counts), "{counts:?}");
        }
    }

    #[test]
    fn known_counts() {
        assert_eq!(count_interleavings(&[4, 4]), 70);
        assert_eq!(count_interleavings(&[4, 4, 4]), 34_650);
        assert_eq!(count_interleavings(&[1]), 1);
        assert_eq!(count_interleavings(&[]), 1);
    }

    #[test]
    fn schedules_are_distinct_and_well_formed() {
        let counts = [2usize, 3];
        let all = interleavings(&counts);
        let set: BTreeSet<&Vec<ProcessId>> = all.iter().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
        for s in &all {
            assert_eq!(s.len(), 5);
            assert_eq!(s.iter().filter(|p| p.index() == 0).count(), 2);
            assert_eq!(s.iter().filter(|p| p.index() == 1).count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn explosion_guard() {
        let _ = interleavings(&[20, 20, 20]);
    }

    #[test]
    fn streaming_matches_collected() {
        let counts = [2usize, 2, 1];
        let mut streamed = Vec::new();
        for_each_interleaving(&counts, |s| streamed.push(s.to_vec()));
        assert_eq!(streamed, interleavings(&counts));
    }

    #[test]
    fn schedule_tree_counts() {
        // 3 + 9 + 27 = 39.
        assert_eq!(count_schedule_tree(3, 3), 39);
        assert_eq!(count_schedule_tree(1, 5), 5);
        assert_eq!(count_schedule_tree(2, 0), 0);
        assert_eq!(count_schedule_tree(1000, 1000), u64::MAX);
    }
}
