//! The failure-detector strength matrix around Υ — the paper's hierarchy
//! (§2, §4, Theorems 1 & 5, Corollaries 3–4), with each relationship
//! *mechanically revalidated* when the matrix is built.

use crate::experiment::{run_fig3, run_upsilon1_to_omega, StableSource};
use crate::table::Table;
use upsilon_extract::{play, ActivityCandidate, GameConfig, GameVerdict};
use upsilon_fd::{
    check_omega, check_upsilon, omega_from_upsilon_two_proc, upsilon_from_omega, LeaderChoice,
    OmegaKChoice, OmegaOracle, UpsilonChoice, UpsilonOracle,
};
use upsilon_sim::{FailurePattern, Oracle, ProcessId, Time};

/// How one detector relates to another in the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relation {
    /// A reduction exists and was just revalidated.
    Reduces,
    /// No reduction exists; the adversary game just refuted a candidate.
    DoesNotReduce,
}

impl Relation {
    fn label(self) -> &'static str {
        match self {
            Relation::Reduces => "yes",
            Relation::DoesNotReduce => "no (game)",
        }
    }
}

/// One revalidated edge of the hierarchy.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Source detector.
    pub from: &'static str,
    /// Target detector.
    pub to: &'static str,
    /// Whether `from` can emulate `to`.
    pub relation: Relation,
    /// How the relationship was just revalidated.
    pub mechanism: &'static str,
}

/// Builds and revalidates the strength matrix. Each edge actually runs its
/// mechanism (a reduction spec-check or an adversary game); a panic here
/// means the hierarchy broke.
pub fn validated_edges() -> Vec<Edge> {
    let mut edges = Vec::new();
    let pattern3 = FailurePattern::builder(4)
        .crash(ProcessId(0), Time(9_000))
        .build();

    // Ω → Υ: complement map (§4), checked against the Υ spec.
    {
        let omega = OmegaOracle::new(&pattern3, LeaderChoice::MinCorrect, Time(40), 1);
        let mut ups = upsilon_from_omega(4, omega);
        let mut samples = Vec::new();
        for t in 0..120u64 {
            for i in 0..4 {
                let p = ProcessId(i);
                if !pattern3.is_crashed_at(p, Time(t)) {
                    samples.push((Time(t), p, ups.output(p, Time(t))));
                }
            }
        }
        check_upsilon(&pattern3, &samples, 5).expect("Ω → Υ complement reduction");
        edges.push(Edge {
            from: "Omega",
            to: "Upsilon",
            relation: Relation::Reduces,
            mechanism: "complement map (§4), Υ spec-checked",
        });
    }

    // Ω_n → Υ and Ω_f → Υ^f: Fig. 3 with φ_{Ω_k} (also the complement).
    {
        let out = run_fig3(
            &pattern3,
            StableSource::OmegaK(3, OmegaKChoice::default()),
            3,
            Time(60),
            2,
            40_000,
        );
        out.assert_ok();
        edges.push(Edge {
            from: "Omega_n",
            to: "Upsilon",
            relation: Relation::Reduces,
            mechanism: "Fig. 3 with φ_{Ω_n} (complement), Υ spec-checked",
        });
    }

    // P / ◇P → Υ^f: Fig. 3 with φ_P.
    for (label, source) in [
        ("P", StableSource::Perfect),
        ("<>P", StableSource::EventuallyPerfect),
    ] {
        let out = run_fig3(&pattern3, source, 3, Time(80), 3, 40_000);
        out.assert_ok();
        edges.push(Edge {
            from: label,
            to: "Upsilon",
            relation: Relation::Reduces,
            mechanism: "Fig. 3 with φ_P, Υ spec-checked",
        });
    }

    // Υ → Ω_n: impossible (Theorem 1) — the game defeats the live candidate.
    {
        let verdict = play(GameConfig::theorem_1(4, 3), &ActivityCandidate);
        assert!(verdict.changes() >= 3 || matches!(verdict, GameVerdict::Refuted { .. }));
        edges.push(Edge {
            from: "Upsilon",
            to: "Omega_n",
            relation: Relation::DoesNotReduce,
            mechanism: "Theorem 1 adversary game (candidate defeated)",
        });
    }

    // Υ^f → Ω^f (f = 2): impossible (Theorem 5).
    {
        let verdict = play(GameConfig::theorem_5(4, 2, 3), &ActivityCandidate);
        assert!(verdict.changes() >= 3 || matches!(verdict, GameVerdict::Refuted { .. }));
        edges.push(Edge {
            from: "Upsilon^f",
            to: "Omega^f (2≤f≤n)",
            relation: Relation::DoesNotReduce,
            mechanism: "Theorem 5 adversary game (candidate defeated)",
        });
    }

    // Υ¹ → Ω in E_1 (§5.3): timestamp extraction, Ω spec-checked.
    {
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(2), Time(50))
            .build();
        run_upsilon1_to_omega(&pattern, UpsilonChoice::All, Time(100), 4, 40_000)
            .expect("Υ¹ → Ω extraction");
        edges.push(Edge {
            from: "Upsilon^1 (E_1)",
            to: "Omega",
            relation: Relation::Reduces,
            mechanism: "timestamp election (§5.3), Ω spec-checked",
        });
    }

    // Υ → anti-Ω (Zielinski; cited in §2): least-active-member-of-U rule.
    {
        use upsilon_extract::upsilon_to_anti_omega_algorithm;
        use upsilon_fd::check_anti_omega;
        use upsilon_sim::{Output, SeededRandom, SimBuilder};
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(0), Time(30))
            .build();
        let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::All, Time(80), 6);
        let run = SimBuilder::<upsilon_sim::ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(6))
            .max_steps(12_000)
            .spawn_all(|_| upsilon_to_anti_omega_algorithm())
            .run()
            .run;
        let samples: Vec<_> = run
            .outputs()
            .iter()
            .filter_map(|(t, p, o)| match o {
                Output::Leader(l) => Some((*t, *p, *l)),
                _ => None,
            })
            .collect();
        check_anti_omega(&pattern, &samples).expect("Υ → anti-Ω emulation");
        edges.push(Edge {
            from: "Upsilon",
            to: "anti-Omega",
            relation: Relation::Reduces,
            mechanism: "least-active-of-U rule, anti-Ω spec-checked",
        });
    }

    // Υ ↔ Ω for two processes (§4).
    {
        let pattern = FailurePattern::builder(2)
            .crash(ProcessId(0), Time(8))
            .build();
        let ups = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(25), 5);
        let mut omega = omega_from_upsilon_two_proc(ups);
        let mut samples = Vec::new();
        for t in 0..80u64 {
            for i in 0..2 {
                let p = ProcessId(i);
                if !pattern.is_crashed_at(p, Time(t)) {
                    samples.push((Time(t), p, omega.output(p, Time(t))));
                }
            }
        }
        check_omega(&pattern, &samples, 5).expect("Υ → Ω for two processes");
        edges.push(Edge {
            from: "Upsilon (2 procs)",
            to: "Omega (2 procs)",
            relation: Relation::Reduces,
            mechanism: "complement rule (§4), Ω spec-checked",
        });
    }

    edges
}

/// The matrix as a printable table (experiment E13).
pub fn hierarchy_table() -> Table {
    let mut t = Table::new(
        "E13 — detector hierarchy around Υ (each edge revalidated live)",
        &["from", "emulates", "?", "mechanism"],
    );
    for e in validated_edges() {
        t.row([e.from, e.to, e.relation.label(), e.mechanism]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_revalidates_every_edge() {
        let edges = validated_edges();
        assert_eq!(edges.len(), 9);
        let reduces = edges
            .iter()
            .filter(|e| e.relation == Relation::Reduces)
            .count();
        assert_eq!(reduces, 7);
    }

    #[test]
    fn table_renders() {
        let t = hierarchy_table();
        assert_eq!(t.len(), 9);
        let text = t.to_string();
        assert!(text.contains("Theorem 1 adversary game"));
        assert!(text.contains("complement map"));
    }
}
