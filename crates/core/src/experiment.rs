//! The experiment harness: one runner per paper artifact (see DESIGN.md's
//! experiment index E1–E12), shared by the Criterion benches, the
//! `experiments` binary and the integration tests.

use upsilon_agreement::{
    baseline, boost, check_k_set_agreement, consensus, fig1, fig2, Fig1Config, Fig2Config,
    TaskViolation,
};
use upsilon_extract::{extraction_algorithm, phi_omega, phi_omega_k, phi_perfect};
use upsilon_fd::{
    check_omega, check_upsilon_f, held_variable_samples, EventuallyPerfectOracle, LeaderChoice,
    OmegaKChoice, OmegaKOracle, OmegaOracle, PerfectOracle, SpecViolation, StabilityReport,
    UpsilonChoice, UpsilonNoise, UpsilonOracle,
};
use upsilon_mem::SnapshotFlavor;
use upsilon_sim::{
    default_workers, run_batch, Adversary, FailurePattern, FdValue, Output, ProcessId, ProcessSet,
    RoundRobin, Run, SeededRandom, SimBuilder, Time, WeightedRandom,
};

/// Which scheduler drives an experiment run.
///
/// Round-robin is the adversarially interesting schedule for the agreement
/// protocols: all `n + 1` proposals survive every converge phase (everyone
/// scans after everyone updated), so decisions genuinely wait for Υ.
/// Seeded-random schedules typically let early converges commit by luck —
/// also legal, and worth measuring as the average case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sched {
    /// Fair round-robin (lock-step phases; the worst case for converge).
    RoundRobin,
    /// Fair uniform random from the config seed.
    Random,
    /// Skewed random: process `p_1` runs 10× faster than the rest.
    SkewedRandom,
}

impl Sched {
    /// Builds the adversary this policy denotes for a `n_plus_1`-process
    /// run seeded with `seed` — public so alternative executors construct
    /// schedules identical to the runners in this module.
    pub fn build(self, seed: u64, n_plus_1: usize) -> Box<dyn Adversary> {
        match self {
            Sched::RoundRobin => Box::new(RoundRobin::new()),
            Sched::Random => Box::new(SeededRandom::new(seed)),
            Sched::SkewedRandom => {
                let mut weights = vec![1u32; n_plus_1];
                weights[0] = 10;
                Box::new(WeightedRandom::new(seed, weights))
            }
        }
    }
}

/// Common configuration of an agreement experiment run.
#[derive(Clone, Debug)]
pub struct AgreementConfig {
    /// The failure pattern of the run.
    pub pattern: FailurePattern,
    /// Per-process proposals (`None` = non-participant).
    pub proposals: Vec<Option<u64>>,
    /// When the oracle stabilizes.
    pub stabilize_at: Time,
    /// Seed for the scheduler and oracle noise.
    pub seed: u64,
    /// Snapshot implementation used by the protocol.
    pub flavor: SnapshotFlavor,
    /// Step budget.
    pub max_steps: u64,
    /// Scheduling policy.
    pub sched: Sched,
    /// Υ pre-stabilization noise policy (ignored by non-Υ oracles).
    pub noise: UpsilonNoise,
}

impl AgreementConfig {
    /// Defaults: distinct proposals `1..=n+1`, stabilization at step 100,
    /// seed 0, native snapshots, 800k step budget.
    pub fn new(pattern: FailurePattern) -> Self {
        let n_plus_1 = pattern.n_plus_1();
        AgreementConfig {
            pattern,
            proposals: upsilon_agreement::distinct_proposals(n_plus_1),
            stabilize_at: Time(100),
            seed: 0,
            flavor: SnapshotFlavor::Native,
            max_steps: 800_000,
            sched: Sched::Random,
            noise: UpsilonNoise::Random,
        }
    }

    /// Replaces the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the oracle stabilization time.
    pub fn stabilize_at(mut self, t: Time) -> Self {
        self.stabilize_at = t;
        self
    }

    /// Replaces the snapshot flavor.
    pub fn flavor(mut self, flavor: SnapshotFlavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Replaces the proposals.
    pub fn proposals(mut self, proposals: Vec<Option<u64>>) -> Self {
        assert_eq!(proposals.len(), self.pattern.n_plus_1());
        self.proposals = proposals;
        self
    }

    /// Replaces the scheduling policy.
    pub fn sched(mut self, sched: Sched) -> Self {
        self.sched = sched;
        self
    }

    /// Replaces the step budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Replaces the Υ noise policy.
    pub fn noise(mut self, noise: UpsilonNoise) -> Self {
        self.noise = noise;
        self
    }
}

/// What an agreement run produced, plus its specification verdict.
///
/// `PartialEq` compares every field — the swarm differential suite uses it
/// to assert packed executions byte-identical to standalone ones.
#[derive(Clone, PartialEq, Debug)]
pub struct AgreementOutcome {
    /// The agreement parameter `k` the run was checked against.
    pub k: usize,
    /// Decision of each process.
    pub decided: Vec<Option<u64>>,
    /// The distinct decided values.
    pub distinct: Vec<u64>,
    /// Specification verdict.
    pub spec: Result<(), TaskViolation>,
    /// Steps granted in total.
    pub total_steps: u64,
    /// Time of the last decision, if all correct participants decided.
    pub decided_by: Option<Time>,
    /// Steps taken per process.
    pub steps_by: Vec<u64>,
    /// Failure-detector query steps taken across the run.
    pub fd_queries: usize,
    /// Protocol rounds opened (round-indexed converge/board objects seen in
    /// memory); 0 when the protocol has no such objects.
    pub rounds: u64,
    /// Verdict of the §3.3 run-condition validator (`upsilon-analysis`):
    /// `Ok` iff the recorded trace is a well-formed run of the model.
    pub run_conditions: Result<(), String>,
}

impl AgreementOutcome {
    /// Folds a completed run into its outcome: decisions, k-set-agreement
    /// spec verdict, §3.3 run-condition verdict and step metrics. This is
    /// the single fold every runner in this module applies, public so
    /// alternative executors (the `upsilon-swarm` multi-tenant loop) can
    /// produce outcomes guaranteed field-identical to the standalone path.
    pub fn from_run<D: FdValue>(
        run: &Run<D>,
        memory: &upsilon_sim::Memory,
        k: usize,
        proposals: &[Option<u64>],
    ) -> Self {
        // Rounds are visible as the highest first index of any round-keyed
        // object ("n-conv", "f-conv", "ca", "bca", "prop", "B").
        let rounds = memory
            .inventory()
            .filter(|(_, key, _)| {
                matches!(
                    key.name(),
                    "n-conv" | "f-conv" | "ca" | "bca" | "prop" | "B"
                )
            })
            .filter_map(|(_, key, _)| key.indices().first().copied())
            .max()
            .unwrap_or(0);
        let spec = check_k_set_agreement(run, k, proposals);
        let run_conditions = upsilon_analysis::check_run_for(run)
            .map(|_| ())
            .map_err(|v| v.to_string());
        let decided_by =
            run.outputs()
                .iter()
                .filter(|(_, _, o)| matches!(o, Output::Decide(_)))
                .map(|(t, _, _)| *t)
                .max()
                .filter(|_| {
                    run.pattern().correct().iter().all(|p| {
                        proposals[p.index()].is_none() || run.decisions()[p.index()].is_some()
                    })
                });
        AgreementOutcome {
            k,
            decided: run.decisions(),
            distinct: run.decided_values(),
            spec,
            total_steps: run.total_steps(),
            decided_by,
            steps_by: run.steps_by().to_vec(),
            fd_queries: run.fd_samples().len(),
            rounds,
            run_conditions,
        }
    }

    /// Panics with a readable message if the specification was violated or
    /// the recorded trace is not a well-formed §3.3 run.
    pub fn assert_ok(&self) {
        if let Err(e) = &self.spec {
            panic!("agreement specification violated: {e}");
        }
        if let Err(e) = &self.run_conditions {
            panic!("§3.3 run conditions violated: {e}");
        }
    }
}

/// Assembles the [`SimBuilder`] every runner here drives: oracle, the
/// configured scheduling adversary, step budget and one algorithm per
/// participating process.
fn builder_with_oracle<D, O, A>(cfg: &AgreementConfig, oracle: O, algos: A) -> SimBuilder<D>
where
    D: FdValue,
    O: upsilon_sim::Oracle<D> + 'static,
    A: IntoIterator<Item = (ProcessId, upsilon_sim::AlgoFn<D>)>,
{
    let mut builder = SimBuilder::<D>::new(cfg.pattern.clone())
        .oracle(oracle)
        .adversary(cfg.sched.build(cfg.seed, cfg.pattern.n_plus_1()))
        .max_steps(cfg.max_steps);
    for (pid, algo) in algos {
        builder = builder.spawn(pid, algo);
    }
    builder
}

fn run_with_oracle<D, O, A>(
    cfg: &AgreementConfig,
    oracle: O,
    algos: A,
    k: usize,
) -> AgreementOutcome
where
    D: FdValue,
    O: upsilon_sim::Oracle<D> + 'static,
    A: IntoIterator<Item = (ProcessId, upsilon_sim::AlgoFn<D>)>,
{
    let outcome = builder_with_oracle(cfg, oracle, algos).run();
    AgreementOutcome::from_run(&outcome.run, &outcome.memory, k, &cfg.proposals)
}

/// The configured [`SimBuilder`] behind [`run_fig1`], plus the `k` its
/// outcome is checked against. Exposed so alternative executors (the
/// `upsilon-swarm` packed loop) construct instances through the *same*
/// code path as the standalone runner — byte-identical outcomes by
/// construction, not by careful duplication.
pub fn fig1_builder(
    cfg: &AgreementConfig,
    choice: UpsilonChoice,
) -> (SimBuilder<ProcessSet>, usize) {
    let n = cfg.pattern.n();
    let oracle = UpsilonOracle::wait_free(&cfg.pattern, choice, cfg.stabilize_at, cfg.seed)
        .with_noise(cfg.noise);
    let algos = fig1::algorithms(Fig1Config { flavor: cfg.flavor }, &cfg.proposals);
    (builder_with_oracle(cfg, oracle, algos), n)
}

/// E1: the Fig. 1 protocol — Υ-based wait-free n-set-agreement.
pub fn run_fig1(cfg: &AgreementConfig, choice: UpsilonChoice) -> AgreementOutcome {
    let (builder, k) = fig1_builder(cfg, choice);
    let outcome = builder.run();
    AgreementOutcome::from_run(&outcome.run, &outcome.memory, k, &cfg.proposals)
}

/// The configured [`SimBuilder`] behind [`run_fig2`], plus the `k` its
/// outcome is checked against (see [`fig1_builder`] for why this exists).
pub fn fig2_builder(
    cfg: &AgreementConfig,
    f: usize,
    choice: UpsilonChoice,
) -> (SimBuilder<ProcessSet>, usize) {
    let oracle = UpsilonOracle::new(&cfg.pattern, f, choice, cfg.stabilize_at, cfg.seed)
        .with_noise(cfg.noise);
    let algos = fig2::algorithms(
        Fig2Config {
            flavor: cfg.flavor,
            ..Fig2Config::new(f)
        },
        &cfg.proposals,
    );
    (builder_with_oracle(cfg, oracle, algos), f)
}

/// E2: the Fig. 2 protocol — Υ^f-based f-resilient f-set-agreement.
pub fn run_fig2(cfg: &AgreementConfig, f: usize, choice: UpsilonChoice) -> AgreementOutcome {
    let (builder, k) = fig2_builder(cfg, f, choice);
    let outcome = builder.run();
    AgreementOutcome::from_run(&outcome.run, &outcome.memory, k, &cfg.proposals)
}

/// E14 ablation: Fig. 2 with an explicit configuration (e.g. the line 25
/// min-adoption switched off) — see [`Fig2Config::ablated`].
pub fn run_fig2_custom(
    cfg: &AgreementConfig,
    fig2_cfg: Fig2Config,
    choice: UpsilonChoice,
) -> AgreementOutcome {
    let oracle = UpsilonOracle::new(&cfg.pattern, fig2_cfg.f, choice, cfg.stabilize_at, cfg.seed)
        .with_noise(cfg.noise);
    let algos = fig2::algorithms(fig2_cfg, &cfg.proposals);
    run_with_oracle(cfg, oracle, algos, fig2_cfg.f)
}

/// E9 baseline: the paper's protocols running on the complement of an Ω_k
/// oracle (`k`-set-agreement with Ω_k, the pre-paper conjecture's
/// detector). For `k = n` this is literally Fig. 1 on a complemented Ω_n
/// history (Corollary 3's baseline); for `k < n` the complement is a Υ^k
/// history and Fig. 2 with `f = k` delivers the k-set agreement Ω_k was
/// known to support.
pub fn run_baseline_omega_k(
    cfg: &AgreementConfig,
    k: usize,
    choice: OmegaKChoice,
) -> AgreementOutcome {
    let n_plus_1 = cfg.pattern.n_plus_1();
    let omega_k = OmegaKOracle::new(&cfg.pattern, k, choice, cfg.stabilize_at, cfg.seed);
    let oracle = upsilon_fd::upsilon_f_from_omega_k(n_plus_1, omega_k);
    if k == cfg.pattern.n() {
        let algos = baseline::algorithms(Fig1Config { flavor: cfg.flavor }, &cfg.proposals);
        run_with_oracle(cfg, oracle, algos, k)
    } else {
        let algos = fig2::algorithms(
            Fig2Config {
                flavor: cfg.flavor,
                ..Fig2Config::new(k)
            },
            &cfg.proposals,
        );
        run_with_oracle(cfg, oracle, algos, k)
    }
}

/// E7/E8 companion: Ω-based consensus.
pub fn run_omega_consensus(cfg: &AgreementConfig, choice: LeaderChoice) -> AgreementOutcome {
    let oracle = OmegaOracle::new(&cfg.pattern, choice, cfg.stabilize_at, cfg.seed);
    let algos = consensus::algorithms(
        consensus::OmegaConsensusConfig { flavor: cfg.flavor },
        &cfg.proposals,
    );
    run_with_oracle(cfg, oracle, algos, 1)
}

/// E8: (n+1)-process consensus from n-consensus objects + Ω_n.
pub fn run_boost(cfg: &AgreementConfig, choice: OmegaKChoice) -> AgreementOutcome {
    let n = cfg.pattern.n();
    let oracle = OmegaKOracle::new(&cfg.pattern, n, choice, cfg.stabilize_at, cfg.seed);
    let algos = boost::algorithms(boost::BoostConfig { flavor: cfg.flavor }, &cfg.proposals);
    run_with_oracle(cfg, oracle, algos, 1)
}

/// E7: consensus from Υ¹ only (the §5.3 pipeline), legal in `E_1`.
pub fn run_upsilon1_consensus(cfg: &AgreementConfig, choice: UpsilonChoice) -> AgreementOutcome {
    let oracle = UpsilonOracle::new(&cfg.pattern, 1, choice, cfg.stabilize_at, cfg.seed);
    let algos = upsilon_agreement::to_algorithms(&cfg.proposals, |v| {
        crate::pipeline::upsilon1_consensus_algorithm(Default::default(), v)
    });
    run_with_oracle(cfg, oracle, algos, 1)
}

/// A pattern with `crashes` processes failing at staggered times: `p_c`
/// crashes at `first_at + 30·c`. The canonical crash script shared by the
/// latency benchmarks and the E9/E11 scenario cells.
pub fn staggered_crashes(n_plus_1: usize, crashes: usize, first_at: u64) -> FailurePattern {
    assert!(crashes < n_plus_1);
    let mut builder = FailurePattern::builder(n_plus_1);
    for c in 0..crashes {
        builder = builder.crash(ProcessId(c), Time(first_at + 30 * c as u64));
    }
    builder.build()
}

/// Runs the same experiment at many seeds, fanned across the
/// [`run_batch`] worker pool; outcomes come back in seed order.
///
/// Each run executes single-threaded on the inline step engine, so the
/// pool parallelises *across* runs without perturbing any individual
/// trace — `sweep_seeds(cfg, seeds, f)` is observationally identical to
/// mapping `f` over the seeds sequentially.
pub fn sweep_seeds<F>(
    cfg: &AgreementConfig,
    seeds: impl IntoIterator<Item = u64>,
    run_one: F,
) -> Vec<AgreementOutcome>
where
    F: Fn(&AgreementConfig) -> AgreementOutcome + Send + Sync,
{
    let run_one = &run_one;
    let jobs: Vec<_> = seeds
        .into_iter()
        .map(|seed| {
            let cfg = cfg.clone().seed(seed);
            move || run_one(&cfg)
        })
        .collect();
    run_batch(jobs, default_workers())
}

/// The stable failure detectors Fig. 3 can consume in the harness.
#[derive(Clone, Copy, Debug)]
pub enum StableSource {
    /// Ω with the given stable-leader policy.
    Omega(LeaderChoice),
    /// Ω_k with the given set size and policy.
    OmegaK(usize, OmegaKChoice),
    /// The perfect detector `P`.
    Perfect,
    /// The eventually perfect detector `◇P`.
    EventuallyPerfect,
}

impl StableSource {
    /// A short label for tables.
    pub fn label(&self) -> String {
        match self {
            StableSource::Omega(_) => "Omega".to_string(),
            StableSource::OmegaK(k, _) => format!("Omega_{k}"),
            StableSource::Perfect => "P".to_string(),
            StableSource::EventuallyPerfect => "<>P".to_string(),
        }
    }
}

/// Result of a Fig. 3 extraction run.
#[derive(Clone, Debug)]
pub struct ExtractionOutcome {
    /// Which detector was consumed.
    pub source: String,
    /// The `f` the emulated output was checked against.
    pub f: usize,
    /// The Υ^f spec verdict over the emulated outputs.
    pub report: Result<StabilityReport<ProcessSet>, SpecViolation>,
    /// Steps granted in total.
    pub total_steps: u64,
    /// Number of published output changes across all processes.
    pub publishes: usize,
}

impl ExtractionOutcome {
    /// Panics with a readable message if the emulated output violated Υ^f.
    pub fn assert_ok(&self) {
        if let Err(e) = &self.report {
            panic!(
                "extraction from {} violated the Υ^{} spec: {e}",
                self.source, self.f
            );
        }
    }
}

/// Extracts the published `LeaderSet` outputs of a run as held-variable
/// samples for the Υ^f checker.
pub fn leader_set_samples<D: FdValue>(run: &Run<D>) -> Vec<(Time, ProcessId, ProcessSet)> {
    let published: Vec<_> = run
        .outputs()
        .iter()
        .filter_map(|(t, p, o)| match o {
            Output::LeaderSet(s) => Some((*t, *p, *s)),
            _ => None,
        })
        .collect();
    held_variable_samples(run.n_plus_1(), &published, Time(run.total_steps()))
}

/// Extracts the published `Leader` outputs of a run as held-variable
/// samples for the Ω checker.
pub fn leader_samples<D: FdValue>(run: &Run<D>) -> Vec<(Time, ProcessId, ProcessId)> {
    let published: Vec<_> = run
        .outputs()
        .iter()
        .filter_map(|(t, p, o)| match o {
            Output::Leader(l) => Some((*t, *p, *l)),
            _ => None,
        })
        .collect();
    held_variable_samples(run.n_plus_1(), &published, Time(run.total_steps()))
}

/// E3: the Fig. 3 extraction of Υ^f from a stable detector.
pub fn run_fig3(
    pattern: &FailurePattern,
    source: StableSource,
    f: usize,
    stabilize_at: Time,
    seed: u64,
    max_steps: u64,
) -> ExtractionOutcome {
    let n_plus_1 = pattern.n_plus_1();
    let source_label = source.label();
    let run: Run<ProcessSet> = match source {
        StableSource::Omega(choice) => {
            // Ω has a different value type; run it separately.
            let oracle = OmegaOracle::new(pattern, choice, stabilize_at, seed);
            let r = SimBuilder::<ProcessId>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(max_steps)
                .spawn_all(|_| extraction_algorithm(phi_omega(n_plus_1)))
                .run()
                .run;
            let samples = leader_set_samples(&r);
            return ExtractionOutcome {
                source: source_label,
                f,
                report: check_upsilon_f(pattern, f, &samples, 1),
                total_steps: r.total_steps(),
                publishes: samples.len().saturating_sub(n_plus_1),
            };
        }
        StableSource::OmegaK(k, choice) => {
            let oracle = OmegaKOracle::new(pattern, k, choice, stabilize_at, seed);
            SimBuilder::<ProcessSet>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(max_steps)
                .spawn_all(|_| extraction_algorithm(phi_omega_k(n_plus_1)))
                .run()
                .run
        }
        StableSource::Perfect => {
            let oracle = PerfectOracle::new(pattern);
            SimBuilder::<ProcessSet>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(max_steps)
                .spawn_all(|_| extraction_algorithm(phi_perfect(n_plus_1)))
                .run()
                .run
        }
        StableSource::EventuallyPerfect => {
            let oracle = EventuallyPerfectOracle::new(pattern, stabilize_at, seed);
            SimBuilder::<ProcessSet>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(max_steps)
                .spawn_all(|_| extraction_algorithm(phi_perfect(n_plus_1)))
                .run()
                .run
        }
    };
    let samples = leader_set_samples(&run);
    ExtractionOutcome {
        source: source_label,
        f,
        report: check_upsilon_f(pattern, f, &samples, 1),
        total_steps: run.total_steps(),
        publishes: samples.len().saturating_sub(n_plus_1),
    }
}

/// E6/E7: the Υ¹ → Ω extraction checked against the Ω spec.
pub fn run_upsilon1_to_omega(
    pattern: &FailurePattern,
    choice: UpsilonChoice,
    stabilize_at: Time,
    seed: u64,
    max_steps: u64,
) -> Result<StabilityReport<ProcessId>, SpecViolation> {
    let oracle = UpsilonOracle::new(pattern, 1, choice, stabilize_at, seed);
    let run = SimBuilder::<ProcessSet>::new(pattern.clone())
        .oracle(oracle)
        .adversary(SeededRandom::new(seed))
        .max_steps(max_steps)
        .spawn_all(|_| upsilon_extract::upsilon1_to_omega_algorithm())
        .run()
        .run;
    let samples = leader_samples(&run);
    check_omega(pattern, &samples, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_pattern(n_plus_1: usize, who: usize, at: u64) -> FailurePattern {
        FailurePattern::builder(n_plus_1)
            .crash(ProcessId(who), Time(at))
            .build()
    }

    #[test]
    fn sweep_seeds_matches_sequential_runs() {
        let cfg = AgreementConfig::new(crash_pattern(3, 0, 40));
        let swept = sweep_seeds(&cfg, 0..6, |cfg| run_fig1(cfg, UpsilonChoice::default()));
        assert_eq!(swept.len(), 6);
        for (seed, out) in swept.iter().enumerate() {
            out.assert_ok();
            let solo = run_fig1(&cfg.clone().seed(seed as u64), UpsilonChoice::default());
            assert_eq!(out.total_steps, solo.total_steps, "seed {seed}");
            assert_eq!(out.decided, solo.decided, "seed {seed}");
            assert_eq!(out.steps_by, solo.steps_by, "seed {seed}");
        }
    }

    #[test]
    fn fig1_runner_reports_metrics() {
        let cfg = AgreementConfig::new(crash_pattern(3, 0, 40)).seed(3);
        let out = run_fig1(&cfg, UpsilonChoice::default());
        out.assert_ok();
        assert!(out.decided_by.is_some());
        assert!(out.distinct.len() <= 2);
        assert!(out.total_steps > 0);
        assert_eq!(out.k, 2);
    }

    #[test]
    fn fig2_runner_covers_f_range() {
        let cfg = AgreementConfig::new(crash_pattern(4, 2, 50)).seed(5);
        for f in 1..=3usize {
            let out = run_fig2(&cfg, f, UpsilonChoice::default());
            out.assert_ok();
            assert!(out.distinct.len() <= f, "f={f}");
        }
    }

    #[test]
    fn baseline_runner_matches_spec() {
        let cfg = AgreementConfig::new(FailurePattern::failure_free(3)).seed(7);
        let out = run_baseline_omega_k(&cfg, 2, OmegaKChoice::default());
        out.assert_ok();
    }

    #[test]
    fn consensus_runners() {
        let cfg = AgreementConfig::new(crash_pattern(3, 1, 60)).seed(9);
        run_omega_consensus(&cfg, LeaderChoice::MinCorrect).assert_ok();
        run_boost(&cfg, OmegaKChoice::default()).assert_ok();
        run_upsilon1_consensus(&cfg, UpsilonChoice::default()).assert_ok();
    }

    #[test]
    fn fig3_runner_covers_all_sources() {
        let pattern = crash_pattern(3, 0, 9_000);
        for source in [
            StableSource::Omega(LeaderChoice::MinCorrect),
            StableSource::OmegaK(2, OmegaKChoice::default()),
            StableSource::Perfect,
            StableSource::EventuallyPerfect,
        ] {
            let out = run_fig3(&pattern, source, 2, Time(100), 11, 40_000);
            out.assert_ok();
            assert!(out.publishes >= 1, "{}", out.source);
        }
    }

    #[test]
    fn upsilon1_to_omega_runner() {
        let pattern = crash_pattern(3, 2, 50);
        let report = run_upsilon1_to_omega(&pattern, UpsilonChoice::All, Time(120), 13, 40_000)
            .expect("valid Ω extraction");
        assert!(pattern.is_correct(report.value));
    }

    #[test]
    fn round_robin_schedule_defers_to_upsilon() {
        // Under round-robin every proposal survives the first n-converge,
        // so the decision time tracks Υ's stabilization time.
        let pattern = FailurePattern::failure_free(3);
        let early = AgreementConfig::new(pattern.clone())
            .sched(Sched::RoundRobin)
            .noise(UpsilonNoise::ConstantAll)
            .stabilize_at(Time(50));
        let late = AgreementConfig::new(pattern)
            .sched(Sched::RoundRobin)
            .noise(UpsilonNoise::ConstantAll)
            .stabilize_at(Time(2_000));
        let out_early = run_fig1(&early, UpsilonChoice::default());
        let out_late = run_fig1(&late, UpsilonChoice::default());
        out_early.assert_ok();
        out_late.assert_ok();
        assert!(
            out_late.total_steps > out_early.total_steps,
            "later stabilization must delay decisions under round-robin: {} vs {}",
            out_late.total_steps,
            out_early.total_steps
        );
    }

    #[test]
    fn skewed_schedule_still_satisfies_spec() {
        let cfg = AgreementConfig::new(crash_pattern(4, 3, 70))
            .sched(Sched::SkewedRandom)
            .seed(5);
        run_fig1(&cfg, UpsilonChoice::default()).assert_ok();
    }

    #[test]
    fn config_builders() {
        let cfg = AgreementConfig::new(FailurePattern::failure_free(3))
            .seed(1)
            .stabilize_at(Time(5))
            .flavor(SnapshotFlavor::RegisterBased)
            .proposals(vec![Some(1), None, Some(2)])
            .sched(Sched::RoundRobin)
            .max_steps(123);
        assert_eq!(cfg.max_steps, 123);
        assert_eq!(cfg.sched, Sched::RoundRobin);
        assert_eq!(cfg.seed, 1);
        assert_eq!(cfg.stabilize_at, Time(5));
        assert_eq!(cfg.flavor, SnapshotFlavor::RegisterBased);
        assert_eq!(cfg.proposals[1], None);
    }
}
