//! Plain-text aligned tables for the experiment harness.

use std::fmt;

/// A simple column-aligned text table, used by the `experiments` binary to
/// print every EXPERIMENTS.md artifact reproducibly.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (c, cell) in cells.iter().enumerate() {
                let pad = widths[c] - cell.chars().count();
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)
        };
        fmt_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let text = t.to_string();
        assert!(text.starts_with("## Demo"));
        assert!(text.contains("| name  | value |"));
        assert!(text.contains("| alpha | 1     |"));
        assert!(text.contains("| b     | 22222 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(["only one"]);
    }
}
