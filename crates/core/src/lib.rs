//! # upsilon-core
//!
//! The facade and experiment harness of the reproduction of *"On the
//! weakest failure detector ever"* (Guerraoui, Herlihy, Kuznetsov, Lynch,
//! Newport; PODC 2007 / Distributed Computing 2009).
//!
//! The repository implements, from scratch:
//!
//! * the asynchronous shared-memory model of §3 ([`sim`]);
//! * registers, atomic snapshots (native and register-only) and consensus
//!   objects ([`mem`]);
//! * the failure detectors Υ, Υ^f, Ω, Ω_k, P, ◇P, anti-Ω with oracles and
//!   specification checkers ([`fd`]);
//! * the k-converge routine ([`converge`]);
//! * the paper's protocols: Fig. 1, Fig. 2, Ω-consensus, Ω_n type boosting
//!   ([`agreement`]);
//! * the minimality machinery: Fig. 3 extraction, witness maps, Theorem 1/5
//!   adversary games, Υ¹ → Ω ([`extract`]);
//! * runnable experiment harnesses for each paper artifact
//!   ([`experiment`]), protocol compositions ([`pipeline`]) and table /
//!   statistics utilities ([`table`], [`stats`]).
//!
//! ## Quickstart
//!
//! ```
//! use upsilon_core::experiment::{run_fig1, AgreementConfig};
//! use upsilon_core::fd::UpsilonChoice;
//! use upsilon_core::sim::FailurePattern;
//!
//! // 3 processes, wait-free 2-set agreement with Υ and registers (Fig. 1).
//! let cfg = AgreementConfig::new(FailurePattern::failure_free(3));
//! let outcome = run_fig1(&cfg, UpsilonChoice::default());
//! outcome.assert_ok();
//! assert!(outcome.distinct.len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exhaustive;
pub mod experiment;
pub mod matrix;
pub mod pipeline;
pub mod render;
pub mod shrink;
pub mod stats;
pub mod table;

pub use upsilon_agreement as agreement;
pub use upsilon_converge as converge;
pub use upsilon_extract as extract;
pub use upsilon_fd as fd;
pub use upsilon_mem as mem;
pub use upsilon_sim as sim;

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::agreement::{
        check_consensus, check_k_set_agreement, distinct_proposals, Fig1Config, Fig2Config,
        TaskViolation,
    };
    pub use crate::converge::ConvergeInstance;
    pub use crate::exhaustive::{
        count_interleavings, count_schedule_tree, for_each_interleaving, interleavings,
    };
    pub use crate::experiment::{
        run_baseline_omega_k, run_boost, run_fig1, run_fig2, run_fig2_custom, run_fig3,
        run_omega_consensus, run_upsilon1_consensus, run_upsilon1_to_omega, sweep_seeds,
        AgreementConfig, AgreementOutcome, ExtractionOutcome, Sched, StableSource,
    };
    pub use crate::extract::{all_candidates, play, Candidate, GameConfig, GameVerdict, Witness};
    pub use crate::fd::{
        check_omega, check_omega_k, check_upsilon, check_upsilon_f, LeaderChoice, OmegaKChoice,
        OmegaKOracle, OmegaOracle, SpecViolation, UpsilonChoice, UpsilonOracle,
    };
    pub use crate::matrix::{hierarchy_table, validated_edges};
    pub use crate::mem::{NativeSnapshot, Register, RegisterArray, Snapshot, SnapshotFlavor};
    pub use crate::render::{render_summary, render_timeline};
    pub use crate::shrink::{ddmin, ddmin_counted, ShrinkOutcome};
    pub use crate::sim::{
        Environment, FailurePattern, Output, ProcessId, ProcessSet, RoundRobin, Run, SeededRandom,
        SimBuilder, Time,
    };
    pub use crate::stats::Summary;
    pub use crate::table::Table;
}
