//! Cross-crate protocol compositions.
//!
//! The flagship composition is the §5.3 pipeline: **consensus from Υ¹ in
//! `E_1`** — the Υ¹ → Ω elector of `upsilon-extract` plugged into the
//! Ω-based consensus of `upsilon-agreement` as its leader source. The paper
//! states the extraction and lets the reader combine; here the combination
//! is a runnable algorithm.

use upsilon_agreement::consensus::{propose_with, LeaderSource, OmegaConsensusConfig};
use upsilon_extract::Upsilon1Elector;
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, ProcessId, ProcessSet};

/// Adapts the Υ¹ → Ω elector into a consensus leader source.
#[derive(Clone, Debug)]
pub struct Upsilon1LeaderSource {
    elector: Upsilon1Elector,
}

impl Upsilon1LeaderSource {
    /// A fresh source for a system of `n_plus_1` processes.
    pub fn new(n_plus_1: usize) -> Self {
        Upsilon1LeaderSource {
            elector: Upsilon1Elector::new(n_plus_1),
        }
    }
}

impl LeaderSource<ProcessSet> for Upsilon1LeaderSource {
    async fn current_leader(&mut self, ctx: &Ctx<ProcessSet>) -> Result<ProcessId, Crashed> {
        self.elector.step(ctx).await
    }
}

/// Runs consensus using only a Υ¹ oracle (legal in `E_1`): every leader
/// estimate comes from the timestamp-based extraction, never from Ω.
///
/// # Errors
///
/// Returns [`Crashed`] if the calling process crashes mid-protocol.
pub async fn propose_with_upsilon1(
    ctx: &Ctx<ProcessSet>,
    cfg: OmegaConsensusConfig,
    v: u64,
) -> Result<u64, Crashed> {
    let mut source = Upsilon1LeaderSource::new(ctx.n_plus_1());
    propose_with(ctx, cfg, v, &mut source).await
}

/// Builds the pipeline algorithm for one process.
pub fn upsilon1_consensus_algorithm(cfg: OmegaConsensusConfig, v: u64) -> AlgoFn<ProcessSet> {
    algo(move |ctx| async move {
        let d = propose_with_upsilon1(&ctx, cfg, v).await?;
        ctx.decide(d).await?;
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_agreement::check_consensus;
    use upsilon_fd::{UpsilonChoice, UpsilonOracle};
    use upsilon_sim::{FailurePattern, SeededRandom, SimBuilder, Time};

    #[test]
    fn consensus_from_upsilon1_end_to_end() {
        for (pattern, choice) in [
            (
                FailurePattern::failure_free(3),
                UpsilonChoice::ComplementOfCorrect,
            ),
            (
                FailurePattern::builder(3)
                    .crash(ProcessId(0), Time(60))
                    .build(),
                UpsilonChoice::All,
            ),
            (
                FailurePattern::builder(4)
                    .crash(ProcessId(3), Time(40))
                    .build(),
                UpsilonChoice::ComplementOfCorrect,
            ),
        ] {
            let n_plus_1 = pattern.n_plus_1();
            let oracle = UpsilonOracle::new(&pattern, 1, choice, Time(150), 7);
            let props: Vec<Option<u64>> = (0..n_plus_1).map(|i| Some(i as u64 + 10)).collect();
            let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(7))
                .max_steps(600_000);
            for (i, v) in props.iter().enumerate() {
                let v = v.expect("all participate");
                builder = builder.spawn(
                    ProcessId(i),
                    upsilon1_consensus_algorithm(OmegaConsensusConfig::default(), v),
                );
            }
            let run = builder.run().run;
            check_consensus(&run, &props).unwrap_or_else(|e| panic!("{pattern} {choice:?}: {e}"));
        }
    }
}
