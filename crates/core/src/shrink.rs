//! Delta-debugging for schedules: shrink a failing schedule to a
//! locally-minimal subsequence that still exhibits the failure.
//!
//! Together with [`Run::schedule`](upsilon_sim::Run::schedule) (record) and
//! [`Scripted`](upsilon_sim::Scripted) (replay), this gives the repository a
//! complete record/replay/minimize debugging loop: capture the schedule of
//! a violating run, shrink it with [`ddmin`], and study the distilled
//! interleaving.

/// Zeller–Hildebrandt `ddmin`: returns a subsequence of `input` on which
/// `fails` still returns `true`, such that removing any single tried chunk
/// makes the failure disappear (1-minimality up to the explored partition).
///
/// `fails` must be deterministic. If `fails(input)` is `false` the input is
/// returned unchanged.
///
/// ```
/// use upsilon_core::shrink::ddmin;
/// let noisy: Vec<u32> = (0..100).collect();
/// let minimal = ddmin(&noisy, |s| s.contains(&13) && s.contains(&77));
/// assert_eq!(minimal, vec![13, 77]);
/// ```
pub fn ddmin<T: Clone>(input: &[T], fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    ddmin_counted(input, fails).minimal
}

/// The result of a counted [`ddmin_counted`] shrink: the minimal failing
/// subsequence plus how much work finding it took — reported by systematic
/// explorers so counterexample minimization cost is visible.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShrinkOutcome<T> {
    /// The locally-minimal failing subsequence.
    pub minimal: Vec<T>,
    /// Number of times the predicate was evaluated.
    pub evals: u64,
    /// Elements removed from the original input.
    pub removed: usize,
}

/// [`ddmin`] with instrumentation: identical reduction, plus a count of
/// predicate evaluations and of elements shed.
pub fn ddmin_counted<T: Clone>(
    input: &[T],
    mut fails: impl FnMut(&[T]) -> bool,
) -> ShrinkOutcome<T> {
    let mut evals = 0u64;
    let mut fails = |s: &[T]| {
        evals += 1;
        fails(s)
    };
    let mut current: Vec<T> = input.to_vec();
    if fails(&current) {
        let mut granularity = 2usize;
        while current.len() >= 2 {
            let chunk = current.len().div_ceil(granularity);
            let mut reduced = false;
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                // Complement: everything except current[start..end].
                let complement: Vec<T> = current[..start]
                    .iter()
                    .chain(current[end..].iter())
                    .cloned()
                    .collect();
                if fails(&complement) {
                    current = complement;
                    granularity = granularity.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                start = end;
            }
            if !reduced {
                if granularity >= current.len() {
                    break;
                }
                granularity = (granularity * 2).min(current.len());
            }
        }
    }
    ShrinkOutcome {
        removed: input.len() - current.len(),
        minimal: current,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_input_when_not_failing() {
        let input = vec![1, 2, 3];
        assert_eq!(ddmin(&input, |_| false), input);
    }

    #[test]
    fn shrinks_to_the_needed_elements() {
        // Failure = contains both 3 and 7.
        let input: Vec<u32> = (0..20).collect();
        let min = ddmin(&input, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(min, vec![3, 7]);
    }

    #[test]
    fn shrinks_order_sensitive_failures() {
        // Failure = a 5 appears before a 2 somewhere.
        let input = vec![9, 5, 8, 1, 2, 5, 0];
        let min = ddmin(&input, |s| {
            s.iter()
                .position(|&x| x == 5)
                .zip(s.iter().position(|&x| x == 2))
                .is_some_and(|(five, two)| five < two)
        });
        assert_eq!(min, vec![5, 2]);
    }

    #[test]
    fn single_element_failures() {
        let input = vec![4, 4, 4];
        let min = ddmin(&input, |s| !s.is_empty());
        assert_eq!(min.len(), 1);
    }

    #[test]
    fn counted_variant_reports_work() {
        let input: Vec<u32> = (0..20).collect();
        let out = ddmin_counted(&input, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(out.minimal, vec![3, 7]);
        assert_eq!(out.removed, 18);
        assert!(out.evals > 2, "shrinking evaluates many candidates");

        let passing = ddmin_counted(&input, |_| false);
        assert_eq!(passing.minimal, input);
        assert_eq!(passing.evals, 1);
        assert_eq!(passing.removed, 0);
    }

    #[test]
    fn preserves_relative_order() {
        let input: Vec<u32> = (0..30).collect();
        let min = ddmin(&input, |s| {
            // Needs 10, 20, 25 in order (order is automatic in subsequences).
            [10, 20, 25].iter().all(|x| s.contains(x))
        });
        assert_eq!(min, vec![10, 20, 25]);
    }
}
