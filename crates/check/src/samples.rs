//! Ready-made exploration configurations over the paper's artifacts.
//!
//! **Entry path.** Direct use of these constructors is reserved for the
//! `upsilon-scenario` registry (which calls back into this module) and
//! its no-drift lock. Everything else — the checked-in `scenarios/*.toml`
//! documents and the test suites in `crates/check` / `crates/fuzz` —
//! selects workloads by protocol name through that registry, either via
//! scenario files or the typed `upsilon_scenario::testkit` accessors. The
//! constructors stay the single source of truth for what each workload
//! *is*, while axis choices (n, depth, fault budgets, A/B arms) live in
//! the declarative layer; the `testkit_drift` suite asserts the two paths
//! never diverge. New workloads are added here **and** given a scenario
//! file plus a `testkit` accessor.
//!
//! Three families:
//!
//! * [`fig1`] / [`fig1_mutating`] — the paper's Fig. 1 protocol under a
//!   faithful (respectively, temporarily lying) Υ. Fig. 1's safety does not
//!   depend on Υ at all (§5.2), so *no* schedule, crash scenario or
//!   detector mutation may violate `n`-set agreement — a strong soak test
//!   for both the protocol and the explorer.
//! * [`pinned_upsilon`] — the Theorem 1/5 adversary's pinned history
//!   `U = {p_1, …, p_n}` checked for per-run faithfulness: crashing
//!   `p_{n+1}` makes `correct(F) = U` and the pinned value stops being a
//!   legal Υ output. The explorer's crash injection finds this with a
//!   two-choice counterexample.
//! * [`snapshot_commit`] — a hand-rolled snapshot commit protocol whose
//!   `buggy` variant drops `p_1`'s announcement write, breaking the
//!   counting argument behind C-Agreement; the explorer produces a shrunk
//!   replayable token for the resulting k-set-agreement violation. The
//!   sound variant is safe in every schedule (the last announcing decider
//!   sees every decider's value).
//! * [`stable_report`] — the Fig. 1 instability-reporting fragment in
//!   isolation: same-value register write races, the benchmark target for
//!   the per-op-pair commutativity refinement of the conflict relation.

use crate::explore::{AlgoFactory, CheckConfig};
use crate::menu::{ConstantMenu, MutatingMenu};
use std::sync::Arc;
use upsilon_agreement::fig1::{algorithms, Fig1Config};
use upsilon_agreement::fig2::{algorithms as fig2_algorithms, Fig2Config};
use upsilon_agreement::KSetAgreementSpec;
use upsilon_converge::{ConvergeFaults, ConvergeInstance};
use upsilon_extract::{pinned_history, UpsilonFaithfulSpec};
use upsilon_mem::{distinct_values, NativeSnapshot, Register, Snapshot};
use upsilon_sim::symmetry::sample_orbit;
use upsilon_sim::{algo, AlgoFn, Key, Output, ProcessId, ProcessSet};

/// Distinct proposals `0, 1, …, n` — the hard case for set agreement.
fn proposals(n_plus_1: usize) -> Vec<Option<u64>> {
    (0..n_plus_1).map(|i| Some(i as u64)).collect()
}

fn fig1_factory(n_plus_1: usize) -> AlgoFactory<ProcessSet> {
    let props = proposals(n_plus_1);
    Arc::new(move || {
        let mut algos: Vec<Option<AlgoFn<ProcessSet>>> = Vec::new();
        algos.resize_with(n_plus_1, || None);
        for (pid, a) in algorithms(Fig1Config::default(), &props) {
            algos[pid.index()] = Some(a);
        }
        algos
    })
}

/// Fig. 1 under a faithful pinned Υ history (`U = Π − {p_{n+1}}`), checked
/// for `n`-set agreement with up to `max_faults` injected crashes.
pub fn fig1(n_plus_1: usize, depth: usize, max_faults: usize) -> CheckConfig<ProcessSet> {
    let menu = Arc::new(ConstantMenu(pinned_history(n_plus_1)));
    CheckConfig::new(n_plus_1, depth, fig1_factory(n_plus_1), menu)
        .max_faults(max_faults)
        .orbit(sample_orbit("fig1"))
        .spec(KSetAgreementSpec {
            k: n_plus_1 - 1,
            proposals: proposals(n_plus_1),
        })
}

/// Fig. 1 under a Υ that may additionally answer `Π` for each process's
/// first `budget` queries — exercises the explorer's detector-output
/// branching. Safety must still hold: Fig. 1 never trusts Υ for safety.
pub fn fig1_mutating(
    n_plus_1: usize,
    depth: usize,
    max_faults: usize,
    budget: usize,
) -> CheckConfig<ProcessSet> {
    let menu = Arc::new(MutatingMenu {
        base: pinned_history(n_plus_1),
        mutants: vec![ProcessSet::all(n_plus_1)],
        budget,
    });
    CheckConfig::new(n_plus_1, depth, fig1_factory(n_plus_1), menu)
        .max_faults(max_faults)
        .orbit(sample_orbit("fig1_mutating"))
        .spec(KSetAgreementSpec {
            k: n_plus_1 - 1,
            proposals: proposals(n_plus_1),
        })
}

/// Fig. 2 (`f`-resilient `f`-set agreement from Υ^f, §6) under a faithful
/// pinned history, checked for `f`-set agreement. Like Fig. 1, safety never
/// trusts the detector, so exploration must come back clean.
pub fn fig2(n_plus_1: usize, f: usize, depth: usize, max_faults: usize) -> CheckConfig<ProcessSet> {
    assert!(f >= 1 && f < n_plus_1);
    let menu = Arc::new(ConstantMenu(pinned_history(n_plus_1)));
    let props = proposals(n_plus_1);
    let factory: AlgoFactory<ProcessSet> = Arc::new(move || {
        let mut algos: Vec<Option<AlgoFn<ProcessSet>>> = Vec::new();
        algos.resize_with(n_plus_1, || None);
        for (pid, a) in fig2_algorithms(Fig2Config::new(f), &props) {
            algos[pid.index()] = Some(a);
        }
        algos
    });
    CheckConfig::new(n_plus_1, depth, factory, menu)
        .max_faults(max_faults)
        .orbit(sample_orbit("fig2"))
        .spec(KSetAgreementSpec {
            k: f,
            proposals: proposals(n_plus_1),
        })
}

/// The adversary game's pinned constant history, checked for Υ^f
/// faithfulness under crash injection. With `max_faults ≥ 1` the explorer
/// finds the paper's pivot: crash `p_{n+1}` and the pinned `U` equals
/// `correct(F)`, which Υ forbids.
pub fn pinned_upsilon(n_plus_1: usize, f: usize, depth: usize) -> CheckConfig<ProcessSet> {
    let menu = Arc::new(ConstantMenu(pinned_history(n_plus_1)));
    let factory: AlgoFactory<ProcessSet> = Arc::new(move || {
        (0..n_plus_1)
            .map(|_| {
                Some(algo(move |ctx| async move {
                    // #[conform(bound = "B")]
                    loop {
                        ctx.query_fd().await?;
                    }
                }))
            })
            .collect()
    });
    CheckConfig::new(n_plus_1, depth, factory, menu)
        .max_faults(f)
        .orbit(sample_orbit("pinned_upsilon"))
        .spec(UpsilonFaithfulSpec::constant(f))
}

/// A one-shot snapshot commit protocol (the seeded-bug target):
///
/// 1. announce the proposal in snapshot `S1` — **dropped by `p_1` in the
///    buggy variant**;
/// 2. scan `S1`; the process is *clean* iff it saw at most `k` distinct
///    values;
/// 3. publish `(v, clean)` in snapshot `S2`;
/// 4. scan `S2`; decide the own value iff every published entry is clean,
///    otherwise spin forever (safety-only harness: non-deciders never
///    finish, so termination is vacuous on every explored prefix).
///
/// Soundness of the unbugged variant: among the deciders, the one whose
/// `S1` announcement is latest scans `S1` after every decider announced, so
/// it sees all their values; more than `k` distinct values would have made
/// it dirty and its own `S2` entry would block every decision, its own
/// included. Dropping `p_1`'s announcement removes its value from that
/// count, and `k + 1` distinct decisions become reachable.
pub fn snapshot_commit(n_plus_1: usize, k: usize, depth: usize, buggy: bool) -> CheckConfig<()> {
    assert!(k >= 1 && k < n_plus_1);
    let factory: AlgoFactory<()> = Arc::new(move || {
        (0..n_plus_1)
            .map(|i| {
                let me = ProcessId(i);
                Some(algo(move |ctx| async move {
                    let v = me.index() as u64;
                    let s1 = NativeSnapshot::<u64>::new(Key::new("S1"), n_plus_1);
                    let s2 = NativeSnapshot::<(u64, bool)>::new(Key::new("S2"), n_plus_1);
                    if !(buggy && me.index() == 0) {
                        s1.update(&ctx, v).await?;
                    }
                    let seen = s1.scan(&ctx).await?;
                    let clean = distinct_values(&seen).len() <= k;
                    s2.update(&ctx, (v, clean)).await?;
                    let published = s2.scan(&ctx).await?;
                    if published.iter().flatten().all(|(_, c)| *c) {
                        ctx.decide(v).await?;
                        return Ok(());
                    }
                    // #[conform(bound = "B")]
                    loop {
                        ctx.yield_step().await?;
                    }
                }))
            })
            .collect()
    });
    let menu = Arc::new(ConstantMenu(()));
    CheckConfig::new(n_plus_1, depth, factory, menu)
        .orbit(sample_orbit("snapshot_commit"))
        .spec(KSetAgreementSpec {
            k,
            proposals: proposals(n_plus_1),
        })
}

/// The Fig. 1 **instability-reporting fragment** in isolation (protocol
/// lines 12–14): a process that sees the round destabilize publishes the
/// fact by writing `true` into the shared `Stable` register — every
/// reporter writes the *same* value, `reports` times each — then reads the
/// flag back and outputs it. The write races here are exactly the pattern
/// the per-op-pair commutativity matrix (`upsilon_sim::commute`) refines:
/// equal-value register writes commute, while the value-blind `Access`
/// lattice must order every write pair. Correctness is just the §3.3 run
/// conditions (always checked); the interesting number is explored states,
/// benchmarked as `BENCH_check`'s `stable-report` entry with the matrix on
/// and off.
pub fn stable_report(n_plus_1: usize, reports: usize, depth: usize) -> CheckConfig<()> {
    assert!(reports >= 1);
    let factory: AlgoFactory<()> = Arc::new(move || {
        (0..n_plus_1)
            .map(|_| {
                Some(algo(move |ctx| async move {
                    let stable = Register::new(Key::new("Stable"), false);
                    // #[conform(bound = "B")]
                    for _ in 0..reports {
                        stable.write(&ctx, true).await?;
                    }
                    let flag = stable.read(&ctx).await?;
                    ctx.output(Output::Value(u64::from(flag))).await?;
                    Ok(())
                }))
            })
            .collect()
    });
    let menu = Arc::new(ConstantMenu(()));
    CheckConfig::new(n_plus_1, depth, factory, menu).orbit(sample_orbit("stable_report"))
}

/// The **off-by-one mutant** of the k-converge commit check: each process
/// runs one `k`-converge over distinct proposals with
/// [`ConvergeFaults::clean_slack`]` = slack`, decides the picked value iff
/// it committed, and spins otherwise (safety-only harness, like
/// [`snapshot_commit`]).
///
/// With `slack = 0` this is the faithful routine, whose Convergence
/// argument makes committed values number at most `k` — every exploration
/// comes back clean. With `slack = 1` the cleanliness test accepts `k + 1`
/// distinct values, so schedules where `k + 1` processes each scan before
/// the `(k+2)`-th announces let `k + 1` distinct values commit — but fully
/// interleaved schedules still come back dirty, which makes the violation
/// genuinely schedule-dependent (a search target, not a constant failure).
pub fn converge_offby1(n_plus_1: usize, k: usize, depth: usize, slack: usize) -> CheckConfig<()> {
    assert!(k >= 1 && k < n_plus_1);
    let faults = ConvergeFaults {
        drop_announce: None,
        clean_slack: slack,
    };
    let factory: AlgoFactory<()> = Arc::new(move || {
        (0..n_plus_1)
            .map(|i| {
                let me = ProcessId(i);
                Some(algo(move |ctx| async move {
                    let inst =
                        ConvergeInstance::new(Key::new("conv"), n_plus_1, Default::default())
                            .with_faults(faults);
                    let (picked, committed) = inst.converge(&ctx, k, me.index() as u64).await?;
                    if committed {
                        ctx.decide(picked).await?;
                        return Ok(());
                    }
                    // #[conform(bound = "B")]
                    loop {
                        ctx.yield_step().await?;
                    }
                }))
            })
            .collect()
    });
    let menu = Arc::new(ConstantMenu(()));
    CheckConfig::new(n_plus_1, depth, factory, menu)
        .orbit(sample_orbit("converge_offby1"))
        .spec(KSetAgreementSpec {
            k,
            proposals: proposals(n_plus_1),
        })
}

/// The **dropped-write mutant of Fig. 2**: the full Fig. 2 protocol under a
/// faithful pinned Υ^f, except that process `dropper` skips its phase-1
/// announcement inside the *round-opening* `f`-converge
/// ([`ConvergeFaults::drop_announce`]). Its proposal becomes invisible to
/// the opener's cleanliness count, so schedules exist where `f + 1`
/// distinct values commit out of the opener and `f`-set agreement breaks —
/// the only safety-relevant write in Fig. 2's round structure (the `D`,
/// `D[r]` and `Stable[r]` writes affect only termination). `dropper: None`
/// is the faithful protocol and must explore clean.
pub fn fig2_dropped_write(
    n_plus_1: usize,
    f: usize,
    depth: usize,
    max_faults: usize,
    dropper: Option<ProcessId>,
) -> CheckConfig<ProcessSet> {
    assert!(f >= 1 && f < n_plus_1);
    let menu = Arc::new(ConstantMenu(pinned_history(n_plus_1)));
    let props = proposals(n_plus_1);
    let faults = ConvergeFaults {
        drop_announce: dropper,
        clean_slack: 0,
    };
    let factory: AlgoFactory<ProcessSet> = Arc::new(move || {
        let mut algos: Vec<Option<AlgoFn<ProcessSet>>> = Vec::new();
        algos.resize_with(n_plus_1, || None);
        let cfg = Fig2Config::new(f).with_opener_faults(faults);
        for (pid, a) in fig2_algorithms(cfg, &props) {
            algos[pid.index()] = Some(a);
        }
        algos
    });
    CheckConfig::new(n_plus_1, depth, factory, menu)
        .max_faults(max_faults)
        .orbit(sample_orbit("fig2_dropped_write"))
        .spec(KSetAgreementSpec {
            k: f,
            proposals: proposals(n_plus_1),
        })
}
