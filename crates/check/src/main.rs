//! Command-line front end: `cargo run -p upsilon-check -- --depth 8`.
//!
//! Explores one of the sample configurations, prints the search counters
//! and every counterexample token, and optionally enforces expectations
//! (used by CI): `--expect clean`, `--expect violation`, and a
//! `--min-states-per-sec` floor.

use std::process::ExitCode;
use std::time::Instant;
use upsilon_check::{check, samples, CheckConfig, CheckReport};
use upsilon_sim::FdValue;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Expect {
    Clean,
    Violation,
}

#[derive(Clone, Debug)]
struct Args {
    config: String,
    n: usize,
    depth: usize,
    faults: Option<usize>,
    k: Option<usize>,
    naive: bool,
    no_turbo: bool,
    no_dedup: bool,
    no_symmetry: bool,
    workers: usize,
    split: usize,
    max_violations: usize,
    no_shrink: bool,
    expect: Option<Expect>,
    min_states_per_sec: f64,
    json: Option<String>,
}

const USAGE: &str = "usage: upsilon-check [options]
  --config NAME        fig1 | fig1-mutating | fig2 | pinned | commit-sound | commit-buggy (default fig1)
  --n N                number of processes (default 3)
  --depth N            schedule-length bound (default 6)
  --faults N           crash-injection budget (default 0; 1 for pinned)
  --k N                agreement parameter for commit configs (default n-1)
  --naive              disable the sleep-set reduction
  --no-turbo           disable snapshot-resume execution (replay from root)
  --no-dedup           keep revisits (fingerprint dedup is on by default)
  --no-symmetry        disable the process-symmetry reduction
  --split N            fan subtrees out at path length N (default 0 = serial)
  --workers N          worker threads for --split (default 0 = auto)
  --max-violations N   stop after N counterexamples (default 16)
  --no-shrink          skip counterexample minimization
  --expect WHAT        clean | violation; exit 1 when not met
  --min-states-per-sec F  exit 1 when exploration throughput falls below F
  --json PATH          write a machine-readable report
  --help               this text";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: "fig1".to_string(),
        n: 3,
        depth: 6,
        faults: None,
        k: None,
        naive: false,
        no_turbo: false,
        no_dedup: false,
        no_symmetry: false,
        workers: 0,
        split: 0,
        max_violations: 16,
        no_shrink: false,
        expect: None,
        min_states_per_sec: 0.0,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--config" => args.config = value("--config")?,
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--depth" => {
                args.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--faults" => {
                args.faults = Some(
                    value("--faults")?
                        .parse()
                        .map_err(|e| format!("--faults: {e}"))?,
                )
            }
            "--k" => args.k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--naive" => args.naive = true,
            "--no-turbo" => args.no_turbo = true,
            "--no-dedup" => args.no_dedup = true,
            "--no-symmetry" => args.no_symmetry = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--split" => {
                args.split = value("--split")?
                    .parse()
                    .map_err(|e| format!("--split: {e}"))?
            }
            "--max-violations" => {
                args.max_violations = value("--max-violations")?
                    .parse()
                    .map_err(|e| format!("--max-violations: {e}"))?
            }
            "--no-shrink" => args.no_shrink = true,
            "--expect" => {
                args.expect = Some(match value("--expect")?.as_str() {
                    "clean" => Expect::Clean,
                    "violation" => Expect::Violation,
                    other => return Err(format!("--expect: unknown expectation {other:?}")),
                })
            }
            "--min-states-per-sec" => {
                args.min_states_per_sec = value("--min-states-per-sec")?
                    .parse()
                    .map_err(|e| format!("--min-states-per-sec: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn tune<D: FdValue>(mut cfg: CheckConfig<D>, args: &Args) -> CheckConfig<D> {
    cfg.reduction = !args.naive;
    cfg.turbo = !args.no_turbo;
    cfg.dedup = !args.no_dedup;
    cfg.symmetry = !args.no_symmetry;
    cfg.workers = args.workers;
    cfg.split_depth = args.split;
    cfg.max_violations = args.max_violations;
    cfg.shrink = !args.no_shrink;
    cfg
}

fn explore(args: &Args) -> Result<CheckReport, String> {
    let n = args.n;
    let faults = args.faults.unwrap_or(0);
    let k = args.k.unwrap_or(n.saturating_sub(1)).max(1);
    let report = match args.config.as_str() {
        "fig1" => check(&tune(samples::fig1(n, args.depth, faults), args)),
        "fig1-mutating" => check(&tune(
            samples::fig1_mutating(n, args.depth, faults, 1),
            args,
        )),
        "fig2" => {
            let f = args.faults.unwrap_or(1).max(1);
            check(&tune(samples::fig2(n, f, args.depth, f), args))
        }
        "pinned" => {
            let f = args.faults.unwrap_or(1).max(1);
            check(&tune(samples::pinned_upsilon(n, f, args.depth), args))
        }
        "commit-sound" => check(&tune(
            samples::snapshot_commit(n, k, args.depth, false),
            args,
        )),
        "commit-buggy" => check(&tune(
            samples::snapshot_commit(n, k, args.depth, true),
            args,
        )),
        other => return Err(format!("unknown config {other:?}")),
    };
    Ok(report)
}

fn json_report(report: &CheckReport, states_per_sec: f64) -> String {
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"spec\":{:?},\"token\":{:?},\"raw_token\":{:?},\"shrink_evals\":{},\"shrink_removed\":{}}}",
                v.spec,
                v.token.encode(),
                v.raw_token.encode(),
                v.shrink_evals,
                v.shrink_removed
            )
        })
        .collect();
    format!(
        "{{\n  \"nodes\": {},\n  \"sleep_pruned\": {},\n  \"crash_nodes\": {},\n  \"fd_variant_nodes\": {},\n  \"depth_leaves\": {},\n  \"dedup_pruned\": {},\n  \"symmetry_pruned\": {},\n  \"truncated\": {},\n  \"frontier_jobs\": {},\n  \"states_per_sec\": {:.1},\n  \"violations\": [{}]\n}}\n",
        report.stats.nodes,
        report.stats.sleep_pruned,
        report.stats.crash_nodes,
        report.stats.fd_variant_nodes,
        report.stats.depth_leaves,
        report.stats.dedup_pruned,
        report.stats.symmetry_pruned,
        report.stats.truncated,
        report.frontier_jobs,
        states_per_sec,
        violations.join(",")
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let report = match explore(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let states_per_sec = report.stats.nodes as f64 / elapsed;

    println!(
        "config={} n={} depth={} reduction={}",
        args.config, args.n, args.depth, !args.naive
    );
    println!(
        "nodes={} sleep_pruned={} crash_nodes={} fd_variants={} depth_leaves={} dedup_pruned={} \
         symmetry_pruned={} truncated={} frontier_jobs={} states/sec={:.0}",
        report.stats.nodes,
        report.stats.sleep_pruned,
        report.stats.crash_nodes,
        report.stats.fd_variant_nodes,
        report.stats.depth_leaves,
        report.stats.dedup_pruned,
        report.stats.symmetry_pruned,
        report.stats.truncated,
        report.frontier_jobs,
        states_per_sec
    );
    for v in &report.violations {
        println!("violation[{}]: {}", v.spec, v.message);
        println!("  token     = {}", v.token);
        println!(
            "  raw_token = {} (shrunk by {} choices in {} evals)",
            v.raw_token, v.shrink_removed, v.shrink_evals
        );
    }
    if report.ok() {
        println!("no violations");
    }

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, json_report(&report, states_per_sec)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut failed = false;
    match args.expect {
        Some(Expect::Clean) if !report.ok() => {
            eprintln!("FAIL: expected a clean exploration, found a violation");
            failed = true;
        }
        Some(Expect::Violation) if report.ok() => {
            eprintln!("FAIL: expected a counterexample, exploration came back clean");
            failed = true;
        }
        _ => {}
    }
    if args.min_states_per_sec > 0.0 && states_per_sec < args.min_states_per_sec {
        eprintln!(
            "FAIL: {:.0} states/sec below the floor of {:.0}",
            states_per_sec, args.min_states_per_sec
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
