//! Bounded failure-detector output mutation.
//!
//! The model quantifies over failure-detector histories `H(p, t)` as well
//! as schedules, so a systematic explorer must branch on *what the detector
//! says*, not only on *who moves*. An [`FdMenu`] gives, for the k-th query
//! of each process, the finite list of candidate values worth exploring;
//! the [`MenuOracle`] plays one scripted pick per query and logs how many
//! alternatives existed, letting the explorer spawn a sibling branch per
//! unexplored candidate.
//!
//! Each fully-scripted branch still runs a deterministic oracle — within
//! one run the sampled values extend to a history that is a function of
//! `(p, t)`, as §3 requires; different pick vectors are different histories
//! of the same detector, which is exactly the quantification the paper's
//! theorems range over.

use std::sync::{Arc, Mutex};
use upsilon_sim::{FdValue, Oracle, ProcessId, Time};

/// The candidate failure-detector values to explore per query.
///
/// `candidates(p, k)` must be non-empty, deterministic, and independent of
/// the schedule (it may depend only on `p` and on how many queries `p` has
/// made — the explorer re-executes prefixes from scratch and relies on the
/// same menu being served every time).
pub trait FdMenu<D: FdValue>: Send + Sync {
    /// Candidate values for the k-th query (0-based) of process `p`.
    fn candidates(&self, p: ProcessId, k: usize) -> Vec<D>;
}

/// A menu with a single candidate: the detector's output is pinned and the
/// explorer never branches on it.
#[derive(Clone, Debug)]
pub struct ConstantMenu<D>(pub D);

impl<D: FdValue + Sync> FdMenu<D> for ConstantMenu<D> {
    fn candidates(&self, _p: ProcessId, _k: usize) -> Vec<D> {
        vec![self.0.clone()]
    }
}

/// Bounded mutation around a base value: the first `budget` queries of each
/// process offer the base plus every mutant; later queries are pinned to
/// the base (the history has stabilized).
#[derive(Clone, Debug)]
pub struct MutatingMenu<D> {
    /// The stable value.
    pub base: D,
    /// Alternative outputs explored while the budget lasts.
    pub mutants: Vec<D>,
    /// How many queries per process may see a mutant.
    pub budget: usize,
}

impl<D: FdValue + Sync> FdMenu<D> for MutatingMenu<D> {
    fn candidates(&self, _p: ProcessId, k: usize) -> Vec<D> {
        let mut c = vec![self.base.clone()];
        if k < self.budget {
            c.extend(self.mutants.iter().cloned());
        }
        c
    }
}

/// A menu defined by a plain function, for tests and one-off configs.
#[derive(Debug)]
pub struct FnMenu<F>(pub F);

impl<D, F> FdMenu<D> for FnMenu<F>
where
    D: FdValue,
    F: Fn(ProcessId, usize) -> Vec<D> + Send + Sync,
{
    fn candidates(&self, p: ProcessId, k: usize) -> Vec<D> {
        (self.0)(p, k)
    }
}

/// One failure-detector query as the menu oracle served it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryRecord {
    /// The querying process.
    pub pid: ProcessId,
    /// Its query index (0-based).
    pub k: u32,
    /// How many candidates the menu offered.
    pub candidates: u32,
    /// Which candidate was served.
    pub pick: u32,
}

/// An [`Oracle`] that serves menu candidates according to a per-process
/// pick script (missing entries default to candidate 0), logging every
/// query so the explorer can branch on the alternatives.
pub struct MenuOracle<D: FdValue> {
    menu: Arc<dyn FdMenu<D>>,
    picks: Vec<Vec<u32>>,
    counts: Vec<u32>,
    log: Arc<Mutex<Vec<QueryRecord>>>,
}

impl<D: FdValue> std::fmt::Debug for MenuOracle<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MenuOracle")
            .field("picks", &self.picks)
            .finish_non_exhaustive()
    }
}

impl<D: FdValue> MenuOracle<D> {
    /// An oracle over `menu` for `n_plus_1` processes playing `picks`
    /// (padded with zeros; processes beyond `picks.len()` always pick 0).
    pub fn new(menu: Arc<dyn FdMenu<D>>, n_plus_1: usize, mut picks: Vec<Vec<u32>>) -> Self {
        picks.resize(n_plus_1, Vec::new());
        MenuOracle {
            menu,
            picks,
            counts: vec![0; n_plus_1],
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// An oracle positioned mid-history: like [`MenuOracle::new`] but with
    /// each process's query counter pre-advanced to `counts[p]` — the
    /// constructor a snapshot restore uses, so the rebuilt oracle serves the
    /// (k+1)-th query of a process whose first k queries happened before the
    /// save point (see [`SessionSave::query_counts`]).
    ///
    /// [`SessionSave::query_counts`]: upsilon_sim::SessionSave::query_counts
    pub fn with_counts(
        menu: Arc<dyn FdMenu<D>>,
        n_plus_1: usize,
        picks: Vec<Vec<u32>>,
        counts: &[u64],
    ) -> Self {
        let mut oracle = Self::new(menu, n_plus_1, picks);
        assert_eq!(counts.len(), n_plus_1, "one query count per process");
        oracle.counts = counts.iter().map(|&c| c as u32).collect();
        oracle
    }

    /// A handle to the query log, readable after the run (the oracle itself
    /// is consumed by the simulator).
    pub fn log(&self) -> Arc<Mutex<Vec<QueryRecord>>> {
        Arc::clone(&self.log)
    }
}

impl<D: FdValue> Oracle<D> for MenuOracle<D> {
    fn output(&mut self, p: ProcessId, _t: Time) -> D {
        let k = self.counts[p.index()];
        self.counts[p.index()] += 1;
        let cands = self.menu.candidates(p, k as usize);
        assert!(!cands.is_empty(), "menu served no candidates for {p}@{k}");
        let wanted = self.picks[p.index()].get(k as usize).copied().unwrap_or(0);
        let pick = (wanted as usize).min(cands.len() - 1) as u32;
        self.log.lock().expect("menu log lock").push(QueryRecord {
            pid: p,
            k,
            candidates: cands.len() as u32,
            pick,
        });
        cands[pick as usize].clone()
    }

    fn describe(&self) -> String {
        "menu".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menu_oracle_plays_picks_and_logs() {
        let menu: Arc<dyn FdMenu<u8>> = Arc::new(MutatingMenu {
            base: 0u8,
            mutants: vec![7, 9],
            budget: 1,
        });
        let mut oracle = MenuOracle::new(menu, 2, vec![vec![1], vec![]]);
        let log = oracle.log();
        // p1's first query picks mutant 7; its second is past the budget.
        assert_eq!(oracle.output(ProcessId(0), Time(0)), 7);
        assert_eq!(oracle.output(ProcessId(0), Time(1)), 0);
        // p2 defaults to the base.
        assert_eq!(oracle.output(ProcessId(1), Time(2)), 0);
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(
            log[0],
            QueryRecord {
                pid: ProcessId(0),
                k: 0,
                candidates: 3,
                pick: 1
            }
        );
        assert_eq!(log[1].candidates, 1);
    }

    #[test]
    fn out_of_range_picks_clamp() {
        let menu: Arc<dyn FdMenu<u8>> = Arc::new(ConstantMenu(5u8));
        let mut oracle = MenuOracle::new(menu, 1, vec![vec![42]]);
        assert_eq!(oracle.output(ProcessId(0), Time(0)), 5);
    }
}
