//! The systematic explorer: sleep-set DPOR over schedules, layered with
//! exhaustive crash injection and failure-detector output branching.
//!
//! # State space
//!
//! A node of the search tree is a *path*: a sequence of [`Choice`]s —
//! `Step(p)` grants one step to `p`, `Crash(p)` crashes `p` at the current
//! point of the schedule — together with a per-process script of
//! failure-detector candidate picks. Every node is executed from scratch
//! through [`SimBuilder`] with a [`Scripted`](upsilon_sim::Scripted)
//! adversary (stateless model checking), checked against the §3.3
//! run-condition validator and every configured [`RunSpec`], and then
//! expanded.
//!
//! # Partial-order reduction
//!
//! Two steps are *dependent* iff they touch the same shared object (by
//! [`Key`], not allocation order) with conflicting [`Access`]es — reads
//! commute with reads, single-writer cell updates commute across distinct
//! cells, everything else conflicts. Query/output/no-op steps are globally
//! independent: detector values are scripted per `(p, k)` so they do not
//! depend on placement. The explorer keeps a *sleep set* of process/footprint
//! pairs whose subtrees were already explored at an ancestor; a sleeping
//! process is skipped until a conflicting step wakes it. Runs pruned this
//! way are Mazurkiewicz-equivalent to explored ones, so any spec that is
//! *trace-closed* (invariant under commuting independent steps — see
//! `DESIGN.md` §8) loses no violations.
//!
//! # Crash canonicalization
//!
//! Crash choices commute with every other process's steps, and shifting a
//! crash across steps of *other* processes changes neither the event
//! sequence nor `correct(F)`. Each equivalence class therefore has one
//! canonical representative, the only one generated: processes that never
//! step crash in one ascending initial block; a process that steps crashes
//! immediately after its own last step ([`Choice::Crash`] allowed only when
//! the path so far is all-crash-ascending or ends with `Step(p)`).
//!
//! # Counterexamples
//!
//! A violating node is packed into a replayable [`ReplayToken`] (`UCHK1:`),
//! minimized with [`ddmin_counted`] over its choice sequence (re-executing
//! each candidate), and reported with both raw and shrunk tokens.

use crate::menu::{FdMenu, MenuOracle, QueryRecord};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use upsilon_analysis::{RunConditionsSpec, RunSpec};
use upsilon_core::shrink::ddmin_counted;
use upsilon_sim::symmetry::Orbit;
use upsilon_sim::{
    ops_commute, orbit_trace_fingerprint, resolve, run_stealing, trace_fingerprint, Access, AlgoFn,
    EngineKind, FailurePattern, FdValue, FnvWrite, Key, Memory, OpSig, OrbitFingerprint, ProcessId,
    ReplayToken, ResolvedOp, Run, Session, SessionSave, SessionStep, SimBuilder, StealJob,
    StealScope, StepKind, Time, TraceLevel,
};

/// One scheduling decision of the explorer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Grant one step to the process.
    Step(ProcessId),
    /// Crash the process at the current point of the schedule.
    Crash(ProcessId),
}

/// What one executed step touched, for the conflict relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Footprint {
    /// Query, output or no-op: independent of every other step.
    Local,
    /// A shared-object operation.
    Obj {
        /// The object's stable name.
        key: Key,
        /// How the operation touched it.
        access: Access,
        /// The op's signature resolved against the generated commutativity
        /// matrix (`upsilon_sim::commute`), when the exploration records
        /// signatures and the object type is analyzed. `None` falls back to
        /// the `Access` lattice alone. Shared: resolutions are memoized per
        /// exploration and footprints are cloned into sleep sets freely.
        sig: Option<Arc<ResolvedOp>>,
    },
}

impl Footprint {
    /// Whether two steps with these footprints are dependent (do not
    /// commute).
    ///
    /// The base relation is the `Access` lattice on same-key operations; a
    /// lattice conflict is then *removed* when both sides carry resolved
    /// signatures the per-op-pair matrix proves independent (e.g. two
    /// writes of the same value to one register). The refinement is sound
    /// for sleep sets because every matrix verdict is state-independent:
    /// it holds in all object states, not just the one explored.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        match (self, other) {
            (
                Footprint::Obj {
                    key: k1,
                    access: a1,
                    sig: s1,
                },
                Footprint::Obj {
                    key: k2,
                    access: a2,
                    sig: s2,
                },
            ) => {
                let matrix_commutes = match (s1, s2) {
                    (Some(s1), Some(s2)) => ops_commute(s1, s2),
                    _ => false,
                };
                k1 == k2 && a1.conflicts_with(*a2) && !matrix_commutes
            }
            _ => false,
        }
    }
}

/// Produces the per-process algorithms of one run; called once per explored
/// node (stateless re-execution), so it must be deterministic. `None`
/// entries do not participate.
pub type AlgoFactory<D> = Arc<dyn Fn() -> Vec<Option<AlgoFn<D>>> + Send + Sync>;

/// Configuration of one exploration.
#[derive(Clone)]
pub struct CheckConfig<D: FdValue> {
    /// Number of processes.
    pub n_plus_1: usize,
    /// Maximum schedule length (number of `Step` choices per path).
    pub depth: usize,
    /// Maximum number of injected crashes per path (`< n_plus_1`).
    pub max_faults: usize,
    /// Failure-detector candidates per query.
    pub menu: Arc<dyn FdMenu<D>>,
    /// Specifications checked on every explored run, in order; the §3.3
    /// run-condition validator is always checked first. Specs must be
    /// trace-closed for the reduction to be sound.
    pub specs: Vec<Arc<dyn RunSpec<D>>>,
    /// The algorithms under test.
    pub algos: AlgoFactory<D>,
    /// Sleep-set partial-order reduction; `false` explores the full tree
    /// (the naive baseline benchmarked against).
    pub reduction: bool,
    /// Snapshot-resume execution (on by default): nodes run on an
    /// incremental [`Session`] that saves at every node and rewinds by
    /// fast-forward replay, instead of re-executing each path from the
    /// root. Byte-identical reports either way; automatically falls back
    /// to stateless re-execution under [`EngineKind::Threads`] (thread
    /// state machines cannot be rewound).
    pub turbo: bool,
    /// State-fingerprint deduplication (on by default since the PR 8
    /// differential suite proved verdict/token preservation): prune a node
    /// whose canonical fingerprint — object states plus per-process trace
    /// digests plus the unserved pick script, crash context and remaining
    /// budgets — was already fully explored with an equal-or-looser sleep
    /// set and an equal-or-deeper remaining depth. Sound for the
    /// state-based, trace-closed specs this checker is built for (verdicts
    /// are functions of per-process projections, which equal fingerprints
    /// pin down); the differential suite locks verdict equality per
    /// scenario. Requires `turbo` (fingerprints come from the live session)
    /// and implies full trace detail so op responses enter the digest.
    pub dedup: bool,
    /// Process-symmetry reduction (on by default; the identity unless
    /// [`CheckConfig::orbit`] is non-trivial): collapse crash injections to
    /// one representative per orbit class, skip duplicate failure-detector
    /// candidates, and canonicalize dedup fingerprints up to within-class
    /// process renaming. Sound only for configurations whose orbit the
    /// static audit (`upsilon-symmetry`) certifies; the differential suite
    /// locks verdict and token equality against the unreduced search.
    pub symmetry: bool,
    /// The certified orbit classes of this configuration's processes
    /// (default [`Orbit::Trivial`], under which the symmetry reduction is
    /// the identity). Samples set this from the generated
    /// `upsilon_sim::symmetry::sample_orbit` table; hand-built configs must
    /// only claim a non-trivial orbit when algorithms, inputs, specs and
    /// menu really are invariant under class-preserving permutations.
    pub orbit: Orbit,
    /// Refine the conflict relation through the generated per-op-pair
    /// commutativity matrix (`upsilon_sim::commute`): op signatures are
    /// recorded on every node and lattice conflicts the matrix proves
    /// independent stop waking sleeping processes. `false` reverts to the
    /// coarse `Access` lattice (the pre-matrix behaviour, benchmarked as
    /// the `lattice` mode).
    pub use_matrix: bool,
    /// Engine each node runs under.
    pub engine: EngineKind,
    /// Worker threads for the frontier fan-out (`0` = default pool).
    pub workers: usize,
    /// Path length at which subtrees are fanned out over
    /// `run_stealing`; `0` explores serially.
    pub split_depth: usize,
    /// Node budget (per frontier job when fanned out).
    pub max_nodes: u64,
    /// Stop after this many counterexamples.
    pub max_violations: usize,
    /// Minimize counterexamples with delta debugging.
    pub shrink: bool,
}

impl<D: FdValue> std::fmt::Debug for CheckConfig<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckConfig")
            .field("n_plus_1", &self.n_plus_1)
            .field("depth", &self.depth)
            .field("max_faults", &self.max_faults)
            .field("reduction", &self.reduction)
            .field("turbo", &self.turbo)
            .field("dedup", &self.dedup)
            .field("symmetry", &self.symmetry)
            .field("orbit", &self.orbit)
            .field("split_depth", &self.split_depth)
            .finish_non_exhaustive()
    }
}

impl<D: FdValue> CheckConfig<D> {
    /// A serial, reduction-enabled configuration with no crash injection and
    /// a one-counterexample budget.
    pub fn new(
        n_plus_1: usize,
        depth: usize,
        algos: AlgoFactory<D>,
        menu: Arc<dyn FdMenu<D>>,
    ) -> Self {
        CheckConfig {
            n_plus_1,
            depth,
            max_faults: 0,
            menu,
            specs: Vec::new(),
            algos,
            reduction: true,
            turbo: true,
            dedup: true,
            symmetry: true,
            orbit: Orbit::Trivial,
            use_matrix: true,
            engine: EngineKind::Inline,
            workers: 0,
            split_depth: 0,
            max_nodes: 1_000_000,
            max_violations: 1,
            shrink: true,
        }
    }

    /// Adds a specification to check on every explored run.
    pub fn spec(mut self, spec: impl RunSpec<D> + 'static) -> Self {
        self.specs.push(Arc::new(spec));
        self
    }

    /// Sets the crash-injection budget.
    pub fn max_faults(mut self, f: usize) -> Self {
        self.max_faults = f;
        self
    }

    /// Enables or disables the sleep-set reduction.
    pub fn reduction(mut self, on: bool) -> Self {
        self.reduction = on;
        self
    }

    /// Enables or disables snapshot-resume execution (on by default).
    pub fn turbo(mut self, on: bool) -> Self {
        self.turbo = on;
        self
    }

    /// Enables or disables state-fingerprint deduplication (on by
    /// default; effective only with `turbo` on an inline engine).
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Enables or disables the process-symmetry reduction (on by default;
    /// the identity unless a non-trivial [`CheckConfig::orbit`] is set).
    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Declares the certified orbit classes of this configuration's
    /// processes (default [`Orbit::Trivial`]).
    pub fn orbit(mut self, orbit: Orbit) -> Self {
        self.orbit = orbit;
        self
    }

    /// Enables or disables the per-op-pair commutativity refinement of the
    /// conflict relation (on by default).
    pub fn matrix(mut self, on: bool) -> Self {
        self.use_matrix = on;
        self
    }

    /// Fans subtrees out over a worker pool once paths reach `split_depth`.
    pub fn parallel(mut self, split_depth: usize, workers: usize) -> Self {
        self.split_depth = split_depth;
        self.workers = workers;
        self
    }

    /// Sets the counterexample budget.
    pub fn max_violations(mut self, v: usize) -> Self {
        self.max_violations = v;
        self
    }
}

/// Counters describing one exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CheckStats {
    /// Executed (and spec-checked) nodes, including the root.
    pub nodes: u64,
    /// Step children skipped because the process was asleep.
    pub sleep_pruned: u64,
    /// Nodes whose last choice was a crash injection.
    pub crash_nodes: u64,
    /// Nodes spawned as failure-detector output variants.
    pub fd_variant_nodes: u64,
    /// Paths that reached the depth budget.
    pub depth_leaves: u64,
    /// Step children that produced no step (the process finished instantly).
    pub no_step_children: u64,
    /// Nodes pruned because an equal state fingerprint was already fully
    /// explored (always 0 unless [`CheckConfig::dedup`] is on).
    pub dedup_pruned: u64,
    /// Children skipped by the process-symmetry reduction: crash injections
    /// collapsed to one representative per orbit class and duplicate
    /// failure-detector candidates (always 0 unless
    /// [`CheckConfig::symmetry`] is on).
    pub symmetry_pruned: u64,
    /// Whether a node or violation budget cut the search short.
    pub truncated: bool,
}

impl CheckStats {
    fn absorb(&mut self, other: CheckStats) {
        self.nodes += other.nodes;
        self.sleep_pruned += other.sleep_pruned;
        self.crash_nodes += other.crash_nodes;
        self.fd_variant_nodes += other.fd_variant_nodes;
        self.depth_leaves += other.depth_leaves;
        self.no_step_children += other.no_step_children;
        self.dedup_pruned += other.dedup_pruned;
        self.symmetry_pruned += other.symmetry_pruned;
        self.truncated |= other.truncated;
    }
}

/// A violation found by the explorer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterExample {
    /// Name of the violated specification.
    pub spec: String,
    /// The violation message from the spec checker.
    pub message: String,
    /// Minimized replayable token (equals `raw_token` when shrinking is
    /// off).
    pub token: ReplayToken,
    /// The token of the node where the violation was first found.
    pub raw_token: ReplayToken,
    /// Predicate evaluations the shrink spent.
    pub shrink_evals: u64,
    /// Choices removed by the shrink.
    pub shrink_removed: usize,
}

/// The result of [`check`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckReport {
    /// Search counters.
    pub stats: CheckStats,
    /// Counterexamples, in deterministic discovery order.
    pub violations: Vec<CounterExample>,
    /// Subtree jobs fanned out over the worker pool (0 when serial).
    pub frontier_jobs: usize,
}

impl CheckReport {
    /// Whether the exploration found no violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One executed node: the run, final memory (for object names) and the
/// failure-detector queries as served.
#[derive(Debug)]
pub struct Exec<D: FdValue> {
    /// The recorded run.
    pub run: Run<D>,
    /// The shared memory at the end of the run.
    pub memory: Memory,
    /// The menu oracle's query log.
    pub queries: Vec<QueryRecord>,
}

/// Packs a path and pick script into a replayable token. Crash times count
/// the `Step` choices preceding the crash, matching the simulator's
/// step-indexed clock.
pub fn token_of(n_plus_1: usize, path: &[Choice], picks: &[Vec<u32>]) -> ReplayToken {
    let mut crashes = vec![None; n_plus_1];
    let mut schedule = Vec::new();
    for ch in path {
        match *ch {
            Choice::Step(p) => schedule.push(p),
            Choice::Crash(p) => crashes[p.index()] = Some(Time(schedule.len() as u64)),
        }
    }
    let mut fd_choices = picks.to_vec();
    fd_choices.resize(n_plus_1, Vec::new());
    ReplayToken {
        n_plus_1,
        crashes,
        fd_choices,
        schedule,
    }
}

/// Executes the run a token describes under `engine`, with the
/// configuration's algorithms and menu.
pub fn run_token<D: FdValue>(
    cfg: &CheckConfig<D>,
    token: &ReplayToken,
    engine: EngineKind,
) -> Exec<D> {
    assert_eq!(token.n_plus_1, cfg.n_plus_1, "token/config process count");
    let oracle = MenuOracle::new(
        Arc::clone(&cfg.menu),
        cfg.n_plus_1,
        token.fd_choices.clone(),
    );
    let log = oracle.log();
    let mut builder = SimBuilder::<D>::replay(token)
        .oracle(oracle)
        .engine(engine)
        .record_op_sigs(cfg.use_matrix);
    for (i, a) in (cfg.algos)().into_iter().enumerate() {
        if let Some(a) = a {
            builder = builder.spawn(ProcessId(i), a);
        }
    }
    let outcome = builder.run();
    let queries = log.lock().expect("query log lock").clone();
    Exec {
        run: outcome.run,
        memory: outcome.memory,
        queries,
    }
}

/// A token replayed under one engine, with every spec's verdict.
#[derive(Debug)]
pub struct ReplayOutcome<D: FdValue> {
    /// The re-executed run.
    pub run: Run<D>,
    /// `(spec name, verdict)` for the run-condition validator and every
    /// configured spec, in checking order.
    pub verdicts: Vec<(String, Result<(), String>)>,
}

/// Replays a counterexample token under `engine` and re-checks every spec —
/// the round-trip used by regression tests and bug reports.
pub fn replay_token<D: FdValue>(
    cfg: &CheckConfig<D>,
    token: &ReplayToken,
    engine: EngineKind,
) -> ReplayOutcome<D> {
    let exec = run_token(cfg, token, engine);
    let mut verdicts = vec![(
        "run-conditions".to_string(),
        RunConditionsSpec.check(&exec.run),
    )];
    for spec in &cfg.specs {
        verdicts.push((spec.name().to_string(), spec.check(&exec.run)));
    }
    ReplayOutcome {
        run: exec.run,
        verdicts,
    }
}

fn execute<D: FdValue>(cfg: &CheckConfig<D>, path: &[Choice], picks: &[Vec<u32>]) -> Exec<D> {
    run_token(cfg, &token_of(cfg.n_plus_1, path, picks), cfg.engine)
}

/// First failing spec on a run: the §3.3 run-condition validator first,
/// then the configured specs in order. Returns `(spec name, message)`.
/// Shared by the explorer and by randomized campaign runners
/// (`upsilon-fuzz`) so both report violations identically.
pub fn violation_of<D: FdValue>(cfg: &CheckConfig<D>, run: &Run<D>) -> Option<(String, String)> {
    if let Err(msg) = RunConditionsSpec.check(run) {
        return Some(("run-conditions".to_string(), msg));
    }
    for spec in &cfg.specs {
        if let Err(msg) = spec.check(run) {
            return Some((spec.name().to_string(), msg));
        }
    }
    None
}

/// Reconstructs a choice path from a token — the inverse of [`token_of`]:
/// `Step` choices in schedule order with each crash inserted after the
/// number of steps its time records (simultaneous crashes in ascending
/// process order, matching the canonical-representative rule). Round-trips:
/// `token_of(n, &path_of_token(t), &t.fd_choices) == t` whenever every
/// crash time is at most the schedule length.
pub fn path_of_token(token: &ReplayToken) -> Vec<Choice> {
    let mut crashes: Vec<(u64, ProcessId)> = token
        .crashes
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| (t.0, ProcessId(i))))
        .collect();
    crashes.sort_unstable();
    let mut crashes = crashes.into_iter().peekable();
    let mut path = Vec::with_capacity(token.schedule.len() + token.crashes.len());
    for (steps, &p) in token.schedule.iter().enumerate() {
        while let Some((_, q)) = crashes.next_if(|&(t, _)| t as usize <= steps) {
            path.push(Choice::Crash(q));
        }
        path.push(Choice::Step(p));
    }
    for (_, q) in crashes {
        path.push(Choice::Crash(q));
    }
    path
}

/// Outcome of shrinking one violating token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShrinkResult {
    /// The minimized token (still violating `spec`).
    pub token: ReplayToken,
    /// Predicate evaluations the shrink spent.
    pub evals: u64,
    /// Choices removed from the original path.
    pub removed: usize,
}

/// Minimizes a violating token with [`ddmin_counted`] over its choice
/// sequence, preserving failure of the named spec — the same shrink the
/// explorer applies to its counterexamples, exposed for campaign runners
/// that find violations by random search rather than enumeration.
pub fn shrink_violation<D: FdValue>(
    cfg: &CheckConfig<D>,
    token: &ReplayToken,
    spec: &str,
) -> ShrinkResult {
    let path = path_of_token(token);
    let (token, evals, removed) = shrink_path(cfg, &path, &token.fd_choices, spec);
    ShrinkResult {
        token,
        evals,
        removed,
    }
}

/// The shared ddmin driver behind [`shrink_violation`] and the explorer's
/// counterexample minimization.
fn shrink_path<D: FdValue>(
    cfg: &CheckConfig<D>,
    path: &[Choice],
    picks: &[Vec<u32>],
    spec: &str,
) -> (ReplayToken, u64, usize) {
    let out = ddmin_counted(path, |cand| {
        // Crashing everyone is outside the model; such candidates cannot
        // be the minimal counterexample.
        if faults_in(cand) >= cfg.n_plus_1 {
            return false;
        }
        let exec = execute(cfg, cand, picks);
        violation_of(cfg, &exec.run).is_some_and(|(name, _)| name == spec)
    });
    (
        token_of(cfg.n_plus_1, &out.minimal, picks),
        out.evals,
        out.removed,
    )
}

fn crashed_in(path: &[Choice], p: ProcessId) -> bool {
    path.iter()
        .any(|c| matches!(c, Choice::Crash(q) if *q == p))
}

fn faults_in(path: &[Choice]) -> usize {
    path.iter()
        .filter(|c| matches!(c, Choice::Crash(_)))
        .count()
}

/// The canonical-representative rule: `Crash(p)` may extend `path` only
/// right after `Step(p)`, or inside the ascending all-crash initial block.
fn crash_allowed(path: &[Choice], p: ProcessId) -> bool {
    match path.last() {
        Some(Choice::Step(q)) => *q == p,
        Some(Choice::Crash(q)) => {
            q.index() < p.index() && path.iter().all(|c| matches!(c, Choice::Crash(_)))
        }
        None => true,
    }
}

/// Memoized signature resolutions: `resolve` re-parses the op's `Debug`
/// rendering, and the hot loop resolves the same few signatures at every
/// stepped child.
type ResolveMemo = BTreeMap<OpSig, Option<Arc<ResolvedOp>>>;

fn footprint_of<D: FdValue>(run: &Run<D>, memory: &Memory, memo: &mut ResolveMemo) -> Footprint {
    match &run.events().last().expect("step child has an event").kind {
        StepKind::Op {
            object,
            access,
            sig,
            ..
        } => Footprint::Obj {
            key: memory
                .name_of(*object)
                .expect("every allocated object is named")
                .clone(),
            access: *access,
            sig: sig.as_ref().and_then(|s| {
                if let Some(cached) = memo.get(s) {
                    return cached.clone();
                }
                let resolved = resolve(s).map(Arc::new);
                memo.insert(s.clone(), resolved.clone());
                resolved
            }),
        },
        _ => Footprint::Local,
    }
}

/// Whether a configuration runs its nodes on the snapshot-resume session.
/// The thread engine's state machines live on OS threads and cannot be
/// rewound, so `turbo` silently degrades to stateless re-execution there.
fn turbo_active<D: FdValue>(cfg: &CheckConfig<D>) -> bool {
    cfg.turbo && cfg.engine == EngineKind::Inline
}

/// The snapshot-resume cursor: one live [`Session`] plus a stack of saves,
/// one per node on the current path. Stepping descends in place; a save is
/// taken at every node entered; rewinding is *lazy* — [`TurboCursor::pop`]
/// only marks the session dirty, and the restore (fast-forward replay into
/// fresh futures) happens when the next sibling actually needs the parent
/// state. A leftmost descent therefore never replays at all.
struct TurboCursor<'a, D: FdValue> {
    cfg: &'a CheckConfig<D>,
    session: Session<D>,
    saves: Vec<SessionSave>,
    /// The pick script the live oracle was built with; a pushed step whose
    /// script differs (a detector variant) forces a restore with a fresh
    /// oracle even when the session is otherwise positioned correctly.
    cur_picks: Vec<Vec<u32>>,
    log: Arc<Mutex<Vec<QueryRecord>>>,
    /// Whether the live session has moved past the top save.
    dirty: bool,
}

impl<'a, D: FdValue> TurboCursor<'a, D> {
    fn new(cfg: &'a CheckConfig<D>) -> Self {
        let picks = vec![Vec::new(); cfg.n_plus_1];
        let oracle = MenuOracle::new(Arc::clone(&cfg.menu), cfg.n_plus_1, picks.clone());
        let log = oracle.log();
        // Dedup digests must see op responses (two states that answered the
        // same op differently must hash apart), which only the full trace
        // records; without dedup the session matches the stateless replay's
        // trace level byte for byte.
        let trace_level = if cfg.dedup {
            TraceLevel::Full
        } else {
            TraceLevel::Steps
        };
        let session = Session::new(
            FailurePattern::failure_free(cfg.n_plus_1),
            Arc::clone(&cfg.algos),
            Box::new(oracle),
            trace_level,
            cfg.use_matrix,
        );
        let saves = vec![session.save()];
        TurboCursor {
            cfg,
            session,
            saves,
            cur_picks: picks,
            log,
            dirty: false,
        }
    }

    /// Re-positions the session at the top save if it drifted (or if the
    /// pick script changed, which requires a freshly positioned oracle).
    fn ensure_clean(&mut self, picks: &[Vec<u32>]) {
        if !self.dirty && self.cur_picks == picks {
            return;
        }
        let save = self
            .saves
            .last()
            .expect("cursor always holds the root save");
        let oracle = MenuOracle::with_counts(
            Arc::clone(&self.cfg.menu),
            self.cfg.n_plus_1,
            picks.to_vec(),
            &save.query_counts(),
        );
        self.log = oracle.log();
        self.session.restore(save, Box::new(oracle));
        self.cur_picks = picks.to_vec();
        self.dirty = false;
    }

    fn push_step(&mut self, p: ProcessId, picks: &[Vec<u32>]) -> bool {
        self.ensure_clean(picks);
        match self.session.step(p) {
            SessionStep::Stepped => {
                self.saves.push(self.session.save());
                self.dirty = false;
                true
            }
            SessionStep::NoStep => {
                // The grant consumed no step but marked the process known-
                // finished; the next push's restore erases that.
                self.dirty = true;
                false
            }
        }
    }

    fn push_crash(&mut self, p: ProcessId, picks: &[Vec<u32>]) {
        self.ensure_clean(picks);
        self.session.crash(p);
        self.saves.push(self.session.save());
        self.dirty = false;
    }

    fn pop(&mut self) {
        self.saves.pop();
        self.dirty = true;
    }
}

/// The classic stateless cursor: every pushed node re-executes its whole
/// path from the root through [`SimBuilder`].
struct StatelessCursor<'a, D: FdValue> {
    cfg: &'a CheckConfig<D>,
    path: Vec<Choice>,
    execs: Vec<Exec<D>>,
}

impl<'a, D: FdValue> StatelessCursor<'a, D> {
    fn at_path(cfg: &'a CheckConfig<D>, path: &[Choice], picks: &[Vec<u32>]) -> Self {
        StatelessCursor {
            cfg,
            path: path.to_vec(),
            execs: vec![execute(cfg, path, picks)],
        }
    }

    fn top(&self) -> &Exec<D> {
        self.execs
            .last()
            .expect("cursor always holds the root exec")
    }

    fn push_step(&mut self, p: ProcessId, picks: &[Vec<u32>]) -> bool {
        let before = self.top().run.total_steps();
        self.path.push(Choice::Step(p));
        let child = execute(self.cfg, &self.path, picks);
        if child.run.total_steps() == before {
            // The process finished without taking a step: no new state.
            self.path.pop();
            return false;
        }
        self.execs.push(child);
        true
    }

    fn push_crash(&mut self, p: ProcessId, picks: &[Vec<u32>]) {
        self.path.push(Choice::Crash(p));
        self.execs.push(execute(self.cfg, &self.path, picks));
    }

    fn pop(&mut self) {
        self.path.pop();
        self.execs.pop();
    }
}

/// Either execution strategy behind one node-navigation interface. Every
/// observer method assumes the cursor is *clean* (positioned exactly at the
/// node of the last successful push), which the explorer guarantees by
/// reading a node before descending into its children.
// The turbo variant is big (a full session plus its save stack), but a
// cursor is created once per subtree job, not per node — boxing it would
// buy nothing on the hot path.
#[allow(clippy::large_enum_variant)]
enum Cursor<'a, D: FdValue> {
    Turbo(TurboCursor<'a, D>),
    Stateless(StatelessCursor<'a, D>),
}

impl<'a, D: FdValue> Cursor<'a, D> {
    fn at_path(cfg: &'a CheckConfig<D>, path: &[Choice], picks: &[Vec<u32>]) -> Self {
        if turbo_active(cfg) {
            let mut cursor = TurboCursor::new(cfg);
            for ch in path {
                match *ch {
                    Choice::Step(p) => {
                        let stepped = cursor.push_step(p, picks);
                        debug_assert!(stepped, "frontier paths replay step for step");
                    }
                    Choice::Crash(p) => cursor.push_crash(p, picks),
                }
            }
            Cursor::Turbo(cursor)
        } else {
            Cursor::Stateless(StatelessCursor::at_path(cfg, path, picks))
        }
    }

    fn push_step(&mut self, p: ProcessId, picks: &[Vec<u32>]) -> bool {
        match self {
            Cursor::Turbo(c) => c.push_step(p, picks),
            Cursor::Stateless(c) => c.push_step(p, picks),
        }
    }

    fn push_crash(&mut self, p: ProcessId, picks: &[Vec<u32>]) {
        match self {
            Cursor::Turbo(c) => c.push_crash(p, picks),
            Cursor::Stateless(c) => c.push_crash(p, picks),
        }
    }

    fn pop(&mut self) {
        match self {
            Cursor::Turbo(c) => c.pop(),
            Cursor::Stateless(c) => c.pop(),
        }
    }

    fn run(&self) -> &Run<D> {
        match self {
            Cursor::Turbo(c) => c.session.run(),
            Cursor::Stateless(c) => &c.top().run,
        }
    }

    fn is_turbo(&self) -> bool {
        matches!(self, Cursor::Turbo(_))
    }

    /// Footprint of the node's last (just-pushed) step.
    fn last_footprint(&self, memo: &mut ResolveMemo) -> Footprint {
        match self {
            Cursor::Turbo(c) => c
                .session
                .with_memory(|m| footprint_of(c.session.run(), m, memo)),
            Cursor::Stateless(c) => {
                let exec = c.top();
                footprint_of(&exec.run, &exec.memory, memo)
            }
        }
    }

    /// The query record of the node's last step, when that step was a
    /// failure-detector query.
    fn last_query(&self) -> Option<QueryRecord> {
        match self {
            Cursor::Turbo(c) => match &c.session.run().events().last()?.kind {
                StepKind::Query(_) => c.log.lock().expect("query log lock").last().copied(),
                _ => None,
            },
            Cursor::Stateless(c) => match &c.top().run.events().last()?.kind {
                StepKind::Query(_) => c.top().queries.last().copied(),
                _ => None,
            },
        }
    }

    /// The canonical state fingerprint of the current node (see
    /// [`trace_fingerprint`]).
    fn fingerprint(&self) -> u64 {
        match self {
            Cursor::Turbo(c) => c.session.fingerprint(),
            Cursor::Stateless(c) => {
                let exec = c.top();
                trace_fingerprint(&exec.run, &exec.memory)
            }
        }
    }

    /// The orbit-canonical state fingerprint of the current node (see
    /// [`orbit_trace_fingerprint`]).
    fn orbit_fingerprint(&self, class_of: &[u32], extra: &[u64]) -> OrbitFingerprint {
        match self {
            Cursor::Turbo(c) => c.session.orbit_fingerprint(class_of, extra),
            Cursor::Stateless(c) => {
                let exec = c.top();
                orbit_trace_fingerprint(&exec.run, &exec.memory, class_of, extra)
            }
        }
    }
}

/// Which crash children the canonical-representative rule admits below a
/// node — a property of the path's *shape*, not of the reached state, so it
/// must join the dedup key (`crash_allowed` consults exactly this).
fn crash_tag(path: &[Choice]) -> u64 {
    match path.last() {
        None => 1,
        Some(Choice::Step(p)) => 2 + 2 * p.index() as u64,
        Some(Choice::Crash(q)) if path.iter().all(|c| matches!(c, Choice::Crash(_))) => {
            3 + 2 * q.index() as u64
        }
        Some(Choice::Crash(_)) => 0,
    }
}

/// [`crash_tag`] with the distinguishing pid mapped through the canonical
/// permutation of an orbit fingerprint, so two nodes that are images of
/// each other under a class-preserving renaming carry equal tags. Sound
/// because position-equal entries of two equal canonical fingerprints have
/// equal (class, digest, extra) triples — the renaming that witnesses the
/// fingerprint match can always be chosen to align the tagged pids.
fn canon_crash_tag(path: &[Choice], canon_of: &[usize]) -> u64 {
    match path.last() {
        None => 1,
        Some(Choice::Step(p)) => 2 + 2 * canon_of[p.index()] as u64,
        Some(Choice::Crash(q)) if path.iter().all(|c| matches!(c, Choice::Crash(_))) => {
            3 + 2 * canon_of[q.index()] as u64
        }
        Some(Choice::Crash(_)) => 0,
    }
}

/// One fully-explored subtree in the dedup table: pruning a revisit is
/// sound only against an entry whose exploration was at least as deep and
/// at least as unrestricted.
struct StoredNode {
    remaining: usize,
    sleep: Vec<(ProcessId, Footprint)>,
}

/// A deferred subtree handed to the work-stealing pool.
struct FrontierJob {
    path: Vec<Choice>,
    picks: Vec<Vec<u32>>,
    sleep: Vec<(ProcessId, Footprint)>,
    steps_used: usize,
}

/// First failing spec on one explored node. Runs driven by the session
/// satisfy the §3.3 run conditions by construction (the engine enforces
/// crash and grant semantics), so the validator runs only as a debug
/// assertion there; the stateless path keeps the full check. They never
/// differ on explorer-generated runs — the differential suite pins this.
fn node_violation<D: FdValue>(
    cfg: &CheckConfig<D>,
    run: &Run<D>,
    turbo: bool,
) -> Option<(String, String)> {
    if turbo {
        debug_assert!(
            RunConditionsSpec.check(run).is_ok(),
            "session runs satisfy the run conditions by construction"
        );
        for spec in &cfg.specs {
            if let Err(msg) = spec.check(run) {
                return Some((spec.name().to_string(), msg));
            }
        }
        None
    } else {
        violation_of(cfg, run)
    }
}

struct Explorer<'a, D: FdValue, F: FnMut(FrontierJob)> {
    cfg: &'a CheckConfig<D>,
    participants: &'a [bool],
    stats: CheckStats,
    violations: Vec<CounterExample>,
    path: Vec<Choice>,
    cursor: Cursor<'a, D>,
    /// Fingerprint → fully-explored subtrees, populated post-order (a node
    /// enters only after its subtree completed un-truncated and violation-
    /// free, so every prune skips provably clean ground).
    visited: Option<BTreeMap<u64, Vec<StoredNode>>>,
    resolve_memo: ResolveMemo,
    frontier: Option<F>,
    /// The orbit class of every process (identity classes when symmetry is
    /// off or the orbit is trivial).
    class_of: Vec<u32>,
    /// Whether the symmetry reduction can do anything here: `cfg.symmetry`
    /// with a non-trivial certified orbit.
    sym_active: bool,
}

impl<'a, D: FdValue, F: FnMut(FrontierJob)> Explorer<'a, D, F> {
    fn at(
        cfg: &'a CheckConfig<D>,
        participants: &'a [bool],
        path: &[Choice],
        picks: &[Vec<u32>],
        frontier: Option<F>,
    ) -> Self {
        Explorer {
            cfg,
            participants,
            stats: CheckStats::default(),
            violations: Vec::new(),
            path: path.to_vec(),
            cursor: Cursor::at_path(cfg, path, picks),
            visited: (cfg.dedup && turbo_active(cfg)).then(BTreeMap::new),
            resolve_memo: ResolveMemo::new(),
            frontier,
            class_of: cfg.orbit.class_of(cfg.n_plus_1),
            sym_active: cfg.symmetry && !cfg.orbit.is_trivial(),
        }
    }

    fn over_budget(&self) -> bool {
        self.stats.nodes >= self.cfg.max_nodes || self.violations.len() >= self.cfg.max_violations
    }

    /// The dedup key: the canonical state fingerprint joined with everything
    /// *else* that steers the subtree — the unserved pick suffixes (served
    /// picks are already baked into the state), the spent fault budget, the
    /// crash times (specs may read them) and the path-shape crash tag.
    ///
    /// With the symmetry reduction active the key is computed up to
    /// within-class process renaming: the per-process extras (pick suffix
    /// plus crash time) ride inside the orbit-canonical fingerprint instead
    /// of being hashed in pid order, the crash tag's pid is mapped through
    /// the canonicalizing permutation, and that permutation is returned so
    /// [`Explorer::visit`] can canonicalize the sleep set the same way.
    fn dedup_key(&self, picks: &[Vec<u32>]) -> (u64, Option<Vec<usize>>) {
        let run = self.cursor.run();
        let n = self.cfg.n_plus_1;
        let mut qcounts = vec![0usize; n];
        for (_, p, _) in run.fd_samples() {
            qcounts[p.index()] += 1;
        }
        // An explicit 0 and a missing entry play the same candidate:
        // strip trailing zeros so the two key identically.
        let suffix_of = |i: usize| -> &[u32] {
            let suffix = picks
                .get(i)
                .map(|v| v.get(qcounts[i]..).unwrap_or(&[]))
                .unwrap_or(&[]);
            match suffix.iter().rposition(|&x| x != 0) {
                Some(last) => &suffix[..=last],
                None => &[],
            }
        };
        if self.sym_active {
            let extra: Vec<u64> = (0..n)
                .map(|i| {
                    let mut e = FnvWrite::new();
                    e.write_u64(0x51);
                    for &x in suffix_of(i) {
                        e.write_u64(u64::from(x) + 1);
                    }
                    e.write_u64(match run.crash_observed(ProcessId(i)) {
                        Some(t) => t.0 + 1,
                        None => 0,
                    });
                    e.finish()
                })
                .collect();
            let ofp = self.cursor.orbit_fingerprint(&self.class_of, &extra);
            let mut h = FnvWrite::new();
            h.write_u64(ofp.fingerprint);
            h.write_u64(faults_in(&self.path) as u64);
            h.write_u64(canon_crash_tag(&self.path, &ofp.canon_of));
            (h.finish(), Some(ofp.canon_of))
        } else {
            let mut h = FnvWrite::new();
            h.write_u64(self.cursor.fingerprint());
            for i in 0..n {
                h.write_u64(0x51);
                for &x in suffix_of(i) {
                    h.write_u64(u64::from(x) + 1);
                }
            }
            h.write_u64(faults_in(&self.path) as u64);
            h.write_u64(crash_tag(&self.path));
            for i in 0..n {
                h.write_u64(match run.crash_observed(ProcessId(i)) {
                    Some(t) => t.0 + 1,
                    None => 0,
                });
            }
            (h.finish(), None)
        }
    }

    /// Executes specs on the node the cursor sits at; on violation, records
    /// a (shrunk) counterexample and prunes the subtree.
    fn visit(&mut self, picks: &[Vec<u32>], sleep: Vec<(ProcessId, Footprint)>, steps_used: usize) {
        self.stats.nodes += 1;
        if let Some((spec, message)) =
            node_violation(self.cfg, self.cursor.run(), self.cursor.is_turbo())
        {
            self.record(picks, spec, message);
            return;
        }
        if self.over_budget() {
            self.stats.truncated = true;
            return;
        }
        if steps_used >= self.cfg.depth {
            self.stats.depth_leaves += 1;
            return;
        }
        if self.frontier.is_some() && self.path.len() >= self.cfg.split_depth {
            let job = FrontierJob {
                path: self.path.clone(),
                picks: picks.to_vec(),
                sleep,
                steps_used,
            };
            if let Some(spawn) = self.frontier.as_mut() {
                spawn(job);
            }
            return;
        }
        let dedup_key = match &self.visited {
            Some(visited) => {
                let (key, canon) = self.dedup_key(picks);
                // Sleep entries are compared (and stored) with their pids
                // mapped through the canonical permutation, so symmetric
                // nodes agree on the comparison as well as the key.
                let canon_sleep: Vec<(ProcessId, Footprint)> = match &canon {
                    Some(canon_of) => sleep
                        .iter()
                        .map(|(q, f)| (ProcessId(canon_of[q.index()]), f.clone()))
                        .collect(),
                    None => sleep.clone(),
                };
                let remaining = self.cfg.depth - steps_used;
                let seen = visited.get(&key).is_some_and(|stored| {
                    stored.iter().any(|s| {
                        s.remaining >= remaining && s.sleep.iter().all(|e| canon_sleep.contains(e))
                    })
                });
                if seen {
                    self.stats.dedup_pruned += 1;
                    return;
                }
                Some((key, canon_sleep))
            }
            None => None,
        };
        let violations_before = self.violations.len();
        self.expand(picks, sleep, steps_used);
        if let Some((key, canon_sleep)) = dedup_key {
            if !self.stats.truncated && self.violations.len() == violations_before {
                self.visited
                    .as_mut()
                    .expect("a dedup key implies a visited table")
                    .entry(key)
                    .or_default()
                    .push(StoredNode {
                        remaining: self.cfg.depth - steps_used,
                        sleep: canon_sleep,
                    });
            }
        }
    }

    /// Generates and explores the children of the node the cursor sits at:
    /// canonical crash injections first, then step extensions under the
    /// sleep set, with failure-detector variants as siblings of query steps.
    /// On return the cursor is back at the entry node (possibly dirty).
    fn expand(
        &mut self,
        picks: &[Vec<u32>],
        mut sleep: Vec<(ProcessId, Footprint)>,
        steps_used: usize,
    ) {
        // The parent's run view is read now, while the cursor is clean; it
        // is not revisited once children start moving the session.
        let finished: Vec<bool> = {
            let run = self.cursor.run();
            (0..self.cfg.n_plus_1)
                .map(|i| run.finished(ProcessId(i)))
                .collect()
        };

        if faults_in(&self.path) < self.cfg.max_faults {
            // Symmetry reduction: when several crash candidates are admitted
            // at this node, processes of one orbit class are interchangeable
            // — nobody has stepped yet wherever multiple candidates exist
            // (the canonical-representative rule admits more than one crash
            // only at the empty path or after an all-crash prefix), so
            // crashing any of them yields π-isomorphic subtrees. Keep one
            // representative per class.
            let mut crash_classes_seen: Vec<u32> = Vec::new();
            for i in 0..self.cfg.n_plus_1 {
                let p = ProcessId(i);
                if crashed_in(&self.path, p) || !crash_allowed(&self.path, p) {
                    continue;
                }
                if self.sym_active {
                    let class = self.class_of[i];
                    if crash_classes_seen.contains(&class) {
                        self.stats.symmetry_pruned += 1;
                        continue;
                    }
                    crash_classes_seen.push(class);
                }
                if self.over_budget() {
                    self.stats.truncated = true;
                    return;
                }
                self.path.push(Choice::Crash(p));
                self.cursor.push_crash(p, picks);
                self.stats.crash_nodes += 1;
                self.visit(picks, sleep.clone(), steps_used);
                self.cursor.pop();
                self.path.pop();
            }
        }

        for i in 0..self.cfg.n_plus_1 {
            let p = ProcessId(i);
            if !self.participants[i] || crashed_in(&self.path, p) || finished[i] {
                continue;
            }
            if self.cfg.reduction && sleep.iter().any(|(q, _)| *q == p) {
                self.stats.sleep_pruned += 1;
                continue;
            }
            if self.over_budget() {
                self.stats.truncated = true;
                return;
            }
            self.path.push(Choice::Step(p));
            if !self.cursor.push_step(p, picks) {
                self.stats.no_step_children += 1;
                self.path.pop();
                continue;
            }
            let fp = self.cursor.last_footprint(&mut self.resolve_memo);
            let query = self.cursor.last_query();
            let child_sleep: Vec<_> = sleep
                .iter()
                .filter(|(_, f)| !f.conflicts_with(&fp))
                .cloned()
                .collect();
            self.visit(picks, child_sleep.clone(), steps_used + 1);

            // Sibling branches for the unexplored detector candidates.
            if let Some(rec) = query {
                debug_assert_eq!(rec.pid, p);
                // Symmetry reduction: a menu may offer the same candidate
                // value more than once (e.g. `{p} ∪ Π` when `p ∈ Π`); equal
                // values produce value-identical runs, so explore the first
                // occurrence only. The menu contract (deterministic,
                // schedule-independent) makes this re-fetch safe.
                let menu_cands = self
                    .cfg
                    .symmetry
                    .then(|| self.cfg.menu.candidates(p, rec.k as usize));
                for j in 1..rec.candidates {
                    if let Some(cands) = &menu_cands {
                        let ju = j as usize;
                        if ju < cands.len() && cands[..ju].iter().any(|c| *c == cands[ju]) {
                            self.stats.symmetry_pruned += 1;
                            continue;
                        }
                    }
                    let mut vpicks = picks.to_vec();
                    vpicks[i].resize(rec.k as usize, 0);
                    vpicks[i].push(j);
                    if self.over_budget() {
                        self.stats.truncated = true;
                        self.cursor.pop();
                        self.path.pop();
                        return;
                    }
                    self.cursor.pop();
                    let stepped = self.cursor.push_step(p, &vpicks);
                    debug_assert!(stepped, "a query step steps under every candidate");
                    self.stats.fd_variant_nodes += 1;
                    self.visit(&vpicks, child_sleep.clone(), steps_used + 1);
                }
            }
            self.cursor.pop();
            self.path.pop();
            if self.cfg.reduction {
                sleep.push((p, fp));
            }
        }
    }

    fn record(&mut self, picks: &[Vec<u32>], spec: String, message: String) {
        let raw_token = token_of(self.cfg.n_plus_1, &self.path, picks);
        let (token, shrink_evals, shrink_removed) = if self.cfg.shrink {
            shrink_path(self.cfg, &self.path, picks, &spec)
        } else {
            (raw_token.clone(), 0, 0)
        };
        self.violations.push(CounterExample {
            spec,
            message,
            token,
            raw_token,
            shrink_evals,
            shrink_removed,
        });
    }
}

/// Runs the exploration a [`CheckConfig`] describes and reports every
/// counterexample found. Deterministic: the same configuration yields the
/// same report at any worker count — frontier subtrees run on a
/// work-stealing pool ([`run_stealing`]) and merge by spawn-sequence
/// coordinate, which reproduces the serial discovery order byte for byte.
pub fn check<D: FdValue>(cfg: &CheckConfig<D>) -> CheckReport {
    let participants: Vec<bool> = (cfg.algos)().iter().map(Option::is_some).collect();
    assert_eq!(
        participants.len(),
        cfg.n_plus_1,
        "algo factory must cover every process"
    );
    assert!(
        cfg.max_faults < cfg.n_plus_1,
        "at least one process must stay correct"
    );
    let root_picks: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_plus_1];

    if cfg.split_depth == 0 {
        let mut explorer = Explorer::at(
            cfg,
            &participants,
            &[],
            &root_picks,
            None::<fn(FrontierJob)>,
        );
        explorer.visit(&root_picks, Vec::new(), 0);
        let Explorer {
            stats, violations, ..
        } = explorer;
        return CheckReport {
            stats,
            violations,
            frontier_jobs: 0,
        };
    }

    // Streaming frontier: the serial prefix walk runs as the pool's first
    // job and spawns every deferred subtree the moment it is discovered, so
    // workers descend into subtrees while the prefix is still being carved.
    type JobResult = (CheckStats, Vec<CounterExample>, usize);
    let participants_ref: &[bool] = &participants;
    let root: StealJob<'_, JobResult> = StealJob {
        coord: vec![0],
        run: Box::new(move |scope: &mut StealScope<'_, '_, JobResult>| {
            let mut seq: u32 = 0;
            let mut spawn = |job: FrontierJob| {
                seq += 1;
                scope(StealJob {
                    coord: vec![seq],
                    run: Box::new(move |_: &mut StealScope<'_, '_, JobResult>| {
                        let mut sub = Explorer::at(
                            cfg,
                            participants_ref,
                            &job.path,
                            &job.picks,
                            None::<fn(FrontierJob)>,
                        );
                        sub.expand(&job.picks, job.sleep, job.steps_used);
                        (sub.stats, sub.violations, 0)
                    }),
                });
            };
            let root_picks: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_plus_1];
            let mut explorer =
                Explorer::at(cfg, participants_ref, &[], &root_picks, Some(&mut spawn));
            explorer.visit(&root_picks, Vec::new(), 0);
            let Explorer {
                stats, violations, ..
            } = explorer;
            (stats, violations, seq as usize)
        }),
    };
    let results = run_stealing(vec![root], cfg.workers);

    let mut stats = CheckStats::default();
    let mut violations = Vec::new();
    let mut frontier_jobs = 0;
    for (s, v, jobs) in results {
        stats.absorb(s);
        violations.extend(v);
        frontier_jobs += jobs;
    }
    if violations.len() > cfg.max_violations {
        violations.truncate(cfg.max_violations);
        stats.truncated = true;
    }
    CheckReport {
        stats,
        violations,
        frontier_jobs,
    }
}
