//! The systematic explorer: sleep-set DPOR over schedules, layered with
//! exhaustive crash injection and failure-detector output branching.
//!
//! # State space
//!
//! A node of the search tree is a *path*: a sequence of [`Choice`]s —
//! `Step(p)` grants one step to `p`, `Crash(p)` crashes `p` at the current
//! point of the schedule — together with a per-process script of
//! failure-detector candidate picks. Every node is executed from scratch
//! through [`SimBuilder`] with a [`Scripted`](upsilon_sim::Scripted)
//! adversary (stateless model checking), checked against the §3.3
//! run-condition validator and every configured [`RunSpec`], and then
//! expanded.
//!
//! # Partial-order reduction
//!
//! Two steps are *dependent* iff they touch the same shared object (by
//! [`Key`], not allocation order) with conflicting [`Access`]es — reads
//! commute with reads, single-writer cell updates commute across distinct
//! cells, everything else conflicts. Query/output/no-op steps are globally
//! independent: detector values are scripted per `(p, k)` so they do not
//! depend on placement. The explorer keeps a *sleep set* of process/footprint
//! pairs whose subtrees were already explored at an ancestor; a sleeping
//! process is skipped until a conflicting step wakes it. Runs pruned this
//! way are Mazurkiewicz-equivalent to explored ones, so any spec that is
//! *trace-closed* (invariant under commuting independent steps — see
//! `DESIGN.md` §8) loses no violations.
//!
//! # Crash canonicalization
//!
//! Crash choices commute with every other process's steps, and shifting a
//! crash across steps of *other* processes changes neither the event
//! sequence nor `correct(F)`. Each equivalence class therefore has one
//! canonical representative, the only one generated: processes that never
//! step crash in one ascending initial block; a process that steps crashes
//! immediately after its own last step ([`Choice::Crash`] allowed only when
//! the path so far is all-crash-ascending or ends with `Step(p)`).
//!
//! # Counterexamples
//!
//! A violating node is packed into a replayable [`ReplayToken`] (`UCHK1:`),
//! minimized with [`ddmin_counted`] over its choice sequence (re-executing
//! each candidate), and reported with both raw and shrunk tokens.

use crate::menu::{FdMenu, MenuOracle, QueryRecord};
use std::sync::Arc;
use upsilon_analysis::{RunConditionsSpec, RunSpec};
use upsilon_core::shrink::ddmin_counted;
use upsilon_sim::{
    ops_commute, resolve, run_batch, Access, AlgoFn, EngineKind, FdValue, Key, Memory, ProcessId,
    ReplayToken, ResolvedOp, Run, SimBuilder, StepKind, Time,
};

/// One scheduling decision of the explorer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Grant one step to the process.
    Step(ProcessId),
    /// Crash the process at the current point of the schedule.
    Crash(ProcessId),
}

/// What one executed step touched, for the conflict relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Footprint {
    /// Query, output or no-op: independent of every other step.
    Local,
    /// A shared-object operation.
    Obj {
        /// The object's stable name.
        key: Key,
        /// How the operation touched it.
        access: Access,
        /// The op's signature resolved against the generated commutativity
        /// matrix (`upsilon_sim::commute`), when the exploration records
        /// signatures and the object type is analyzed. `None` falls back to
        /// the `Access` lattice alone.
        sig: Option<ResolvedOp>,
    },
}

impl Footprint {
    /// Whether two steps with these footprints are dependent (do not
    /// commute).
    ///
    /// The base relation is the `Access` lattice on same-key operations; a
    /// lattice conflict is then *removed* when both sides carry resolved
    /// signatures the per-op-pair matrix proves independent (e.g. two
    /// writes of the same value to one register). The refinement is sound
    /// for sleep sets because every matrix verdict is state-independent:
    /// it holds in all object states, not just the one explored.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        match (self, other) {
            (
                Footprint::Obj {
                    key: k1,
                    access: a1,
                    sig: s1,
                },
                Footprint::Obj {
                    key: k2,
                    access: a2,
                    sig: s2,
                },
            ) => {
                let matrix_commutes = match (s1, s2) {
                    (Some(s1), Some(s2)) => ops_commute(s1, s2),
                    _ => false,
                };
                k1 == k2 && a1.conflicts_with(*a2) && !matrix_commutes
            }
            _ => false,
        }
    }
}

/// Produces the per-process algorithms of one run; called once per explored
/// node (stateless re-execution), so it must be deterministic. `None`
/// entries do not participate.
pub type AlgoFactory<D> = Arc<dyn Fn() -> Vec<Option<AlgoFn<D>>> + Send + Sync>;

/// Configuration of one exploration.
#[derive(Clone)]
pub struct CheckConfig<D: FdValue> {
    /// Number of processes.
    pub n_plus_1: usize,
    /// Maximum schedule length (number of `Step` choices per path).
    pub depth: usize,
    /// Maximum number of injected crashes per path (`< n_plus_1`).
    pub max_faults: usize,
    /// Failure-detector candidates per query.
    pub menu: Arc<dyn FdMenu<D>>,
    /// Specifications checked on every explored run, in order; the §3.3
    /// run-condition validator is always checked first. Specs must be
    /// trace-closed for the reduction to be sound.
    pub specs: Vec<Arc<dyn RunSpec<D>>>,
    /// The algorithms under test.
    pub algos: AlgoFactory<D>,
    /// Sleep-set partial-order reduction; `false` explores the full tree
    /// (the naive baseline benchmarked against).
    pub reduction: bool,
    /// Refine the conflict relation through the generated per-op-pair
    /// commutativity matrix (`upsilon_sim::commute`): op signatures are
    /// recorded on every node and lattice conflicts the matrix proves
    /// independent stop waking sleeping processes. `false` reverts to the
    /// coarse `Access` lattice (the pre-matrix behaviour, benchmarked as
    /// the `lattice` mode).
    pub use_matrix: bool,
    /// Engine each node runs under.
    pub engine: EngineKind,
    /// Worker threads for the frontier fan-out (`0` = default pool).
    pub workers: usize,
    /// Path length at which subtrees are fanned out over
    /// [`run_batch`]; `0` explores serially.
    pub split_depth: usize,
    /// Node budget (per frontier job when fanned out).
    pub max_nodes: u64,
    /// Stop after this many counterexamples.
    pub max_violations: usize,
    /// Minimize counterexamples with delta debugging.
    pub shrink: bool,
}

impl<D: FdValue> std::fmt::Debug for CheckConfig<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckConfig")
            .field("n_plus_1", &self.n_plus_1)
            .field("depth", &self.depth)
            .field("max_faults", &self.max_faults)
            .field("reduction", &self.reduction)
            .field("split_depth", &self.split_depth)
            .finish_non_exhaustive()
    }
}

impl<D: FdValue> CheckConfig<D> {
    /// A serial, reduction-enabled configuration with no crash injection and
    /// a one-counterexample budget.
    pub fn new(
        n_plus_1: usize,
        depth: usize,
        algos: AlgoFactory<D>,
        menu: Arc<dyn FdMenu<D>>,
    ) -> Self {
        CheckConfig {
            n_plus_1,
            depth,
            max_faults: 0,
            menu,
            specs: Vec::new(),
            algos,
            reduction: true,
            use_matrix: true,
            engine: EngineKind::Inline,
            workers: 0,
            split_depth: 0,
            max_nodes: 1_000_000,
            max_violations: 1,
            shrink: true,
        }
    }

    /// Adds a specification to check on every explored run.
    pub fn spec(mut self, spec: impl RunSpec<D> + 'static) -> Self {
        self.specs.push(Arc::new(spec));
        self
    }

    /// Sets the crash-injection budget.
    pub fn max_faults(mut self, f: usize) -> Self {
        self.max_faults = f;
        self
    }

    /// Enables or disables the sleep-set reduction.
    pub fn reduction(mut self, on: bool) -> Self {
        self.reduction = on;
        self
    }

    /// Enables or disables the per-op-pair commutativity refinement of the
    /// conflict relation (on by default).
    pub fn matrix(mut self, on: bool) -> Self {
        self.use_matrix = on;
        self
    }

    /// Fans subtrees out over a worker pool once paths reach `split_depth`.
    pub fn parallel(mut self, split_depth: usize, workers: usize) -> Self {
        self.split_depth = split_depth;
        self.workers = workers;
        self
    }

    /// Sets the counterexample budget.
    pub fn max_violations(mut self, v: usize) -> Self {
        self.max_violations = v;
        self
    }
}

/// Counters describing one exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CheckStats {
    /// Executed (and spec-checked) nodes, including the root.
    pub nodes: u64,
    /// Step children skipped because the process was asleep.
    pub sleep_pruned: u64,
    /// Nodes whose last choice was a crash injection.
    pub crash_nodes: u64,
    /// Nodes spawned as failure-detector output variants.
    pub fd_variant_nodes: u64,
    /// Paths that reached the depth budget.
    pub depth_leaves: u64,
    /// Step children that produced no step (the process finished instantly).
    pub no_step_children: u64,
    /// Whether a node or violation budget cut the search short.
    pub truncated: bool,
}

impl CheckStats {
    fn absorb(&mut self, other: CheckStats) {
        self.nodes += other.nodes;
        self.sleep_pruned += other.sleep_pruned;
        self.crash_nodes += other.crash_nodes;
        self.fd_variant_nodes += other.fd_variant_nodes;
        self.depth_leaves += other.depth_leaves;
        self.no_step_children += other.no_step_children;
        self.truncated |= other.truncated;
    }
}

/// A violation found by the explorer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterExample {
    /// Name of the violated specification.
    pub spec: String,
    /// The violation message from the spec checker.
    pub message: String,
    /// Minimized replayable token (equals `raw_token` when shrinking is
    /// off).
    pub token: ReplayToken,
    /// The token of the node where the violation was first found.
    pub raw_token: ReplayToken,
    /// Predicate evaluations the shrink spent.
    pub shrink_evals: u64,
    /// Choices removed by the shrink.
    pub shrink_removed: usize,
}

/// The result of [`check`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckReport {
    /// Search counters.
    pub stats: CheckStats,
    /// Counterexamples, in deterministic discovery order.
    pub violations: Vec<CounterExample>,
    /// Subtree jobs fanned out over the worker pool (0 when serial).
    pub frontier_jobs: usize,
}

impl CheckReport {
    /// Whether the exploration found no violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One executed node: the run, final memory (for object names) and the
/// failure-detector queries as served.
#[derive(Debug)]
pub struct Exec<D: FdValue> {
    /// The recorded run.
    pub run: Run<D>,
    /// The shared memory at the end of the run.
    pub memory: Memory,
    /// The menu oracle's query log.
    pub queries: Vec<QueryRecord>,
}

/// Packs a path and pick script into a replayable token. Crash times count
/// the `Step` choices preceding the crash, matching the simulator's
/// step-indexed clock.
pub fn token_of(n_plus_1: usize, path: &[Choice], picks: &[Vec<u32>]) -> ReplayToken {
    let mut crashes = vec![None; n_plus_1];
    let mut schedule = Vec::new();
    for ch in path {
        match *ch {
            Choice::Step(p) => schedule.push(p),
            Choice::Crash(p) => crashes[p.index()] = Some(Time(schedule.len() as u64)),
        }
    }
    let mut fd_choices = picks.to_vec();
    fd_choices.resize(n_plus_1, Vec::new());
    ReplayToken {
        n_plus_1,
        crashes,
        fd_choices,
        schedule,
    }
}

/// Executes the run a token describes under `engine`, with the
/// configuration's algorithms and menu.
pub fn run_token<D: FdValue>(
    cfg: &CheckConfig<D>,
    token: &ReplayToken,
    engine: EngineKind,
) -> Exec<D> {
    assert_eq!(token.n_plus_1, cfg.n_plus_1, "token/config process count");
    let oracle = MenuOracle::new(
        Arc::clone(&cfg.menu),
        cfg.n_plus_1,
        token.fd_choices.clone(),
    );
    let log = oracle.log();
    let mut builder = SimBuilder::<D>::replay(token)
        .oracle(oracle)
        .engine(engine)
        .record_op_sigs(cfg.use_matrix);
    for (i, a) in (cfg.algos)().into_iter().enumerate() {
        if let Some(a) = a {
            builder = builder.spawn(ProcessId(i), a);
        }
    }
    let outcome = builder.run();
    let queries = log.lock().expect("query log lock").clone();
    Exec {
        run: outcome.run,
        memory: outcome.memory,
        queries,
    }
}

/// A token replayed under one engine, with every spec's verdict.
#[derive(Debug)]
pub struct ReplayOutcome<D: FdValue> {
    /// The re-executed run.
    pub run: Run<D>,
    /// `(spec name, verdict)` for the run-condition validator and every
    /// configured spec, in checking order.
    pub verdicts: Vec<(String, Result<(), String>)>,
}

/// Replays a counterexample token under `engine` and re-checks every spec —
/// the round-trip used by regression tests and bug reports.
pub fn replay_token<D: FdValue>(
    cfg: &CheckConfig<D>,
    token: &ReplayToken,
    engine: EngineKind,
) -> ReplayOutcome<D> {
    let exec = run_token(cfg, token, engine);
    let mut verdicts = vec![(
        "run-conditions".to_string(),
        RunConditionsSpec.check(&exec.run),
    )];
    for spec in &cfg.specs {
        verdicts.push((spec.name().to_string(), spec.check(&exec.run)));
    }
    ReplayOutcome {
        run: exec.run,
        verdicts,
    }
}

fn execute<D: FdValue>(cfg: &CheckConfig<D>, path: &[Choice], picks: &[Vec<u32>]) -> Exec<D> {
    run_token(cfg, &token_of(cfg.n_plus_1, path, picks), cfg.engine)
}

/// First failing spec on a run: the §3.3 run-condition validator first,
/// then the configured specs in order. Returns `(spec name, message)`.
/// Shared by the explorer and by randomized campaign runners
/// (`upsilon-fuzz`) so both report violations identically.
pub fn violation_of<D: FdValue>(cfg: &CheckConfig<D>, run: &Run<D>) -> Option<(String, String)> {
    if let Err(msg) = RunConditionsSpec.check(run) {
        return Some(("run-conditions".to_string(), msg));
    }
    for spec in &cfg.specs {
        if let Err(msg) = spec.check(run) {
            return Some((spec.name().to_string(), msg));
        }
    }
    None
}

/// Reconstructs a choice path from a token — the inverse of [`token_of`]:
/// `Step` choices in schedule order with each crash inserted after the
/// number of steps its time records (simultaneous crashes in ascending
/// process order, matching the canonical-representative rule). Round-trips:
/// `token_of(n, &path_of_token(t), &t.fd_choices) == t` whenever every
/// crash time is at most the schedule length.
pub fn path_of_token(token: &ReplayToken) -> Vec<Choice> {
    let mut crashes: Vec<(u64, ProcessId)> = token
        .crashes
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| (t.0, ProcessId(i))))
        .collect();
    crashes.sort_unstable();
    let mut crashes = crashes.into_iter().peekable();
    let mut path = Vec::with_capacity(token.schedule.len() + token.crashes.len());
    for (steps, &p) in token.schedule.iter().enumerate() {
        while let Some((_, q)) = crashes.next_if(|&(t, _)| t as usize <= steps) {
            path.push(Choice::Crash(q));
        }
        path.push(Choice::Step(p));
    }
    for (_, q) in crashes {
        path.push(Choice::Crash(q));
    }
    path
}

/// Outcome of shrinking one violating token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShrinkResult {
    /// The minimized token (still violating `spec`).
    pub token: ReplayToken,
    /// Predicate evaluations the shrink spent.
    pub evals: u64,
    /// Choices removed from the original path.
    pub removed: usize,
}

/// Minimizes a violating token with [`ddmin_counted`] over its choice
/// sequence, preserving failure of the named spec — the same shrink the
/// explorer applies to its counterexamples, exposed for campaign runners
/// that find violations by random search rather than enumeration.
pub fn shrink_violation<D: FdValue>(
    cfg: &CheckConfig<D>,
    token: &ReplayToken,
    spec: &str,
) -> ShrinkResult {
    let path = path_of_token(token);
    let (token, evals, removed) = shrink_path(cfg, &path, &token.fd_choices, spec);
    ShrinkResult {
        token,
        evals,
        removed,
    }
}

/// The shared ddmin driver behind [`shrink_violation`] and the explorer's
/// counterexample minimization.
fn shrink_path<D: FdValue>(
    cfg: &CheckConfig<D>,
    path: &[Choice],
    picks: &[Vec<u32>],
    spec: &str,
) -> (ReplayToken, u64, usize) {
    let out = ddmin_counted(path, |cand| {
        // Crashing everyone is outside the model; such candidates cannot
        // be the minimal counterexample.
        if faults_in(cand) >= cfg.n_plus_1 {
            return false;
        }
        let exec = execute(cfg, cand, picks);
        violation_of(cfg, &exec.run).is_some_and(|(name, _)| name == spec)
    });
    (
        token_of(cfg.n_plus_1, &out.minimal, picks),
        out.evals,
        out.removed,
    )
}

fn crashed_in(path: &[Choice], p: ProcessId) -> bool {
    path.iter()
        .any(|c| matches!(c, Choice::Crash(q) if *q == p))
}

fn faults_in(path: &[Choice]) -> usize {
    path.iter()
        .filter(|c| matches!(c, Choice::Crash(_)))
        .count()
}

/// The canonical-representative rule: `Crash(p)` may extend `path` only
/// right after `Step(p)`, or inside the ascending all-crash initial block.
fn crash_allowed(path: &[Choice], p: ProcessId) -> bool {
    match path.last() {
        Some(Choice::Step(q)) => *q == p,
        Some(Choice::Crash(q)) => {
            q.index() < p.index() && path.iter().all(|c| matches!(c, Choice::Crash(_)))
        }
        None => true,
    }
}

fn footprint<D: FdValue>(exec: &Exec<D>) -> Footprint {
    match &exec
        .run
        .events()
        .last()
        .expect("step child has an event")
        .kind
    {
        StepKind::Op {
            object,
            access,
            sig,
            ..
        } => Footprint::Obj {
            key: exec
                .memory
                .name_of(*object)
                .expect("every allocated object is named")
                .clone(),
            access: *access,
            sig: sig.as_ref().and_then(resolve),
        },
        _ => Footprint::Local,
    }
}

/// A deferred subtree, ready to run on a worker.
struct FrontierJob {
    path: Vec<Choice>,
    picks: Vec<Vec<u32>>,
    sleep: Vec<(ProcessId, Footprint)>,
    steps_used: usize,
}

struct Explorer<'a, D: FdValue> {
    cfg: &'a CheckConfig<D>,
    participants: &'a [bool],
    stats: CheckStats,
    violations: Vec<CounterExample>,
    frontier: Option<Vec<FrontierJob>>,
}

impl<D: FdValue> Explorer<'_, D> {
    fn over_budget(&self) -> bool {
        self.stats.nodes >= self.cfg.max_nodes || self.violations.len() >= self.cfg.max_violations
    }

    /// Executes specs on an already-run node; on violation, records a
    /// (shrunk) counterexample and prunes the subtree.
    fn visit(
        &mut self,
        path: &mut Vec<Choice>,
        picks: &[Vec<u32>],
        exec: &Exec<D>,
        sleep: Vec<(ProcessId, Footprint)>,
        steps_used: usize,
    ) {
        self.stats.nodes += 1;
        if let Some((spec, message)) = violation_of(self.cfg, &exec.run) {
            self.record(path, picks, spec, message);
            return;
        }
        if self.over_budget() {
            self.stats.truncated = true;
            return;
        }
        if steps_used >= self.cfg.depth {
            self.stats.depth_leaves += 1;
            return;
        }
        if let Some(frontier) = &mut self.frontier {
            if path.len() >= self.cfg.split_depth {
                frontier.push(FrontierJob {
                    path: path.clone(),
                    picks: picks.to_vec(),
                    sleep,
                    steps_used,
                });
                return;
            }
        }
        self.expand(path, picks, exec, sleep, steps_used);
    }

    /// Generates and explores the children of a node: canonical crash
    /// injections first, then step extensions under the sleep set, with
    /// failure-detector variants as siblings of query steps.
    fn expand(
        &mut self,
        path: &mut Vec<Choice>,
        picks: &[Vec<u32>],
        exec: &Exec<D>,
        mut sleep: Vec<(ProcessId, Footprint)>,
        steps_used: usize,
    ) {
        if faults_in(path) < self.cfg.max_faults {
            for i in 0..self.cfg.n_plus_1 {
                let p = ProcessId(i);
                if crashed_in(path, p) || !crash_allowed(path, p) {
                    continue;
                }
                if self.over_budget() {
                    self.stats.truncated = true;
                    return;
                }
                path.push(Choice::Crash(p));
                let child = execute(self.cfg, path, picks);
                self.stats.crash_nodes += 1;
                self.visit(path, picks, &child, sleep.clone(), steps_used);
                path.pop();
            }
        }

        for i in 0..self.cfg.n_plus_1 {
            let p = ProcessId(i);
            if !self.participants[i] || crashed_in(path, p) || exec.run.finished(p) {
                continue;
            }
            if self.cfg.reduction && sleep.iter().any(|(q, _)| *q == p) {
                self.stats.sleep_pruned += 1;
                continue;
            }
            if self.over_budget() {
                self.stats.truncated = true;
                return;
            }
            path.push(Choice::Step(p));
            let child = execute(self.cfg, path, picks);
            if child.run.total_steps() as usize != steps_used + 1 {
                // The process finished without taking a step: no new state.
                self.stats.no_step_children += 1;
                path.pop();
                continue;
            }
            let fp = footprint(&child);
            let child_sleep: Vec<_> = sleep
                .iter()
                .filter(|(_, f)| !f.conflicts_with(&fp))
                .cloned()
                .collect();
            self.visit(path, picks, &child, child_sleep.clone(), steps_used + 1);

            // Sibling branches for the unexplored detector candidates.
            if matches!(
                child.run.events().last().map(|e| &e.kind),
                Some(StepKind::Query(_))
            ) {
                let rec = *child.queries.last().expect("query event logs a record");
                debug_assert_eq!(rec.pid, p);
                for j in 1..rec.candidates {
                    let mut vpicks = picks.to_vec();
                    vpicks[i].resize(rec.k as usize, 0);
                    vpicks[i].push(j);
                    if self.over_budget() {
                        self.stats.truncated = true;
                        return;
                    }
                    let variant = execute(self.cfg, path, &vpicks);
                    self.stats.fd_variant_nodes += 1;
                    self.visit(path, &vpicks, &variant, child_sleep.clone(), steps_used + 1);
                }
            }
            path.pop();
            if self.cfg.reduction {
                sleep.push((p, fp));
            }
        }
    }

    fn record(&mut self, path: &[Choice], picks: &[Vec<u32>], spec: String, message: String) {
        let raw_token = token_of(self.cfg.n_plus_1, path, picks);
        let (token, shrink_evals, shrink_removed) = if self.cfg.shrink {
            shrink_path(self.cfg, path, picks, &spec)
        } else {
            (raw_token.clone(), 0, 0)
        };
        self.violations.push(CounterExample {
            spec,
            message,
            token,
            raw_token,
            shrink_evals,
            shrink_removed,
        });
    }
}

/// Runs the exploration a [`CheckConfig`] describes and reports every
/// counterexample found. Deterministic: the same configuration yields the
/// same report, including under the parallel frontier (results are merged
/// in job order).
pub fn check<D: FdValue>(cfg: &CheckConfig<D>) -> CheckReport {
    let participants: Vec<bool> = (cfg.algos)().iter().map(Option::is_some).collect();
    assert_eq!(
        participants.len(),
        cfg.n_plus_1,
        "algo factory must cover every process"
    );
    assert!(
        cfg.max_faults < cfg.n_plus_1,
        "at least one process must stay correct"
    );

    let parallel = cfg.split_depth > 0;
    let mut explorer = Explorer {
        cfg,
        participants: &participants,
        stats: CheckStats::default(),
        violations: Vec::new(),
        frontier: parallel.then(Vec::new),
    };
    let root_picks: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_plus_1];
    let root = execute(cfg, &[], &root_picks);
    let mut path = Vec::new();
    explorer.visit(&mut path, &root_picks, &root, Vec::new(), 0);

    let Explorer {
        mut stats,
        mut violations,
        frontier,
        ..
    } = explorer;
    let frontier = frontier.unwrap_or_default();
    let frontier_jobs = frontier.len();
    if !frontier.is_empty() {
        let jobs: Vec<_> = frontier
            .into_iter()
            .map(|job| {
                let participants = &participants;
                move || {
                    let mut sub = Explorer {
                        cfg,
                        participants,
                        stats: CheckStats::default(),
                        violations: Vec::new(),
                        frontier: None,
                    };
                    let exec = execute(cfg, &job.path, &job.picks);
                    let mut path = job.path.clone();
                    sub.expand(&mut path, &job.picks, &exec, job.sleep, job.steps_used);
                    (sub.stats, sub.violations)
                }
            })
            .collect();
        for (s, v) in run_batch(jobs, cfg.workers) {
            stats.absorb(s);
            violations.extend(v);
        }
        if violations.len() > cfg.max_violations {
            violations.truncate(cfg.max_violations);
            stats.truncated = true;
        }
    }
    CheckReport {
        stats,
        violations,
        frontier_jobs,
    }
}
