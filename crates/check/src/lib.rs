//! # upsilon-check
//!
//! Systematic exploration of the simulator's run space: every interleaving
//! (up to partial-order equivalence), every crash scenario (up to
//! crash-commutation symmetry, bounded by `max_faults`) and every scripted
//! failure-detector output (bounded by an [`FdMenu`]) of a configured
//! algorithm, with every explored run checked against the §3.3
//! run-condition validator and a set of trace-closed [`RunSpec`]s.
//!
//! Violations come back as shrunk, replayable `UCHK1:` tokens
//! ([`ReplayToken`]) that
//! [`replay_token`] re-executes bit-identically under either engine.
//!
//! ```
//! use upsilon_check::samples;
//! use upsilon_check::check;
//!
//! // The seeded bug: p1 forgets to announce its proposal, and 1-set
//! // agreement between two processes breaks in some interleaving.
//! let report = check(&samples::snapshot_commit(2, 1, 9, true));
//! assert!(!report.ok());
//! let token = &report.violations[0].token;
//! println!("replay with: {token}");
//! ```
//!
//! See `DESIGN.md` §8 for the conflict relation, the crash-injection
//! lattice and the token format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod menu;
pub mod samples;

pub use explore::{
    check, path_of_token, replay_token, run_token, shrink_violation, token_of, violation_of,
    AlgoFactory, CheckConfig, CheckReport, CheckStats, Choice, CounterExample, Exec, Footprint,
    ReplayOutcome, ShrinkResult,
};
pub use menu::{ConstantMenu, FdMenu, FnMenu, MenuOracle, MutatingMenu, QueryRecord};

pub use upsilon_analysis::{RunConditionsSpec, RunSpec};
pub use upsilon_sim::{ReplayToken, TokenError};
