//! Property-based exploration sweep (the ISSUE's proptest satellite):
//! random small configurations must behave as the paper predicts —
//! Fig. 1/Fig. 2 under a faithful Υ never violate k-set agreement on any
//! explored schedule or crash scenario, while the known-unfaithful pinned
//! adversary history always yields a parseable counterexample token.
//!
//! Explorations are exhaustive per case, so each proptest case is already a
//! universal statement over schedules; the random part sweeps the
//! configuration space (n, depth, fault budget). Cases stay small
//! (n ≤ 3, depth ≤ 6) to keep the whole sweep in CI time.

use proptest::prelude::*;
use upsilon_check::{check, ReplayToken};
use upsilon_scenario::testkit as samples;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Fig. 1's safety does not depend on Υ (§5.2): no schedule, crash
    /// scenario or detector output may break `n`-set agreement.
    #[test]
    fn fig1_never_violates_set_agreement(
        n in 2usize..=3,
        depth in 1usize..=6,
        faults in 0usize..=1,
    ) {
        let report = check(&samples::fig1(n, depth, faults.min(n - 1)));
        prop_assert!(report.ok(), "{:?}", report.violations.first());
        prop_assert!(report.stats.nodes >= 1);
        prop_assert!(!report.stats.truncated);
    }

    /// Same sweep under a temporarily lying Υ: extra detector branches,
    /// same verdict.
    #[test]
    fn fig1_mutating_never_violates_set_agreement(
        n in 2usize..=3,
        depth in 1usize..=6,
    ) {
        let report = check(&samples::fig1_mutating(n, depth, 0, 1));
        prop_assert!(report.ok(), "{:?}", report.violations.first());
    }

    /// Fig. 2 (§6): `f`-set agreement from Υ^f stays safe on every
    /// explored run.
    #[test]
    fn fig2_never_violates_set_agreement(
        n in 2usize..=3,
        depth in 1usize..=6,
        faults in 0usize..=1,
    ) {
        let f = 1; // f < n for every sampled n
        let report = check(&samples::fig2(n, f, depth, faults.min(n - 1)));
        prop_assert!(report.ok(), "{:?}", report.violations.first());
    }

    /// The adversary game's pinned constant history is *not* a faithful Υ:
    /// with any crash budget ≥ 1 the explorer must produce a
    /// counterexample, and its token must survive an encode/parse round
    /// trip with a within-budget crash count.
    #[test]
    fn pinned_history_always_yields_a_counterexample(
        n in 2usize..=3,
        depth in 1usize..=4,
        f in 1usize..=2,
    ) {
        let f = f.min(n - 1);
        let report = check(&samples::pinned_upsilon(n, f, depth));
        prop_assert!(!report.ok(), "pinned U must be caught (n={n} f={f} depth={depth})");
        let v = &report.violations[0];
        prop_assert_eq!(v.spec.as_str(), "upsilon-faithful");
        let round = ReplayToken::parse(&v.token.encode()).expect("token round-trips");
        prop_assert_eq!(&round, &v.token);
        prop_assert!(v.token.crashes.iter().flatten().count() <= f);
        prop_assert!(v.token.schedule.len() <= depth);
    }

    /// The seeded commit bug is found at every depth deep enough to let
    /// both processes finish; the sound variant never is.
    #[test]
    fn commit_bug_found_iff_seeded(depth in 9usize..=11) {
        let buggy = check(&samples::snapshot_commit(2, 1, depth, true));
        prop_assert!(!buggy.ok());
        let sound = check(&samples::snapshot_commit(2, 1, depth, false));
        prop_assert!(sound.ok(), "{:?}", sound.violations.first());
    }
}
