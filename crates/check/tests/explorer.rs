//! Explorer correctness: determinism, naive/reduced agreement, crash
//! canonicalization bounds, counterexample shrinking and dual-engine token
//! replay.

use upsilon_check::{check, replay_token, CheckConfig, ReplayToken};
use upsilon_scenario::testkit as samples;
use upsilon_sim::{EngineKind, FdValue};

fn naive<D: FdValue>(mut cfg: CheckConfig<D>) -> CheckConfig<D> {
    cfg.reduction = false;
    cfg
}

#[test]
fn buggy_commit_protocol_yields_a_replayable_counterexample() {
    let cfg = samples::snapshot_commit(2, 1, 9, true);
    let report = check(&cfg);
    assert!(!report.ok(), "dropped announcement write must be caught");
    let v = &report.violations[0];
    assert_eq!(v.spec, "k-set-agreement");

    // The token replays to the same violation under both engines, with
    // bit-identical traces.
    let inline = replay_token(&cfg, &v.token, EngineKind::Inline);
    let threads = replay_token(&cfg, &v.token, EngineKind::Threads);
    assert_eq!(inline.run.events(), threads.run.events());
    assert_eq!(inline.run.outputs(), threads.run.outputs());
    assert_eq!(inline.run.stop_reason(), threads.run.stop_reason());
    assert_eq!(inline.verdicts, threads.verdicts);
    let kset = inline
        .verdicts
        .iter()
        .find(|(name, _)| name == "k-set-agreement")
        .expect("k-set verdict present");
    assert!(kset.1.is_err(), "replay reproduces the violation");

    // And the token survives its ASCII round trip.
    assert_eq!(ReplayToken::parse(&v.token.encode()).unwrap(), v.token);
}

#[test]
fn sound_commit_protocol_is_clean_in_both_modes() {
    let reduced = check(&samples::snapshot_commit(2, 1, 9, false));
    let full = check(&naive(samples::snapshot_commit(2, 1, 9, false)));
    assert!(reduced.ok(), "{:?}", reduced.violations.first());
    assert!(full.ok(), "{:?}", full.violations.first());
    assert!(
        reduced.stats.nodes < full.stats.nodes,
        "sleep sets must prune something: {} vs {}",
        reduced.stats.nodes,
        full.stats.nodes
    );
    assert!(reduced.stats.sleep_pruned > 0);
}

#[test]
fn reduction_preserves_bug_finding() {
    // The reduced exploration may visit different representatives, but a
    // violation reachable by the naive search must stay reachable.
    let reduced = check(&samples::snapshot_commit(2, 1, 9, true));
    let full = check(&naive(samples::snapshot_commit(2, 1, 9, true)));
    assert!(!reduced.ok());
    assert!(!full.ok());
    assert_eq!(reduced.violations[0].spec, full.violations[0].spec);
}

#[test]
fn exploration_is_deterministic() {
    let a = check(&samples::fig1(3, 6, 1));
    let b = check(&samples::fig1(3, 6, 1));
    assert_eq!(a, b);
}

#[test]
fn parallel_frontier_matches_serial_exploration() {
    let serial = check(&samples::fig1(3, 7, 0));
    let mut pcfg = samples::fig1(3, 7, 0);
    pcfg = pcfg.parallel(3, 4);
    let parallel = check(&pcfg);
    assert_eq!(serial.stats, parallel.stats);
    assert_eq!(serial.violations, parallel.violations);
    assert!(
        parallel.frontier_jobs > 0,
        "the fan-out must actually happen"
    );
}

#[test]
fn pinned_history_counterexample_is_the_paper_pivot() {
    let cfg = samples::pinned_upsilon(3, 1, 3);
    let report = check(&cfg);
    assert!(!report.ok(), "crashing p3 must expose the pinned history");
    let v = &report.violations[0];
    assert_eq!(v.spec, "upsilon-faithful");
    // Minimal counterexample: crash p3 (so correct(F) = U), one query step.
    assert_eq!(v.token.schedule.len(), 1, "{}", v.token);
    assert_eq!(
        v.token.crashes.iter().flatten().count(),
        1,
        "exactly one injected crash: {}",
        v.token
    );
    assert!(
        v.token.crashes[2].is_some(),
        "the crash is p3's: {}",
        v.token
    );

    // Replaying under either engine reproduces the same verdict.
    for engine in [EngineKind::Inline, EngineKind::Threads] {
        let replayed = replay_token(&cfg, &v.token, engine);
        let verdict = replayed
            .verdicts
            .iter()
            .find(|(name, _)| name == "upsilon-faithful")
            .unwrap();
        assert!(verdict.1.is_err(), "{engine:?}");
    }
}

#[test]
fn crash_injection_respects_the_fault_budget() {
    let report = check(&samples::pinned_upsilon(3, 2, 2).max_violations(64));
    for v in &report.violations {
        assert!(
            v.token.crashes.iter().flatten().count() <= 2,
            "fault budget exceeded: {}",
            v.token
        );
        assert!(
            v.token.crashes.iter().any(Option::is_none),
            "someone stays correct: {}",
            v.token
        );
    }
    assert!(report.stats.crash_nodes > 0);
}

#[test]
fn shrinking_reports_its_work_and_never_grows() {
    let report = check(&samples::snapshot_commit(2, 1, 10, true));
    let v = &report.violations[0];
    assert!(v.shrink_evals > 0, "shrinking actually ran");
    assert!(v.token.schedule.len() <= v.raw_token.schedule.len());
}

#[test]
fn fig1_safety_is_upsilon_independent_under_mutation() {
    // Lying detector outputs explore extra branches but can never break
    // Fig. 1's safety (§5.2: safety does not depend on Υ).
    let report = check(&samples::fig1_mutating(3, 9, 0, 1));
    assert!(report.ok(), "{:?}", report.violations.first());
    assert!(report.stats.fd_variant_nodes > 0, "mutation must branch");
}

#[test]
fn fig2_exploration_is_clean() {
    let report = check(&samples::fig2(3, 1, 6, 1));
    assert!(report.ok(), "{:?}", report.violations.first());
}

#[test]
fn naive_and_reduced_disagree_only_in_node_count() {
    let reduced = check(&samples::fig1(3, 6, 0));
    let full = check(&naive(samples::fig1(3, 6, 0)));
    assert!(reduced.ok() && full.ok());
    assert_eq!(full.stats.sleep_pruned, 0);
    assert!(reduced.stats.nodes < full.stats.nodes);
}
