//! The seeded-mutant sample configurations behave as designed: faithful
//! variants explore clean, mutated variants yield k-set-agreement
//! counterexamples. The fuzz crate's mutation-detection suite then finds
//! the same bugs by random search; this test pins down that they are
//! findable at all (and that the faithful baselines are not false alarms).

use upsilon_check::{check, replay_token};
use upsilon_scenario::testkit as samples;
use upsilon_sim::{EngineKind, ProcessId};

#[test]
fn converge_offby1_slack_zero_is_clean() {
    let report = check(&samples::converge_offby1(3, 1, 10, 0));
    assert!(report.ok(), "faithful 1-converge must satisfy 1-agreement");
}

#[test]
fn converge_offby1_slack_one_violates() {
    let cfg = samples::converge_offby1(3, 1, 12, 1);
    let report = check(&cfg);
    assert!(!report.ok(), "clean_slack = 1 must break 1-agreement");
    let v = &report.violations[0];
    assert_eq!(v.spec, "k-set-agreement");
    for engine in [EngineKind::Inline, EngineKind::Threads] {
        let out = replay_token(&cfg, &v.token, engine);
        assert!(
            out.verdicts.iter().any(|(n, r)| n == &v.spec && r.is_err()),
            "shrunk token must still violate under {engine:?}"
        );
    }
}

#[test]
fn fig2_faithful_opener_is_clean() {
    let report = check(&samples::fig2_dropped_write(2, 1, 9, 0, None));
    assert!(report.ok(), "faithful Fig. 2 opener must satisfy agreement");
}

#[test]
fn fig2_dropped_write_violates() {
    let cfg = samples::fig2_dropped_write(2, 1, 16, 0, Some(ProcessId(1)));
    let report = check(&cfg);
    assert!(
        !report.ok(),
        "dropping p1's opener announce must break f-set agreement"
    );
    let v = &report.violations[0];
    assert_eq!(v.spec, "k-set-agreement");
    for engine in [EngineKind::Inline, EngineKind::Threads] {
        let out = replay_token(&cfg, &v.token, engine);
        assert!(
            out.verdicts.iter().any(|(n, r)| n == &v.spec && r.is_err()),
            "shrunk token must still violate under {engine:?}"
        );
    }
}
