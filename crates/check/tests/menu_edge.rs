//! Edge cases of the failure-detector menu machinery: the non-empty-menu
//! contract, the no-branching guarantee of singleton menus, and a
//! [`MutatingMenu`] whose mutation budget runs out in the middle of a run.

use std::sync::Arc;
use upsilon_check::{check, run_token, FdMenu, FnMenu, MenuOracle, MutatingMenu};
use upsilon_scenario::testkit as samples;
use upsilon_sim::{EngineKind, ProcessId, ReplayToken, Time};

/// `FdMenu::candidates` must be non-empty; an empty menu is a contract
/// violation the oracle turns into an immediate panic rather than a
/// silently undefined detector output.
#[test]
#[should_panic(expected = "no candidates")]
fn empty_menu_panics_on_first_query() {
    let menu: Arc<dyn FdMenu<u8>> = Arc::new(FnMenu(|_p, _k| Vec::new()));
    let mut oracle = MenuOracle::new(menu, 1, Vec::new());
    use upsilon_sim::Oracle;
    oracle.output(ProcessId(0), Time(0));
}

/// A singleton menu pins the detector: the explorer must never open a
/// detector-output sibling branch, however deep the search goes.
#[test]
fn singleton_menu_never_branches_on_fd_output() {
    // n + 1 = 3: Fig. 1's opening (n+1)-process n-converge can fail to
    // commit, so processes do reach their Υ queries within depth 8 (at
    // n + 1 = 2 the opener always commits and the detector is never asked).
    let report = check(&samples::fig1(3, 8, 0));
    assert!(report.ok());
    assert_eq!(
        report.stats.fd_variant_nodes, 0,
        "ConstantMenu must yield zero fd-variant branches"
    );
    // Sanity contrast: the same search with one mutant in the menu does
    // branch (otherwise the zero above would be vacuous).
    let mutating = check(&samples::fig1_mutating(3, 8, 0, 1));
    assert!(mutating.ok());
    assert!(
        mutating.stats.fd_variant_nodes > 0,
        "a 2-candidate menu must open fd-variant branches"
    );
}

/// A [`MutatingMenu`] with a small budget exhausts mid-run: queries past
/// the budget offer exactly one candidate (the base) and clamp any scripted
/// mutant pick back to it, so the history stabilizes inside the run.
#[test]
fn mutating_menu_exhausts_mid_run() {
    let cfg = samples::fig1_mutating(3, 36, 0, 1);
    // A deep fair schedule in which gladiators re-query Υ past the
    // 1-query mutation budget; every scripted pick asks for the mutant
    // (candidate 1).
    let token = ReplayToken {
        n_plus_1: 3,
        crashes: vec![None, None, None],
        fd_choices: vec![vec![1; 8], vec![1; 8], vec![1; 8]],
        schedule: std::iter::repeat_n([ProcessId(0), ProcessId(1), ProcessId(2)], 12)
            .flatten()
            .collect(),
    };
    let exec = run_token(&cfg, &token, EngineKind::Inline);
    let exhausted: Vec<_> = exec.queries.iter().filter(|q| q.k >= 1).collect();
    assert!(
        !exhausted.is_empty(),
        "the run must query past the mutation budget"
    );
    for q in &exhausted {
        assert_eq!(q.candidates, 1, "{:?}: budget over, base only", q);
        assert_eq!(q.pick, 0, "{:?}: scripted mutant pick must clamp", q);
    }
    for q in exec.queries.iter().filter(|q| q.k < 1) {
        assert_eq!(q.candidates, 2, "{:?}: within budget, base + mutant", q);
        assert_eq!(q.pick, 1, "{:?}: scripted mutant pick is served", q);
    }
}

/// Out-of-range scripted picks clamp to the last candidate even when the
/// menu size varies per query (regression guard for the clamp in
/// `MenuOracle::output`).
#[test]
fn oversized_picks_clamp_per_query() {
    use upsilon_sim::Oracle;
    let menu: Arc<dyn FdMenu<u8>> = Arc::new(MutatingMenu {
        base: 0u8,
        mutants: vec![7, 9],
        budget: 1,
    });
    let mut oracle = MenuOracle::new(menu, 1, vec![vec![99, 99]]);
    let log = oracle.log();
    assert_eq!(oracle.output(ProcessId(0), Time(0)), 9, "clamped to last");
    assert_eq!(oracle.output(ProcessId(0), Time(1)), 0, "budget over");
    let log = log.lock().unwrap();
    assert_eq!((log[0].candidates, log[0].pick), (3, 2));
    assert_eq!((log[1].candidates, log[1].pick), (1, 0));
}

/// Singleton menus also keep `MenuOracle` deterministic across engines —
/// the same token yields the same query log under both.
#[test]
fn query_log_is_engine_independent() {
    let cfg = samples::fig1(2, 8, 0);
    let token = ReplayToken {
        n_plus_1: 2,
        crashes: vec![None, None],
        fd_choices: vec![Vec::new(), Vec::new()],
        schedule: vec![
            ProcessId(0),
            ProcessId(0),
            ProcessId(1),
            ProcessId(0),
            ProcessId(1),
            ProcessId(1),
        ],
    };
    let a = run_token(&cfg, &token, EngineKind::Inline);
    let b = run_token(&cfg, &token, EngineKind::Threads);
    assert_eq!(a.queries, b.queries);
}
