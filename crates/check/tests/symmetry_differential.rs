//! Differential soundness suite for the process-symmetry reduction: over
//! the whole sample portfolio, exploring *up to process renaming* must
//! change how much work the search does — never what it answers.
//!
//! Locked invariants:
//!
//! * **verdict and token preservation** — symmetry on vs off produce
//!   `assert_eq!`-identical violation lists (including the shrunk `UCHK1:`
//!   replay tokens) and the same clean/dirty verdict, serial and at
//!   workers 1/2/8;
//! * **trivial orbits are the identity** — samples whose constructors the
//!   static audit could not certify (`Orbit::Trivial`) produce reports
//!   that are byte-identical with symmetry on and off, counters included;
//! * **determinism** — with symmetry on, the report is `assert_eq!`-equal
//!   at every worker count;
//! * **non-vacuity** — on certified-symmetric samples the reduction
//!   actually fires: `pinned_upsilon` collapses same-class crash
//!   injections, and `stable_report` (the fully symmetric write-race
//!   benchmark) explores at most half the states of the unreduced search.

use upsilon_check::{check, CheckConfig, CheckReport};
use upsilon_scenario::testkit as samples;
use upsilon_sim::symmetry::Orbit;
use upsilon_sim::FdValue;

fn run_with<D: FdValue>(
    cfg: CheckConfig<D>,
    vary: impl FnOnce(CheckConfig<D>) -> CheckConfig<D>,
) -> CheckReport {
    check(&vary(cfg))
}

/// The full portfolio — clean and buggy, crash-free and crash-injecting,
/// trivial and certified-symmetric orbits.
macro_rules! for_each_sample {
    ($name:ident, $cfg:ident, $body:block) => {{
        let $name = "fig1 n2 d6 clean";
        let $cfg = samples::fig1(2, 6, 0);
        $body
    }
    {
        let $name = "fig1 n3 d4 crashes";
        let $cfg = samples::fig1(3, 4, 1);
        $body
    }
    {
        let $name = "fig1-mutating n2 d6 fd-variants";
        let $cfg = samples::fig1_mutating(2, 6, 1, 1);
        $body
    }
    {
        let $name = "fig2 n2 d6";
        let $cfg = samples::fig2(2, 1, 6, 1);
        $body
    }
    {
        let $name = "pinned n3 d4 f1";
        let $cfg = samples::pinned_upsilon(3, 1, 4);
        $body
    }
    {
        let $name = "commit-buggy n2 d8";
        let $cfg = samples::snapshot_commit(2, 1, 8, true);
        $body
    }
    {
        let $name = "commit-sound n2 d8";
        let $cfg = samples::snapshot_commit(2, 1, 8, false);
        $body
    }
    {
        let $name = "converge-offby1 n2 d8";
        let $cfg = samples::converge_offby1(2, 1, 8, 1);
        $body
    }
    {
        let $name = "stable-report n3 d8";
        let $cfg = samples::stable_report(3, 2, 8);
        $body
    }};
}

#[test]
fn symmetry_preserves_verdicts_and_tokens_serial() {
    for_each_sample!(name, cfg, {
        let off = run_with(cfg.clone(), |c| c.symmetry(false));
        let on = run_with(cfg, |c| c.symmetry(true));
        assert_eq!(
            off.violations, on.violations,
            "{name}: symmetry changed a verdict or a shrunk token"
        );
        assert_eq!(off.ok(), on.ok(), "{name}: symmetry flipped the verdict");
        assert!(
            on.stats.nodes <= off.stats.nodes,
            "{name}: symmetry executed more nodes ({} > {})",
            on.stats.nodes,
            off.stats.nodes
        );
    });
}

#[test]
fn symmetry_preserves_verdicts_at_every_worker_count() {
    for workers in [1usize, 2, 8] {
        for_each_sample!(name, cfg, {
            let off = run_with(cfg.clone(), |c| c.symmetry(false).parallel(2, workers));
            let on = run_with(cfg, |c| c.symmetry(true).parallel(2, workers));
            assert_eq!(
                off.violations, on.violations,
                "{name}: symmetry changed a verdict or token at {workers} workers"
            );
            assert_eq!(
                off.ok(),
                on.ok(),
                "{name}: symmetry flipped the verdict at {workers} workers"
            );
        });
    }
}

#[test]
fn symmetric_reports_are_identical_across_worker_counts() {
    for_each_sample!(name, cfg, {
        let at = |workers: usize| run_with(cfg.clone(), |c| c.symmetry(true).parallel(2, workers));
        let one = at(1);
        assert_eq!(one, at(2), "{name}: workers 1 vs 2 under symmetry");
        assert_eq!(one, at(8), "{name}: workers 1 vs 8 under symmetry");
    });
}

#[test]
fn trivial_orbits_make_symmetry_the_identity() {
    for_each_sample!(name, cfg, {
        if cfg.orbit.is_trivial() {
            let off = run_with(cfg.clone(), |c| c.symmetry(false));
            let on = run_with(cfg, |c| c.symmetry(true));
            // One caveat: duplicate FD-candidate collapse is value-based
            // and orbit-independent, so it may fire even on trivial
            // orbits. None of the portfolio menus repeat a candidate, so
            // here the reports must be byte-identical.
            assert_eq!(on, off, "{name}: trivial orbit must be a no-op");
        }
    });
}

#[test]
fn certified_orbits_are_wired_into_the_portfolio() {
    assert_eq!(samples::stable_report(3, 2, 8).orbit, Orbit::Full);
    assert_eq!(samples::pinned_upsilon(3, 1, 4).orbit, Orbit::PinnedLast);
    assert!(samples::snapshot_commit(2, 1, 8, true).orbit.is_trivial());
    assert!(samples::fig1(2, 6, 0).orbit.is_trivial());
}

#[test]
fn crash_collapse_fires_on_pinned_upsilon() {
    let cfg = samples::pinned_upsilon(3, 1, 4);
    let off = run_with(cfg.clone(), |c| c.symmetry(false));
    let on = run_with(cfg, |c| c.symmetry(true));
    assert!(
        on.stats.symmetry_pruned > 0,
        "same-class crash candidates must collapse: {:?}",
        on.stats
    );
    assert!(
        on.stats.nodes < off.stats.nodes,
        "collapsing crashes must shrink the search ({} !< {})",
        on.stats.nodes,
        off.stats.nodes
    );
    assert_eq!(off.violations, on.violations);
}

/// The acceptance gate's ≥2× claim, locked as a test on the fully
/// symmetric sample: with the orbit-canonical dedup key, the reduced
/// search explores at most half the states of the unreduced one.
#[test]
fn stable_report_reduces_states_at_least_2x() {
    let cfg = samples::stable_report(3, 2, 8);
    let off = run_with(cfg.clone(), |c| c.symmetry(false));
    let on = run_with(cfg, |c| c.symmetry(true));
    assert_eq!(off.violations, on.violations);
    assert!(off.ok() && on.ok(), "stable-report explores clean");
    assert!(
        on.stats.nodes * 2 <= off.stats.nodes,
        "expected >= 2x state reduction, got {} vs {}",
        off.stats.nodes,
        on.stats.nodes
    );
}
