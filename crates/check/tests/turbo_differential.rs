//! Differential equivalence suite for the turbo explorer: every execution
//! strategy the checker offers must produce the *same answers*.
//!
//! Three axes are swept against each other over a portfolio of clean and
//! buggy sample configurations:
//!
//! * **turbo vs stateless** — snapshot-resume execution against
//!   replay-from-root; byte-identical `CheckReport`s (stats, verdicts, and
//!   shrunk `UCHK1` tokens alike), since turbo changes only *how* nodes
//!   are executed, never which nodes exist;
//! * **dedup on vs off** — fingerprint pruning may only *remove* explored
//!   nodes (`nodes` + `dedup_pruned` conserved against the un-deduped
//!   count on crash-free configs), and must preserve every verdict and
//!   every minimized counterexample token;
//! * **worker count 1 vs 2 vs 8** — the work-stealing frontier merges by
//!   coordinate, so reports are `assert_eq!`-identical whatever the
//!   parallelism, with and without dedup.

use upsilon_check::{check, CheckConfig, CheckReport};
use upsilon_scenario::testkit as samples;

use upsilon_sim::FdValue;

/// Builds the report for one portfolio entry under a config transform.
fn run_with<D: FdValue>(
    cfg: CheckConfig<D>,
    vary: impl FnOnce(CheckConfig<D>) -> CheckConfig<D>,
) -> CheckReport {
    check(&vary(cfg))
}

macro_rules! for_each_sample {
    ($name:ident, $cfg:ident, $body:block) => {{
        let $name = "fig1 n2 d6 clean";
        let $cfg = samples::fig1(2, 6, 0);
        $body
    }
    {
        let $name = "fig1 n3 d4 crashes";
        let $cfg = samples::fig1(3, 4, 1);
        $body
    }
    {
        let $name = "fig2 n2 d6";
        let $cfg = samples::fig2(2, 1, 6, 1);
        $body
    }
    {
        let $name = "commit-buggy n2 d8";
        let $cfg = samples::snapshot_commit(2, 1, 8, true);
        $body
    }
    {
        let $name = "commit-sound n2 d8";
        let $cfg = samples::snapshot_commit(2, 1, 8, false);
        $body
    }
    {
        let $name = "converge-offby1 n2 d8";
        let $cfg = samples::converge_offby1(2, 1, 8, 1);
        $body
    }
    {
        let $name = "stable-report n2 d6";
        let $cfg = samples::stable_report(2, 2, 6);
        $body
    }};
}

#[test]
fn turbo_and_stateless_reports_are_identical() {
    for_each_sample!(name, cfg, {
        let turbo = run_with(cfg.clone(), |c| c.turbo(true).dedup(false));
        let stateless = run_with(cfg, |c| c.turbo(false).dedup(false));
        assert_eq!(turbo, stateless, "{name}: turbo vs stateless diverged");
    });
}

#[test]
fn dedup_preserves_verdicts_and_tokens() {
    for_each_sample!(name, cfg, {
        let base = run_with(cfg.clone(), |c| c.turbo(true).dedup(false));
        let dedup = run_with(cfg, |c| c.turbo(true).dedup(true));
        assert_eq!(
            base.violations, dedup.violations,
            "{name}: dedup changed a verdict or a shrunk token"
        );
        assert_eq!(base.ok(), dedup.ok(), "{name}: dedup flipped the verdict");
        assert!(
            dedup.stats.nodes <= base.stats.nodes,
            "{name}: dedup executed more nodes ({} > {})",
            dedup.stats.nodes,
            base.stats.nodes
        );
    });
}

#[test]
fn dedup_actually_prunes_somewhere() {
    // The guard that dedup is not vacuous: on at least one portfolio
    // config, fingerprint pruning must fire and shrink the node count.
    let mut pruned_total = 0;
    let mut saved_total = 0i64;
    for_each_sample!(_name, cfg, {
        let base = run_with(cfg.clone(), |c| c.turbo(true).dedup(false));
        let dedup = run_with(cfg, |c| c.turbo(true).dedup(true));
        pruned_total += dedup.stats.dedup_pruned;
        saved_total += base.stats.nodes as i64 - dedup.stats.nodes as i64;
    });
    assert!(pruned_total > 0, "dedup never pruned a single node");
    assert!(saved_total > 0, "dedup never saved an executed node");
}

#[test]
fn worker_sweep_reports_are_assert_eq_identical() {
    for dedup in [false, true] {
        for_each_sample!(name, cfg, {
            let at =
                |workers: usize| run_with(cfg.clone(), |c| c.dedup(dedup).parallel(2, workers));
            let one = at(1);
            assert_eq!(one, at(2), "{name}: workers 1 vs 2 (dedup={dedup})");
            assert_eq!(one, at(8), "{name}: workers 1 vs 8 (dedup={dedup})");
        });
    }
}

#[test]
fn split_exploration_matches_serial() {
    for_each_sample!(name, cfg, {
        // Counters can match byte for byte only without dedup: the serial
        // search keeps one global fingerprint table while every frontier
        // job starts its own, so pruning opportunities differ (soundly) in
        // the split run.
        let serial = run_with(cfg.clone(), |c| c.dedup(false));
        let split = run_with(cfg.clone(), |c| c.dedup(false).parallel(2, 8));
        assert_eq!(
            serial.stats, split.stats,
            "{name}: split changed the search counters"
        );
        assert_eq!(
            serial.violations, split.violations,
            "{name}: split changed a verdict or token"
        );
        // Under the shipping defaults (dedup on) the *answers* still agree.
        let serial = run_with(cfg.clone(), |c| c);
        let split = run_with(cfg, |c| c.parallel(2, 8));
        assert_eq!(
            serial.violations, split.violations,
            "{name}: split with dedup changed a verdict or token"
        );
        assert_eq!(
            serial.ok(),
            split.ok(),
            "{name}: split with dedup flipped the verdict"
        );
    });
}

#[test]
fn portfolio_reports_are_reproducible() {
    // The harness itself is deterministic: two fresh evaluations of every
    // entry agree (this is what makes the suite's other comparisons
    // meaningful rather than flaky).
    for_each_sample!(name, cfg, {
        let a = run_with(cfg.clone(), |c| c);
        let b = run_with(cfg, |c| c);
        assert_eq!(a, b, "{name}: non-deterministic report");
    });
}
