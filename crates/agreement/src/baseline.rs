//! The Ω_n baseline for set agreement (Corollary 3's context).
//!
//! Before this paper, Ω_n was conjectured to be the weakest failure detector
//! for n-resilient n-set-agreement \[19\]. The paper's §4 observation — "the
//! complement of Ω_n in Π is a legal output for Υ" — means the Fig. 1
//! protocol doubles as an Ω_n-based set-agreement algorithm: complement the
//! Ω_n output and run Fig. 1 unchanged. This module packages that pipeline
//! as the baseline the E9 experiment compares against, which is also a live
//! demonstration of the reduction Ω_n → Υ (half of Theorem 1; the
//! irreducibility half is the adversary game in `upsilon-extract`).

use crate::fig1::{self, Fig1Config};
use crate::proposals;
use upsilon_sim::{AlgoFn, Crashed, Ctx, ProcessId, ProcessSet};

/// Runs Fig. 1 on top of an Ω_k oracle by complementing each query inside
/// the algorithm (value-level reduction, no extra steps).
///
/// The caller supplies an Ω_k oracle as the run's oracle; this wrapper is
/// the algorithm side of the reduction.
///
/// # Errors
///
/// Returns [`Crashed`] if the calling process crashes mid-protocol.
pub async fn propose_with_omega_k(
    ctx: &Ctx<ProcessSet>,
    cfg: Fig1Config,
    v: u64,
) -> Result<u64, Crashed> {
    // The reduction is applied by the oracle wrapper
    // (`upsilon_fd::upsilon_f_from_omega_k`); algorithm-side the protocol is
    // literally Fig. 1.
    fig1::propose(ctx, cfg, v).await
}

/// Builds the baseline algorithm closures. Identical to Fig. 1's; the
/// difference lies in the oracle (an Ω_k history complemented into Υ).
pub fn algorithms(cfg: Fig1Config, props: &[Option<u64>]) -> Vec<(ProcessId, AlgoFn<ProcessSet>)> {
    proposals::to_algorithms(props, move |v| fig1::algorithm(cfg, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_k_set_agreement;
    use upsilon_fd::{upsilon_f_from_omega_k, OmegaKChoice, OmegaKOracle};
    use upsilon_sim::{FailurePattern, SeededRandom, SimBuilder, Time};

    #[test]
    fn fig1_on_complemented_omega_n_solves_set_agreement() {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(3), Time(30))
            .build();
        let props = [Some(1), Some(2), Some(3), Some(4)];
        for choice in [OmegaKChoice::default(), OmegaKChoice::MostlyCorrect] {
            let omega_n = OmegaKOracle::new(&pattern, 3, choice, Time(80), 5);
            let oracle = upsilon_f_from_omega_k(4, omega_n);
            let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(5))
                .max_steps(400_000);
            for (pid, algo) in algorithms(Fig1Config::default(), &props) {
                builder = builder.spawn(pid, algo);
            }
            let run = builder.run().run;
            check_k_set_agreement(&run, 3, &props).unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }
}
