//! Ω-based consensus with registers (Chandra–Hadzilacos–Toueg \[3\], in the
//! structured commit–adopt derivation style of Yang–Neiger–Gafni \[21\]).
//!
//! Used by the repository wherever the paper invokes "consensus is solvable
//! with Ω": the two-process Υ ≡ Ω equivalence (§4), the `E_1` pipeline
//! Υ¹ → Ω → consensus (§5.3), and as the agreement layer of the Corollary 4
//! boosting algorithm.
//!
//! Round `r`: query Ω; the process that considers itself leader writes its
//! value to a proposal register `prop[r]`; everyone else waits for the
//! proposal (escaping if the leader output changes, or a decision appears).
//! All processes then run commit–adopt on the value they hold; a commit is
//! written to `D` and decided. Once Ω stabilizes on a correct leader `ℓ`,
//! any round entered afterwards has `prop[r]` written only by `ℓ`, so all
//! commit–adopt inputs are equal and Convergence commits. Safety never
//! depends on Ω: decisions flow only through commit–adopt commits, and a
//! commit in round `r` forces every round-`r` participant to pick the same
//! value.

use crate::proposals;
use upsilon_converge::ConvergeInstance;
use upsilon_mem::{Register, SnapshotFlavor};
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, FdValue, Key, ProcessId};

/// Configuration of the Ω-based consensus protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmegaConsensusConfig {
    /// Which snapshot implementation backs the commit–adopt instances.
    pub flavor: SnapshotFlavor,
}

/// Where the consensus protocol obtains its current leader estimate.
///
/// The canonical source is a direct Ω query ([`OmegaQuery`]); reduction
/// pipelines substitute an *emulated* Ω — e.g. the Υ¹ → Ω extraction of
/// §5.3 — without touching the protocol (the `upsilon-core` crate wires
/// that composition).
#[allow(async_fn_in_trait)] // algorithms are single-threaded state machines; futures need not be Send
pub trait LeaderSource<D: FdValue> {
    /// The process currently trusted as leader. May take steps.
    ///
    /// # Errors
    ///
    /// Returns [`Crashed`] if the calling process crashed.
    async fn current_leader(&mut self, ctx: &Ctx<D>) -> Result<ProcessId, Crashed>;
}

/// The canonical leader source: query the Ω module (one step).
#[derive(Clone, Copy, Debug, Default)]
pub struct OmegaQuery;

impl LeaderSource<ProcessId> for OmegaQuery {
    async fn current_leader(&mut self, ctx: &Ctx<ProcessId>) -> Result<ProcessId, Crashed> {
        ctx.query_fd().await
    }
}

/// Runs leader-based consensus for one process proposing `v`, drawing
/// leader estimates from `source`; returns the decision.
///
/// # Errors
///
/// Returns [`Crashed`] if the calling process crashes mid-protocol.
pub async fn propose_with<D: FdValue>(
    ctx: &Ctx<D>,
    cfg: OmegaConsensusConfig,
    v: u64,
    source: &mut impl LeaderSource<D>,
) -> Result<u64, Crashed> {
    let n_plus_1 = ctx.n_plus_1();
    let me = ctx.pid();
    let decision = Register::<Option<u64>>::new(Key::new("D"), None);
    let mut v = v;
    let mut r: u64 = 1;
    // #[conform(bound = "R")]
    loop {
        if let Some(d) = decision.read(ctx).await? {
            return Ok(d);
        }
        let prop = Register::<Option<u64>>::new(Key::new("prop").at(r), None);
        let leader = source.current_leader(ctx).await?;
        if leader == me {
            prop.write(ctx, Some(v)).await?;
        }
        // Wait for the leader's proposal; escape on leader change or
        // decision. A stable correct leader passes through every round (or
        // decides), so this wait is non-blocking after stabilization.
        // #[conform(bound = "W")]
        loop {
            if let Some(w) = prop.read(ctx).await? {
                v = w;
                break;
            }
            if let Some(d) = decision.read(ctx).await? {
                return Ok(d);
            }
            if source.current_leader(ctx).await? != leader {
                break;
            }
        }
        let ca = ConvergeInstance::new(Key::new("ca").at(r), n_plus_1, cfg.flavor);
        let (picked, committed) = ca.converge(ctx, 1, v).await?;
        v = picked;
        if committed {
            decision.write(ctx, Some(v)).await?;
            return Ok(v);
        }
        r += 1;
    }
}

/// Runs Ω-based consensus for one process proposing `v`; returns the
/// decision. The failure-detector range must be Ω's (`ProcessId`).
///
/// # Errors
///
/// Returns [`Crashed`] if the calling process crashes mid-protocol.
pub async fn propose(
    ctx: &Ctx<ProcessId>,
    cfg: OmegaConsensusConfig,
    v: u64,
) -> Result<u64, Crashed> {
    propose_with(ctx, cfg, v, &mut OmegaQuery).await
}

/// Builds the algorithm closure for one process.
pub fn algorithm(cfg: OmegaConsensusConfig, v: u64) -> AlgoFn<ProcessId> {
    algo(move |ctx| async move {
        let d = propose(&ctx, cfg, v).await?;
        ctx.decide(d).await?;
        Ok(())
    })
}

/// Builds algorithms for all participating processes.
pub fn algorithms(
    cfg: OmegaConsensusConfig,
    props: &[Option<u64>],
) -> Vec<(ProcessId, AlgoFn<ProcessId>)> {
    proposals::to_algorithms(props, move |v| algorithm(cfg, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_consensus;
    use upsilon_fd::{LeaderChoice, OmegaOracle};
    use upsilon_sim::{FailurePattern, Run, SeededRandom, SimBuilder, Time};

    fn run_consensus(
        pattern: &FailurePattern,
        props: &[Option<u64>],
        choice: LeaderChoice,
        stab: Time,
        seed: u64,
    ) -> Run<ProcessId> {
        let oracle = OmegaOracle::new(pattern, choice, stab, seed);
        let mut builder = SimBuilder::<ProcessId>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(400_000);
        for (pid, algo) in algorithms(OmegaConsensusConfig::default(), props) {
            builder = builder.spawn(pid, algo);
        }
        builder.run().run
    }

    #[test]
    fn failure_free_consensus() {
        let pattern = FailurePattern::failure_free(3);
        let props = [Some(10), Some(20), Some(30)];
        for seed in 0..5u64 {
            let run = run_consensus(&pattern, &props, LeaderChoice::MinCorrect, Time(40), seed);
            check_consensus(&run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn consensus_with_crashes_and_late_stabilization() {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(0), Time(35))
            .crash(ProcessId(2), Time(80))
            .build();
        let props = [Some(1), Some(2), Some(3), Some(4)];
        for choice in [LeaderChoice::MinCorrect, LeaderChoice::MaxCorrect] {
            let run = run_consensus(&pattern, &props, choice, Time(400), 7);
            check_consensus(&run, &props).unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn leader_crash_before_stabilization_is_survivable() {
        // The stable leader is chosen among correct processes, but before
        // stabilization noisy leaders (including soon-to-crash ones) appear.
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(2), Time(15))
            .build();
        let props = [Some(5), Some(6), Some(7)];
        let run = run_consensus(&pattern, &props, LeaderChoice::RandomCorrect, Time(200), 11);
        check_consensus(&run, &props).expect("crashed noisy leader");
    }

    #[test]
    fn two_processes_one_crash() {
        let pattern = FailurePattern::builder(2)
            .crash(ProcessId(1), Time(12))
            .build();
        let props = [Some(1), Some(2)];
        let run = run_consensus(&pattern, &props, LeaderChoice::MinCorrect, Time(50), 13);
        check_consensus(&run, &props).expect("two-process consensus");
    }
}
