//! # upsilon-agreement
//!
//! The agreement protocols of *"On the weakest failure detector ever"*:
//!
//! * [`fig1`] — Υ-based n-set-agreement with registers (Fig. 1, Theorem 2);
//! * [`fig2`] — Υ^f-based f-resilient f-set-agreement with atomic snapshots
//!   (Fig. 2, Theorem 6);
//! * [`consensus`] — Ω-based consensus (the §4 / §5.3 companion);
//! * [`boost`] — (n+1)-process consensus from n-process consensus objects
//!   and Ω_n (Corollary 4's comparison point);
//! * [`baseline`] — the Ω_n-based set-agreement baseline via the complement
//!   reduction (Corollary 3's context);
//! * [`spec`] — the k-set-agreement problem specification, checked on runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod boost;
pub mod consensus;
pub mod fig1;
pub mod fig2;
pub mod proposals;
pub mod spec;

pub use consensus::{LeaderSource, OmegaConsensusConfig, OmegaQuery};
pub use fig1::Fig1Config;
pub use fig2::Fig2Config;
pub use proposals::{distinct_proposals, to_algorithms};
pub use spec::{
    check_consensus, check_k_set_agreement, check_k_set_agreement_safety, KSetAgreementSpec,
    TaskViolation,
};
