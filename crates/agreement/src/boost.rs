//! Corollary 4's comparison point: `(n+1)`-process consensus from
//! `n`-process consensus objects, registers and Ω_n (Neiger \[18\],
//! Yang–Neiger–Gafni \[21\]; Ω_n is also *necessary* for this boosting by
//! Guerraoui–Kouznetsov \[13\]).
//!
//! Round `r`: query Ω_n to get a set `L` of `n` processes. Members of `L`
//! agree among themselves through an `n`-process consensus object dedicated
//! to `(r, L)` — legal, because at most the `n` members of `L` ever access
//! it — and publish the agreed value on a board register. Non-members adopt
//! the board value (escaping on detector change or decision). Everyone then
//! runs commit–adopt; commits are decided through `D`.
//!
//! Once Ω_n stabilizes on a set `L*` containing a correct process, that
//! member drives every later round: the `(r, L*)` object yields one value,
//! the board carries it to everyone, and commit–adopt converges. Together
//! with Theorem 1 (Υ cannot emulate Ω_n) and Theorem 2 (Υ suffices for
//! set-agreement with registers), this realizes Corollary 4: set-agreement
//! with registers is strictly easier than boosted consensus.

use crate::proposals;
use upsilon_converge::ConvergeInstance;
use upsilon_mem::{Consensus, Register, SnapshotFlavor};
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, Key, ProcessId, ProcessSet};

/// Configuration of the boosting protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoostConfig {
    /// Which snapshot implementation backs the commit–adopt instances.
    pub flavor: SnapshotFlavor,
}

/// Runs boosted consensus for one process proposing `v`; returns the
/// decision. The failure-detector range must be Ω_n's (`ProcessSet`s of
/// size `n`).
///
/// # Errors
///
/// Returns [`Crashed`] if the calling process crashes mid-protocol.
// The override breaks the name-based await graph's apparent recursion
// (`obj.propose` below is the one-step consensus *object*, not this
// routine). Per round: two register reads, a query, the member/waiter
// branch (max(2, 3W)), a 1-converge (≤ 4·n₊₁·(n₊₁+2) + 4 snapshot steps
// on the register-based flavor) and the decision write.
// #[conform(bound = "R * (W * 3 + 4 * n_plus_1 * (n_plus_1 + 2) + 9)")]
pub async fn propose(ctx: &Ctx<ProcessSet>, cfg: BoostConfig, v: u64) -> Result<u64, Crashed> {
    let n_plus_1 = ctx.n_plus_1();
    let me = ctx.pid();
    let decision = Register::<Option<u64>>::new(Key::new("D"), None);
    let mut v = v;
    let mut r: u64 = 1;
    // #[conform(bound = "R")]
    loop {
        if let Some(d) = decision.read(ctx).await? {
            return Ok(d);
        }
        let leaders = ctx.query_fd().await?;
        debug_assert_eq!(leaders.len(), ctx.n(), "Ω_n outputs sets of size n");
        let board = Register::<Option<u64>>::new(Key::new("B").at(r), None);
        if leaders.contains(me) {
            // Members of L agree through an n-process consensus object
            // dedicated to this (round, L) pair — only members touch it.
            let obj = Consensus::new(Key::new("n-cons").at(r).at(leaders.bits()), leaders);
            v = obj.propose(ctx, v).await?;
            board.write(ctx, Some(v)).await?;
        } else {
            // #[conform(bound = "W")]
            loop {
                if let Some(w) = board.read(ctx).await? {
                    v = w;
                    break;
                }
                if let Some(d) = decision.read(ctx).await? {
                    return Ok(d);
                }
                if ctx.query_fd().await? != leaders {
                    break;
                }
            }
        }
        let ca = ConvergeInstance::new(Key::new("bca").at(r), n_plus_1, cfg.flavor);
        let (picked, committed) = ca.converge(ctx, 1, v).await?;
        v = picked;
        if committed {
            decision.write(ctx, Some(v)).await?;
            return Ok(v);
        }
        r += 1;
    }
}

/// Builds the algorithm closure for one process.
pub fn algorithm(cfg: BoostConfig, v: u64) -> AlgoFn<ProcessSet> {
    algo(move |ctx| async move {
        let d = propose(&ctx, cfg, v).await?;
        ctx.decide(d).await?;
        Ok(())
    })
}

/// Builds algorithms for all participating processes.
pub fn algorithms(cfg: BoostConfig, props: &[Option<u64>]) -> Vec<(ProcessId, AlgoFn<ProcessSet>)> {
    proposals::to_algorithms(props, move |v| algorithm(cfg, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_consensus;
    use upsilon_fd::{OmegaKChoice, OmegaKOracle};
    use upsilon_mem::ConsensusObject;
    use upsilon_sim::{FailurePattern, Memory, Run, SeededRandom, SimBuilder, Time};

    fn run_boost(
        pattern: &FailurePattern,
        props: &[Option<u64>],
        choice: OmegaKChoice,
        stab: Time,
        seed: u64,
    ) -> (Run<ProcessSet>, Memory) {
        let n = pattern.n();
        let oracle = OmegaKOracle::new(pattern, n, choice, stab, seed);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(400_000);
        for (pid, algo) in algorithms(BoostConfig::default(), props) {
            builder = builder.spawn(pid, algo);
        }
        let outcome = builder.run();
        (outcome.run, outcome.memory)
    }

    #[test]
    fn boosts_to_full_consensus_failure_free() {
        let pattern = FailurePattern::failure_free(3);
        let props = [Some(10), Some(20), Some(30)];
        for seed in 0..5u64 {
            let (run, _) = run_boost(&pattern, &props, OmegaKChoice::default(), Time(40), seed);
            check_consensus(&run, &props).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn boosts_with_n_crashes() {
        // Wait-free: n of n+1 processes crash.
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(0), Time(30))
            .crash(ProcessId(2), Time(60))
            .build();
        let props = [Some(1), Some(2), Some(3)];
        let (run, _) = run_boost(&pattern, &props, OmegaKChoice::default(), Time(150), 3);
        check_consensus(&run, &props).expect("n crashes survived");
    }

    #[test]
    fn only_n_process_consensus_objects_are_used() {
        // The type restriction of Corollary 4: every consensus object in
        // memory is an n-process object, never n+1.
        let pattern = FailurePattern::failure_free(4);
        let props = [Some(1), Some(2), Some(3), Some(4)];
        let (run, memory) = run_boost(&pattern, &props, OmegaKChoice::default(), Time(50), 9);
        check_consensus(&run, &props).expect("boosted consensus");
        let mut seen = 0;
        for (_, key, ty) in memory.inventory() {
            if ty.contains("ConsensusObject") {
                seen += 1;
                let set = ProcessSet::from_bits(key.indices()[1]);
                assert_eq!(set.len(), 3, "object {key} must be 3-process (n = 3)");
            }
        }
        assert!(
            seen >= 1,
            "at least one consensus object must have been used"
        );
        let _ = memory.get::<ConsensusObject>(&Key::new("nonexistent"));
    }

    #[test]
    fn late_stabilization_with_noisy_leader_sets() {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(1), Time(20))
            .build();
        let props = [Some(4), Some(3), Some(2), Some(1)];
        let (run, _) = run_boost(
            &pattern,
            &props,
            OmegaKChoice::OneCorrectRestFaulty,
            Time(500),
            17,
        );
        check_consensus(&run, &props).expect("noisy Ω_n period");
    }
}
