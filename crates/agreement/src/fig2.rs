//! The paper's Fig. 2: Υ^f-based f-resilient f-set-agreement (§5.3,
//! Theorem 6).
//!
//! The structure follows Fig. 1, with two changes driven by the weaker goal
//! (at most `f` decided values) and the stronger guarantee (at least
//! `n + 1 − f` correct processes):
//!
//! * the round-opening convergence is `f`-converge (at most `f` surviving
//!   values commit);
//! * gladiators in `U` must jointly reduce to at most `|U| + f − n − 1`
//!   values, so that together with the at most `n + 1 − |U|` citizen values
//!   at most `f` values enter `D[r]`. They do this with an atomic snapshot
//!   `A[r][k]`: each gladiator publishes its value, waits until the snapshot
//!   holds at least `n + 1 − f` non-⊥ values (lines 17–19 — safe because at
//!   least `n + 1 − f` processes are correct), adopts the **minimum** value
//!   of its snapshot (line 25), and runs `(|U| + f − n − 1)`-converge
//!   (line 26). Since all snapshots are containment-related and each holds
//!   between `n + 1 − f` and `|U| − 1` non-⊥ entries once a gladiator is
//!   faulty, at most `|U| + f − n − 1` distinct minima arise, and
//!   Convergence commits.
//!
//! The blocking wait of lines 17–19 escapes when `D[r]` or `D` becomes
//! non-⊥, or when instability of Υ^f is observed (`Stable[r]`), mirroring
//! the escape analysis in the proof of Theorem 6.
//!
//! With `f = n` this degenerates to Fig. 1 modulo the harmless
//! min-of-snapshot adoption (the wait is satisfied by one's own update), a
//! consistency the integration tests exploit.

use crate::proposals;
use upsilon_converge::{ConvergeFaults, ConvergeInstance};
use upsilon_mem::{min_value, non_bot_count, FlavoredSnapshot, Register, Snapshot, SnapshotFlavor};
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, Key, ProcessSet};

/// Configuration of the Fig. 2 protocol.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Config {
    /// The resilience bound `f` (the oracle must be Υ^f and the pattern in
    /// `E_f`).
    pub f: usize,
    /// Which snapshot implementation backs `A[r][k]` and the converges.
    pub flavor: SnapshotFlavor,
    /// **Ablation switch** (default `false` = faithful protocol): skip the
    /// line 25 snapshot-minimum adoption and keep one's own value instead.
    /// Still *safe* (Agreement flows from the round-opening `f`-converge),
    /// but Termination breaks in exactly the scenario the proof of
    /// Theorem 6 uses the adoption for: all citizens faulty plus a faulty
    /// gladiator, where the correct gladiators must shrink to
    /// `|U| + f − n − 1` values via the containment of their snapshots.
    /// Exercised by experiment E14.
    pub ablate_min_adoption: bool,
    /// **Seeded-mutant switch** (default [`ConvergeFaults::NONE`] =
    /// faithful protocol): faults injected into the *round-opening*
    /// `f`-converge only. Unlike `ablate_min_adoption` this breaks
    /// *safety*: dropping a phase-1 announcement lets more than `f`
    /// values commit out of the opener (the "dropped write in Fig. 2"
    /// mutant the fuzzer must find).
    pub opener_faults: ConvergeFaults,
}

impl Fig2Config {
    /// Configuration for resilience `f` with native snapshots.
    pub fn new(f: usize) -> Self {
        Fig2Config {
            f,
            flavor: SnapshotFlavor::Native,
            ablate_min_adoption: false,
            opener_faults: ConvergeFaults::NONE,
        }
    }

    /// The broken variant for the E14 ablation.
    pub fn ablated(f: usize) -> Self {
        Fig2Config {
            f,
            flavor: SnapshotFlavor::Native,
            ablate_min_adoption: true,
            opener_faults: ConvergeFaults::NONE,
        }
    }

    /// The seeded-mutant variant: inject `faults` into the round-opening
    /// `f`-converge (mutation-detection tests and fuzz campaigns only).
    pub fn with_opener_faults(mut self, faults: ConvergeFaults) -> Self {
        self.opener_faults = faults;
        self
    }
}

/// Outcome of one pass through the gladiator sub-round body.
enum SubRound {
    /// Keep cycling sub-rounds.
    Continue,
    /// Leave the round, adopting this value.
    Leave(u64),
    /// D was set: decide this value.
    Decide(u64),
}

/// Runs the Fig. 2 protocol for one process proposing `v`; returns the
/// decision.
///
/// # Errors
///
/// Returns [`Crashed`] if the calling process crashes mid-protocol.
///
/// # Panics
///
/// Panics if `cfg.f` is out of range for the system size.
// Wait-free per Theorem 6; R and K are per-run round/sub-round counts,
// bound from recorded runs by the dynamic cross-check.
// #[conform(wait_free)]
pub async fn propose(ctx: &Ctx<ProcessSet>, cfg: Fig2Config, v: u64) -> Result<u64, Crashed> {
    let n_plus_1 = ctx.n_plus_1();
    let f = cfg.f;
    assert!(f >= 1 && f <= ctx.n(), "f must be in 1..=n");
    let me = ctx.pid();
    let decision = Register::<Option<u64>>::new(Key::new("D"), None);
    let mut v = v;
    let mut r: u64 = 1;

    // #[conform(bound = "R")]
    loop {
        // Round opener: f-converge over the surviving values.
        let main = ConvergeInstance::new(Key::new("f-conv").at(r), n_plus_1, cfg.flavor)
            .with_faults(cfg.opener_faults);
        let (picked, committed) = main.converge(ctx, f, v).await?;
        v = picked;
        if committed {
            decision.write(ctx, Some(v)).await?;
            return Ok(v);
        }
        if let Some(d) = decision.read(ctx).await? {
            return Ok(d);
        }

        let d_r = Register::<Option<u64>>::new(Key::new("D_r").at(r), None);
        let stable_r = Register::<bool>::new(Key::new("Stable").at(r), false);
        let mut u = ctx.query_fd().await?;
        let mut k: u64 = 0;

        // #[conform(bound = "K")]
        let adopted = loop {
            k += 1;
            let u_now = ctx.query_fd().await?;
            if u_now != u {
                stable_r.write(ctx, true).await?;
                u = u_now;
            }

            if !u.contains(me) {
                // Citizen (line 11): publish and move to the next round.
                d_r.write(ctx, Some(v)).await?;
                break v;
            }

            match gladiator_sub_round(ctx, cfg, r, k, &mut u, &mut v, &decision, &d_r, &stable_r)
                .await?
            {
                SubRound::Continue => {}
                SubRound::Leave(w) => break w,
                SubRound::Decide(d) => return Ok(d),
            }
        };

        v = adopted;
        if let Some(d) = decision.read(ctx).await? {
            return Ok(d);
        }
        if let Some(w) = d_r.read(ctx).await? {
            v = w;
        }
        r += 1;
    }
}

/// One gladiator sub-round (lines 15–30): snapshot publish, bounded wait,
/// min adoption, `(|U| + f − n − 1)`-converge.
#[allow(clippy::too_many_arguments)]
async fn gladiator_sub_round(
    ctx: &Ctx<ProcessSet>,
    cfg: Fig2Config,
    r: u64,
    k: u64,
    u: &mut ProcessSet,
    v: &mut u64,
    decision: &Register<Option<u64>>,
    d_r: &Register<Option<u64>>,
    stable_r: &Register<bool>,
) -> Result<SubRound, Crashed> {
    let n_plus_1 = ctx.n_plus_1();
    let f = cfg.f;
    let quorum = n_plus_1 - f;

    // Line 16: publish the current value in A[r][k].
    let a = FlavoredSnapshot::<u64>::new(cfg.flavor, Key::new("A").at(r).at(k), n_plus_1);
    a.update(ctx, *v).await?;

    // Lines 17–19: wait for at least n+1−f non-⊥ entries, escaping on
    // D / D[r] / observed instability. W bounds the wait iterations
    // actually taken in a recorded run.
    // #[conform(bound = "W")]
    let snap = loop {
        let s = a.scan(ctx).await?;
        if non_bot_count(&s) >= quorum {
            break Some(s);
        }
        if let Some(d) = decision.read(ctx).await? {
            return Ok(SubRound::Decide(d));
        }
        if let Some(w) = d_r.read(ctx).await? {
            return Ok(SubRound::Leave(w));
        }
        if stable_r.read(ctx).await? {
            break None;
        }
        let u_now = ctx.query_fd().await?;
        if u_now != *u {
            stable_r.write(ctx, true).await?;
            *u = u_now;
            break None;
        }
    };

    let Some(snap) = snap else {
        // Escaped via instability: leave the round with the current value.
        return Ok(SubRound::Leave(*v));
    };

    // Line 25: adopt the minimal value of the snapshot. Containment of
    // snapshots bounds the number of distinct minima by
    // (|U|−1) − (n+1−f) + 1 = |U| + f − n − 1 once a gladiator is faulty.
    if !cfg.ablate_min_adoption {
        *v = min_value(&snap).expect("quorum reached, snapshot is non-empty");
    } else {
        // Ablated: ignore the snapshot (safety unaffected; termination is
        // lost in the all-citizens-faulty case — see E14).
        let _ = &snap;
    }

    // Line 26: gladiators commit on at most |U| + f − n − 1 values.
    let threshold = (u.len() + f).saturating_sub(n_plus_1);
    let sub = ConvergeInstance::new(Key::new("u-conv").at(r).at(k), n_plus_1, cfg.flavor);
    let (picked, committed) = sub.converge(ctx, threshold, *v).await?;
    *v = picked;
    if committed {
        d_r.write(ctx, Some(*v)).await?;
        return Ok(SubRound::Leave(*v));
    }

    // Line 30 exit conditions.
    if let Some(d) = decision.read(ctx).await? {
        return Ok(SubRound::Decide(d));
    }
    if let Some(w) = d_r.read(ctx).await? {
        return Ok(SubRound::Leave(w));
    }
    if stable_r.read(ctx).await? {
        return Ok(SubRound::Leave(*v));
    }
    Ok(SubRound::Continue)
}

/// Builds the algorithm closure for one process: run Fig. 2 with proposal
/// `v`, then decide.
pub fn algorithm(cfg: Fig2Config, v: u64) -> AlgoFn<ProcessSet> {
    algo(move |ctx| async move {
        let d = propose(&ctx, cfg, v).await?;
        ctx.decide(d).await?;
        Ok(())
    })
}

/// Builds algorithms for all participating processes from a proposal vector.
pub fn algorithms(
    cfg: Fig2Config,
    proposals: &[Option<u64>],
) -> Vec<(upsilon_sim::ProcessId, AlgoFn<ProcessSet>)> {
    proposals::to_algorithms(proposals, move |v| algorithm(cfg, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_k_set_agreement;
    use upsilon_fd::{UpsilonChoice, UpsilonOracle};
    use upsilon_sim::{FailurePattern, ProcessId, Run, SeededRandom, SimBuilder, Time};

    fn run_fig2(
        pattern: &FailurePattern,
        f: usize,
        proposals: &[Option<u64>],
        choice: UpsilonChoice,
        stab: Time,
        seed: u64,
    ) -> Run<ProcessSet> {
        let oracle = UpsilonOracle::new(pattern, f, choice, stab, seed);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(600_000);
        for (pid, algo) in algorithms(Fig2Config::new(f), proposals) {
            builder = builder.spawn(pid, algo);
        }
        builder.run().run
    }

    #[test]
    fn one_resilient_agreement_among_four() {
        // n+1 = 4, f = 1: 1-set agreement (consensus) tolerating one crash.
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(2), Time(25))
            .build();
        let proposals = [Some(1), Some(2), Some(3), Some(4)];
        let run = run_fig2(
            &pattern,
            1,
            &proposals,
            UpsilonChoice::default(),
            Time(80),
            3,
        );
        check_k_set_agreement(&run, 1, &proposals).expect("Υ¹ gives 1-resilient consensus");
    }

    #[test]
    fn mid_range_f_with_crashes() {
        let pattern = FailurePattern::builder(5)
            .crash(ProcessId(0), Time(30))
            .crash(ProcessId(4), Time(70))
            .build();
        let proposals = [Some(1), Some(2), Some(3), Some(4), Some(5)];
        for choice in [
            UpsilonChoice::All,
            UpsilonChoice::FaultyPadded,
            UpsilonChoice::default(),
        ] {
            let run = run_fig2(&pattern, 2, &proposals, choice, Time(120), 9);
            check_k_set_agreement(&run, 2, &proposals)
                .unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn wait_free_case_matches_fig1_semantics() {
        // f = n: Fig. 2 solves n-set agreement, like Fig. 1.
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(1), Time(40))
            .build();
        let proposals = [Some(7), Some(8), Some(9)];
        let run = run_fig2(
            &pattern,
            2,
            &proposals,
            UpsilonChoice::default(),
            Time(90),
            5,
        );
        check_k_set_agreement(&run, 2, &proposals).expect("f = n case");
    }

    #[test]
    fn failure_free_runs_decide_under_all_gladiator_sets() {
        let pattern = FailurePattern::failure_free(4);
        let proposals = [Some(4), Some(3), Some(2), Some(1)];
        for f in 1..=3usize {
            for choice in [UpsilonChoice::default(), UpsilonChoice::SubsetOfCorrect] {
                let run = run_fig2(&pattern, f, &proposals, choice, Time(60), 17);
                check_k_set_agreement(&run, f, &proposals)
                    .unwrap_or_else(|e| panic!("f={f} {choice:?}: {e}"));
            }
        }
    }

    #[test]
    fn late_stabilization_with_max_crashes() {
        // All f crashes actually happen, and Υ^f stabilizes only afterwards.
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(1), Time(50))
            .crash(ProcessId(3), Time(100))
            .build();
        let proposals = [Some(1), Some(2), Some(3), Some(4)];
        let run = run_fig2(&pattern, 2, &proposals, UpsilonChoice::All, Time(1_500), 21);
        check_k_set_agreement(&run, 2, &proposals).expect("late stabilization");
    }
}
