//! The k-set-agreement problem specification (§5.1), checked on recorded
//! runs.
//!
//! Every run of a k-set-agreement algorithm must satisfy: **Termination**
//! (every correct process eventually decides), **Agreement** (at most `k`
//! values are decided on) and **Validity** (any value decided is a value
//! proposed). Consensus is the case `k = 1`.

use std::fmt;
use upsilon_analysis::RunSpec;
use upsilon_sim::{FdValue, Output, ProcessId, Run, StopReason};

/// A violation of the k-set-agreement specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TaskViolation {
    /// A correct participating process never decided.
    Termination(ProcessId),
    /// More than `k` distinct values were decided.
    Agreement {
        /// The distinct decided values.
        decided: Vec<u64>,
        /// The bound that was exceeded.
        k: usize,
    },
    /// A decided value was never proposed.
    Validity {
        /// The unproposed value.
        value: u64,
        /// Who decided it.
        by: ProcessId,
    },
    /// A process decided twice with different values (decisions are
    /// irrevocable).
    Revoked {
        /// The revoking process.
        by: ProcessId,
        /// Its first decision.
        first: u64,
        /// Its conflicting later decision.
        second: u64,
    },
}

impl fmt::Display for TaskViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskViolation::Termination(p) => {
                write!(
                    f,
                    "termination violated: correct participant {p} never decided"
                )
            }
            TaskViolation::Agreement { decided, k } => write!(
                f,
                "agreement violated: {} distinct values decided ({decided:?}) with k = {k}",
                decided.len()
            ),
            TaskViolation::Validity { value, by } => {
                write!(
                    f,
                    "validity violated: {by} decided unproposed value {value}"
                )
            }
            TaskViolation::Revoked { by, first, second } => {
                write!(
                    f,
                    "irrevocability violated: {by} decided {first} then {second}"
                )
            }
        }
    }
}

impl std::error::Error for TaskViolation {}

/// Checks a run against the k-set-agreement specification.
///
/// `proposals[i]` is the value proposed by `p_{i+1}`, or `None` if that
/// process did not participate (cf. the §5.2 Remark). Termination is
/// required of every correct participant; Agreement and Validity of
/// everyone.
///
/// ```
/// use upsilon_agreement::{check_k_set_agreement, TaskViolation};
/// use upsilon_sim::{algo, FailurePattern, SimBuilder};
///
/// // Three processes decide two distinct values: fine for k = 2, an
/// // Agreement violation for k = 1.
/// let run = SimBuilder::<()>::new(FailurePattern::failure_free(3))
///     .spawn_all(|pid| algo(move |ctx| async move {
///         ctx.decide(pid.index() as u64 % 2).await?;
///         Ok(())
///     }))
///     .run()
///     .run;
/// let proposals = [Some(0), Some(1), Some(0)];
/// assert!(check_k_set_agreement(&run, 2, &proposals).is_ok());
/// assert!(matches!(
///     check_k_set_agreement(&run, 1, &proposals),
///     Err(TaskViolation::Agreement { .. })
/// ));
/// ```
///
/// # Errors
///
/// Returns the first [`TaskViolation`] found.
pub fn check_k_set_agreement<D: FdValue>(
    run: &Run<D>,
    k: usize,
    proposals: &[Option<u64>],
) -> Result<(), TaskViolation> {
    check_k_set(run, k, proposals, true)
}

/// Checks only the *safety* clauses of k-set agreement — Irrevocability,
/// Agreement and Validity — skipping Termination.
///
/// This is the right specification for runs truncated by a depth or step
/// budget (systematic exploration, partial-run constructions): safety must
/// hold of every prefix, while termination is only meaningful on runs that
/// were allowed to finish.
///
/// # Errors
///
/// Returns the first [`TaskViolation`] found.
pub fn check_k_set_agreement_safety<D: FdValue>(
    run: &Run<D>,
    k: usize,
    proposals: &[Option<u64>],
) -> Result<(), TaskViolation> {
    check_k_set(run, k, proposals, false)
}

fn check_k_set<D: FdValue>(
    run: &Run<D>,
    k: usize,
    proposals: &[Option<u64>],
    require_termination: bool,
) -> Result<(), TaskViolation> {
    assert_eq!(
        proposals.len(),
        run.n_plus_1(),
        "one proposal slot per process"
    );

    // Irrevocability: no process decides two different values.
    for i in 0..run.n_plus_1() {
        let p = ProcessId(i);
        let decisions: Vec<u64> = run
            .outputs_of(p)
            .filter_map(|(_, o)| match o {
                Output::Decide(v) => Some(v),
                _ => None,
            })
            .collect();
        if let Some((&first, rest)) = decisions.split_first() {
            if let Some(&second) = rest.iter().find(|&&v| v != first) {
                return Err(TaskViolation::Revoked {
                    by: p,
                    first,
                    second,
                });
            }
        }
    }

    let decisions = run.decisions();

    // Termination.
    if require_termination {
        for p in run.pattern().correct() {
            if proposals[p.index()].is_some() && decisions[p.index()].is_none() {
                return Err(TaskViolation::Termination(p));
            }
        }
    }

    // Agreement.
    let decided = run.decided_values();
    if decided.len() > k {
        return Err(TaskViolation::Agreement { decided, k });
    }

    // Validity.
    let proposed: Vec<u64> = proposals.iter().flatten().copied().collect();
    for (i, decision) in decisions.iter().enumerate() {
        if let Some(v) = decision {
            if !proposed.contains(v) {
                return Err(TaskViolation::Validity {
                    value: *v,
                    by: ProcessId(i),
                });
            }
        }
    }
    Ok(())
}

/// Checks a run against the consensus specification (`k = 1`).
///
/// # Errors
///
/// Returns the first [`TaskViolation`] found.
pub fn check_consensus<D: FdValue>(
    run: &Run<D>,
    proposals: &[Option<u64>],
) -> Result<(), TaskViolation> {
    check_k_set_agreement(run, 1, proposals)
}

/// The k-set-agreement task as a [`RunSpec`], for systematic exploration.
///
/// On complete runs ([`StopReason::AllDone`]) the full specification is
/// checked; on truncated runs only the safety clauses are. The spec is
/// trace-closed: it depends only on each process's output sequence and the
/// failure pattern, never on the relative order of independent steps.
#[derive(Clone, Debug)]
pub struct KSetAgreementSpec {
    /// The agreement bound `k`.
    pub k: usize,
    /// `proposals[i]` is the value `p_{i+1}` proposes, `None` if absent.
    pub proposals: Vec<Option<u64>>,
}

impl<D: FdValue> RunSpec<D> for KSetAgreementSpec {
    fn name(&self) -> &str {
        "k-set-agreement"
    }

    fn check(&self, run: &Run<D>) -> Result<(), String> {
        let complete = matches!(run.stop_reason(), StopReason::AllDone);
        check_k_set(run, self.k, &self.proposals, complete).map_err(|v| v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_sim::{algo, FailurePattern, SimBuilder};

    fn run_with_decisions(decisions: Vec<Option<u64>>) -> Run<()> {
        let n = decisions.len();
        SimBuilder::<()>::new(FailurePattern::failure_free(n))
            .spawn_all(|pid| {
                let d = decisions[pid.index()];
                algo(move |ctx| async move {
                    if let Some(v) = d {
                        ctx.decide(v).await?;
                    }
                    Ok(())
                })
            })
            .run()
            .run
    }

    #[test]
    fn accepts_a_correct_run() {
        let run = run_with_decisions(vec![Some(1), Some(2), Some(1)]);
        check_k_set_agreement(&run, 2, &[Some(1), Some(2), Some(3)]).expect("legal 2-set run");
    }

    #[test]
    fn rejects_too_many_values() {
        let run = run_with_decisions(vec![Some(1), Some(2), Some(3)]);
        let err = check_k_set_agreement(&run, 2, &[Some(1), Some(2), Some(3)]).unwrap_err();
        assert!(matches!(err, TaskViolation::Agreement { .. }), "{err}");
    }

    #[test]
    fn rejects_unproposed_value() {
        let run = run_with_decisions(vec![Some(9), None, None]);
        let err = check_k_set_agreement(&run, 3, &[Some(1), None, None]).unwrap_err();
        assert!(
            matches!(err, TaskViolation::Validity { value: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_missing_decision_of_correct_participant() {
        let run = run_with_decisions(vec![Some(1), None, Some(1)]);
        let err = check_k_set_agreement(&run, 2, &[Some(1), Some(2), Some(1)]).unwrap_err();
        assert_eq!(err, TaskViolation::Termination(ProcessId(1)));
    }

    #[test]
    fn non_participants_need_not_decide() {
        let run = run_with_decisions(vec![Some(1), None, Some(1)]);
        check_k_set_agreement(&run, 2, &[Some(1), None, Some(1)])
            .expect("non-participant may stay silent");
    }

    #[test]
    fn rejects_revoked_decision() {
        let run = SimBuilder::<()>::new(FailurePattern::failure_free(1))
            .spawn_all(|_| {
                algo(move |ctx| async move {
                    ctx.decide(1).await?;
                    ctx.decide(2).await?;
                    Ok(())
                })
            })
            .run()
            .run;
        let err = check_k_set_agreement(&run, 2, &[Some(1)]).unwrap_err();
        assert!(matches!(err, TaskViolation::Revoked { .. }), "{err}");
    }

    #[test]
    fn consensus_is_one_set_agreement() {
        let run = run_with_decisions(vec![Some(2), Some(2)]);
        check_consensus(&run, &[Some(1), Some(2)]).expect("agreeing consensus run");
        let run = run_with_decisions(vec![Some(1), Some(2)]);
        assert!(check_consensus(&run, &[Some(1), Some(2)]).is_err());
    }

    #[test]
    fn violations_display() {
        assert!(TaskViolation::Termination(ProcessId(0))
            .to_string()
            .contains("p1"));
        assert!(TaskViolation::Agreement {
            decided: vec![1, 2],
            k: 1
        }
        .to_string()
        .contains("2 distinct"));
    }
}
