//! The paper's Fig. 1: Υ-based n-set-agreement with registers (§5.2,
//! Theorem 2).
//!
//! The protocol proceeds in rounds. In round `r`:
//!
//! 1. (line 4) run `n`-converge; on commit, write the value to the decision
//!    register `D` and decide.
//! 2. Otherwise query Υ; call the returned set `U`. Processes in `U` are
//!    **gladiators**, processes outside are **citizens**. Then cycle through
//!    sub-rounds `k = 1, 2, …` (lines 12–17):
//!    * whenever the queried output of Υ changes, set `Stable[r] := true`
//!      (reporting instability to the whole round) and move to round `r+1`;
//!    * a citizen writes its value to `D[r]` and moves to round `r+1`;
//!    * a gladiator runs `(|U|−1)`-converge`[r][k]`, carrying the picked
//!      value into sub-round `k+1`; on commit it writes `D[r]` and moves on;
//!    * everyone leaves the round when `Stable[r]` is set, or `D[r] ≠ ⊥`
//!      (adopting that value), or `D ≠ ⊥` (deciding it).
//!
//! Eventually Υ stabilizes on `U ≠ correct(F)`: either a gladiator is
//! faulty — so eventually at most `|U|−1` values enter some
//! `(|U|−1)`-converge and Convergence commits — or a citizen is correct and
//! writes `D[r]`. Either way at most `n` distinct values survive into round
//! `r+1`, where `n`-converge commits (Theorem 2's counting argument:
//! `(n+1−|U|) + (|U|−1) = n`).
//!
//! Safety does not depend on Υ at all: a process decides only a value that
//! went through a committed `n`-converge (directly or via `D`), and
//! C-Agreement bounds those to `n` values.

use crate::proposals;
use upsilon_converge::ConvergeInstance;
use upsilon_mem::{Register, SnapshotFlavor};
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, Key, ProcessSet};

/// Configuration of the Fig. 1 protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fig1Config {
    /// Which snapshot implementation backs the converge instances.
    pub flavor: SnapshotFlavor,
}

/// Runs the Fig. 1 protocol for one process proposing `v`; returns the
/// decision. The failure-detector range must be Υ's (`ProcessSet`).
///
/// # Errors
///
/// Returns [`Crashed`] if the calling process crashes mid-protocol.
// Wait-free per Theorem 2: every step completes, and once Υ stabilizes the
// round/sub-round counters stop advancing. R and K are per-run quantities
// (rounds and sub-rounds actually taken); the dynamic cross-check binds
// them from recorded runs.
// #[conform(wait_free)]
pub async fn propose(ctx: &Ctx<ProcessSet>, cfg: Fig1Config, v: u64) -> Result<u64, Crashed> {
    let n_plus_1 = ctx.n_plus_1();
    let n = ctx.n();
    let me = ctx.pid();
    let decision = Register::<Option<u64>>::new(Key::new("D"), None);
    let mut v = v;
    let mut r: u64 = 1;
    // #[conform(bound = "R")]
    loop {
        // Line 4: try to commit one of at most n surviving values.
        let main = ConvergeInstance::new(Key::new("n-conv").at(r), n_plus_1, cfg.flavor);
        let (picked, committed) = main.converge(ctx, n, v).await?;
        v = picked;
        if committed {
            decision.write(ctx, Some(v)).await?;
            return Ok(v);
        }
        if let Some(d) = decision.read(ctx).await? {
            return Ok(d);
        }

        let d_r = Register::<Option<u64>>::new(Key::new("D_r").at(r), None);
        let stable_r = Register::<bool>::new(Key::new("Stable").at(r), false);
        let mut u = ctx.query_fd().await?;
        let mut k: u64 = 0;

        // Lines 12–17: gladiators vs citizens, until the round resolves.
        // #[conform(bound = "K")]
        let adopted = loop {
            k += 1;
            let u_now = ctx.query_fd().await?;
            if u_now != u {
                // Observed instability of Υ: report it and refresh U.
                stable_r.write(ctx, true).await?;
                u = u_now;
            }

            if !u.contains(me) {
                // Citizen: publish the value for the round and move on.
                d_r.write(ctx, Some(v)).await?;
                break v;
            }

            // Gladiator: try to eliminate one of U's values.
            let sub = ConvergeInstance::new(Key::new("u-conv").at(r).at(k), n_plus_1, cfg.flavor);
            let (picked, committed) = sub.converge(ctx, u.len() - 1, v).await?;
            v = picked;
            if committed {
                d_r.write(ctx, Some(v)).await?;
                break v;
            }

            // Line 17 exit conditions.
            if let Some(d) = decision.read(ctx).await? {
                return Ok(d);
            }
            if let Some(w) = d_r.read(ctx).await? {
                break w;
            }
            if stable_r.read(ctx).await? {
                break v;
            }
        };

        v = adopted;
        if let Some(d) = decision.read(ctx).await? {
            return Ok(d);
        }
        if let Some(w) = d_r.read(ctx).await? {
            v = w;
        }
        r += 1;
    }
}

/// Builds the algorithm closure for one process: run Fig. 1 with proposal
/// `v`, then decide the returned value.
///
/// ```
/// use upsilon_agreement::fig1::{algorithm, Fig1Config};
/// use upsilon_agreement::check_k_set_agreement;
/// use upsilon_fd::{UpsilonChoice, UpsilonOracle};
/// use upsilon_sim::{FailurePattern, SimBuilder, Time};
///
/// let pattern = FailurePattern::failure_free(3);
/// let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(50), 1);
/// let run = SimBuilder::new(pattern)
///     .oracle(oracle)
///     .spawn_all(|pid| algorithm(Fig1Config::default(), pid.index() as u64))
///     .run()
///     .run;
/// check_k_set_agreement(&run, 2, &[Some(0), Some(1), Some(2)]).unwrap();
/// ```
pub fn algorithm(cfg: Fig1Config, v: u64) -> AlgoFn<ProcessSet> {
    algo(move |ctx| async move {
        let d = propose(&ctx, cfg, v).await?;
        ctx.decide(d).await?;
        Ok(())
    })
}

/// Builds algorithms for all (participating) processes from a proposal
/// vector; `None` entries do not participate.
pub fn algorithms(
    cfg: Fig1Config,
    proposals: &[Option<u64>],
) -> Vec<(upsilon_sim::ProcessId, AlgoFn<ProcessSet>)> {
    proposals::to_algorithms(proposals, move |v| algorithm(cfg, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_k_set_agreement;
    use upsilon_fd::{UpsilonChoice, UpsilonOracle};
    use upsilon_sim::{FailurePattern, ProcessId, SeededRandom, SimBuilder, Time};

    fn run_fig1(
        pattern: &FailurePattern,
        proposals: &[Option<u64>],
        choice: UpsilonChoice,
        stab: Time,
        seed: u64,
    ) -> upsilon_sim::Run<ProcessSet> {
        let oracle = UpsilonOracle::wait_free(pattern, choice, stab, seed);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(400_000);
        for (pid, algo) in algorithms(Fig1Config::default(), proposals) {
            builder = builder.spawn(pid, algo);
        }
        builder.run().run
    }

    #[test]
    fn failure_free_three_processes_all_choices() {
        let pattern = FailurePattern::failure_free(3);
        let proposals = [Some(10), Some(20), Some(30)];
        for choice in [
            UpsilonChoice::ComplementOfCorrect,
            UpsilonChoice::SubsetOfCorrect,
            UpsilonChoice::RandomLegal,
        ] {
            let run = run_fig1(&pattern, &proposals, choice, Time(50), 3);
            check_k_set_agreement(&run, 2, &proposals)
                .unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn crashes_do_not_break_the_protocol() {
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(0), Time(40))
            .crash(ProcessId(2), Time(90))
            .build();
        let proposals = [Some(1), Some(2), Some(3)];
        for choice in [UpsilonChoice::All, UpsilonChoice::FaultyPadded] {
            let run = run_fig1(&pattern, &proposals, choice, Time(120), 7);
            check_k_set_agreement(&run, 2, &proposals)
                .unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn late_stabilization_is_tolerated() {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(1), Time(10))
            .build();
        let proposals = [Some(1), Some(2), Some(3), Some(4)];
        let run = run_fig1(
            &pattern,
            &proposals,
            UpsilonChoice::default(),
            Time(3_000),
            11,
        );
        check_k_set_agreement(&run, 3, &proposals).expect("3-set agreement holds");
    }

    #[test]
    fn remark_non_participation_forces_round_one_commit() {
        // §5.2 Remark: with a non-participant, at most n values enter round
        // 1's n-converge, so everyone commits in round 1 regardless of Υ —
        // even though Υ never stabilizes within this run's horizon.
        let pattern = FailurePattern::failure_free(3);
        let proposals = [Some(5), None, Some(6)];
        let oracle =
            UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(1_000_000), 5);
        let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(5))
            .max_steps(400_000);
        for (pid, algo) in algorithms(Fig1Config::default(), &proposals) {
            builder = builder.spawn(pid, algo);
        }
        let outcome = builder.run();
        check_k_set_agreement(&outcome.run, 2, &proposals).expect("remark run");
        // Every participant decided in round 1: no round-2 objects exist.
        assert!(outcome
            .memory
            .inventory()
            .all(|(_, key, _)| key.indices().first() != Some(&2)));
    }

    #[test]
    fn two_process_case_solves_consensus_like_agreement() {
        // n = 1: 1-set agreement = consensus, with Υ ≡ Ω (§4).
        let pattern = FailurePattern::builder(2)
            .crash(ProcessId(0), Time(30))
            .build();
        let proposals = [Some(8), Some(9)];
        let run = run_fig1(&pattern, &proposals, UpsilonChoice::default(), Time(60), 13);
        check_k_set_agreement(&run, 1, &proposals).expect("2-process Fig.1 is consensus");
    }
}
