//! Helpers for wiring proposal vectors into per-process algorithms.

use upsilon_sim::{AlgoFn, FdValue, ProcessId};

/// Turns a proposal vector into `(pid, algorithm)` pairs, skipping `None`
/// entries (non-participants, cf. the §5.2 Remark).
pub fn to_algorithms<D: FdValue>(
    proposals: &[Option<u64>],
    mut make: impl FnMut(u64) -> AlgoFn<D>,
) -> Vec<(ProcessId, AlgoFn<D>)> {
    proposals
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (ProcessId(i), make(v))))
        .collect()
}

/// The canonical distinct-proposals vector `[1, 2, …, n+1]` used by most
/// experiments (distinct inputs are the hard case for set agreement).
pub fn distinct_proposals(n_plus_1: usize) -> Vec<Option<u64>> {
    (0..n_plus_1).map(|i| Some(i as u64 + 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_sim::algo;

    #[test]
    fn skips_non_participants() {
        let algos = to_algorithms::<()>(&[Some(1), None, Some(3)], |v| {
            algo(move |ctx| async move {
                ctx.decide(v).await?;
                Ok(())
            })
        });
        let pids: Vec<ProcessId> = algos.iter().map(|(p, _)| *p).collect();
        assert_eq!(pids, vec![ProcessId(0), ProcessId(2)]);
    }

    #[test]
    fn distinct_proposals_shape() {
        assert_eq!(distinct_proposals(3), vec![Some(1), Some(2), Some(3)]);
    }
}
