//! Mutation-detection suite: each seeded bug must fall to a fixed-seed,
//! fixed-budget campaign, and the shrunk counterexample token must (a)
//! still violate the spec under both engines with bit-identical runs and
//! (b) match a golden snapshot, so shrink-quality regressions are caught.
//!
//! To regenerate the goldens after an intentional generator change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p upsilon-fuzz --test mutants
//! ```

use std::fs;
use std::path::PathBuf;
use upsilon_check::{replay_token, run_token, CheckConfig};
use upsilon_fuzz::{fuzz, FuzzConfig, FuzzViolation};
use upsilon_scenario::testkit as samples;
use upsilon_sim::{EngineKind, FdValue, ProcessId};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the golden file, or rewrites the file when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Runs the fixed-seed campaign, asserts the expected spec fell, replays
/// the shrunk token bit-identically under both engines, and snapshots it.
fn hunt<D: FdValue>(
    cfg: &CheckConfig<D>,
    seed: u64,
    rounds: usize,
    execs: u64,
    spec: &str,
    golden: &str,
) -> FuzzViolation {
    let fcfg = FuzzConfig::new(cfg.clone())
        .seed(seed)
        .budget(rounds, execs);
    let report = fuzz(&fcfg, &[]);
    let v = report
        .violations
        .iter()
        .find(|v| v.spec == spec)
        .unwrap_or_else(|| {
            panic!(
                "seeded bug not found: wanted {spec:?} within {} execs (seed {seed}), got {:?}",
                rounds as u64 * execs,
                report
                    .violations
                    .iter()
                    .map(|v| &v.spec)
                    .collect::<Vec<_>>()
            )
        })
        .clone();

    // The shrunk token must re-execute bit-identically under both engines
    // and still violate the spec there.
    let inline = run_token(cfg, &v.token, EngineKind::Inline);
    let threads = run_token(cfg, &v.token, EngineKind::Threads);
    assert_eq!(
        inline.run.events(),
        threads.run.events(),
        "engines must replay the token to the same event sequence"
    );
    assert_eq!(inline.run.decisions(), threads.run.decisions());
    for engine in [EngineKind::Inline, EngineKind::Threads] {
        let out = replay_token(cfg, &v.token, engine);
        assert!(
            out.verdicts.iter().any(|(n, r)| n == spec && r.is_err()),
            "shrunk token must still violate {spec} under {engine:?}"
        );
    }

    assert_golden(golden, &format!("{}\n", v.token.encode()));
    v
}

#[test]
fn finds_snapshot_commit_bug() {
    let cfg = samples::snapshot_commit(2, 1, 12, true);
    let v = hunt(&cfg, 1, 1, 256, "k-set-agreement", "commit_buggy.uchk1");
    assert!(
        v.token.schedule.len() <= v.raw_token.schedule.len(),
        "shrinking must not grow the schedule"
    );
}

#[test]
fn finds_converge_commit_offby1() {
    let cfg = samples::converge_offby1(3, 1, 12, 1);
    hunt(&cfg, 2, 2, 512, "k-set-agreement", "converge_offby1.uchk1");
}

#[test]
fn finds_fig2_dropped_write() {
    let cfg = samples::fig2_dropped_write(2, 1, 16, 0, Some(ProcessId(1)));
    hunt(&cfg, 3, 2, 512, "k-set-agreement", "fig2_dropped.uchk1");
}

#[test]
fn sound_baselines_stay_clean() {
    // The faithful twins of each mutant survive the same budgets — the
    // suite detects the mutation, not noise in the harness.
    for (name, report) in [
        (
            "commit-sound",
            fuzz(
                &FuzzConfig::new(samples::snapshot_commit(2, 1, 12, false))
                    .seed(1)
                    .budget(1, 256),
                &[],
            ),
        ),
        (
            "converge-slack-0",
            fuzz(
                &FuzzConfig::new(samples::converge_offby1(3, 1, 12, 0))
                    .seed(2)
                    .budget(2, 512),
                &[],
            ),
        ),
        (
            "fig2-faithful",
            fuzz(
                &FuzzConfig::new(samples::fig2_dropped_write(2, 1, 16, 0, None))
                    .seed(3)
                    .budget(2, 512),
                &[],
            ),
        ),
    ] {
        assert!(
            report.ok(),
            "{name} must stay clean: {:?}",
            report.violations
        );
    }
}
