//! Property sweep over the fuzzer's determinism contracts:
//!
//! * PCT initial priorities are a bijection onto `{d, …, d + n}` for any
//!   seed, depth and process count.
//! * A campaign is a pure function of its configuration — the same seed
//!   yields the same report, regardless of worker count or chunking.
//! * Corpus entries replay to identical coverage hashes under the inline
//!   and threaded engines, so a corpus recorded by one engine drives the
//!   other bit-identically.

use proptest::prelude::*;
use upsilon_fuzz::{coverage_of_token, fuzz, FuzzConfig};
use upsilon_scenario::testkit as samples;
use upsilon_sim::{EngineKind, PctScheduler};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// The PCT priority assignment is a uniformly drawn *bijection* onto
    /// `{d, …, d + n}`: sorted, the priorities are exactly that interval,
    /// so every process is strictly ordered and every initial priority
    /// sits above every demotion value (`< d`).
    #[test]
    fn pct_priorities_are_a_bijection(
        seed in 0u64..1_000_000,
        depth in 1usize..=5,
        n_plus_1 in 1usize..=7,
    ) {
        let mut pct = PctScheduler::new(seed, depth, 64);
        let mut prios = pct.priorities(n_plus_1).to_vec();
        prop_assert_eq!(prios.len(), n_plus_1);
        prios.sort_unstable();
        let expected: Vec<u64> =
            (0..n_plus_1 as u64).map(|i| depth as u64 + i).collect();
        prop_assert_eq!(prios, expected);
        // Stable across repeated queries (assigned once, then frozen).
        prop_assert_eq!(
            pct.priorities(n_plus_1).to_vec(),
            pct.priorities(n_plus_1).to_vec()
        );
    }

    /// Same configuration, same report — including when the worker count
    /// changes, which is the whole point of the stealing pool's
    /// coordinate-ordered merge.
    #[test]
    fn campaign_is_deterministic_per_seed(seed in 0u64..1_000, workers in 1usize..=4) {
        let target = samples::fig1(3, 16, 1);
        let base = FuzzConfig::new(target).seed(seed).budget(1, 128);
        let mut serial = base.clone();
        serial.workers = 1;
        let mut wide = base;
        wide.workers = workers;
        wide.chunk = 32;
        let a = fuzz(&serial, &[]);
        let b = fuzz(&wide, &[]);
        prop_assert_eq!(a, b);
    }

    /// The explicit 1/2/8 sweep on a violating target: reports (verdicts,
    /// shrunk tokens, coverage, corpus) are `assert_eq!`-identical for
    /// every worker count the stealing pool is given.
    #[test]
    fn worker_sweep_1_2_8_is_identical(seed in 0u64..200) {
        let at = |workers: usize| {
            let mut cfg = FuzzConfig::new(samples::snapshot_commit(2, 1, 12, true))
                .seed(seed)
                .budget(2, 96);
            cfg.workers = workers;
            cfg.chunk = 16;
            fuzz(&cfg, &[])
        };
        let one = at(1);
        prop_assert_eq!(&one, &at(2));
        prop_assert_eq!(&one, &at(8));
    }

    /// Every corpus entry replays to the same coverage fingerprint under
    /// both engines: the token really does pin the run down, and coverage
    /// is a function of the run alone.
    #[test]
    fn corpus_replays_identically_across_engines(seed in 0u64..1_000) {
        let target = samples::fig1(3, 14, 1);
        let cfg = FuzzConfig::new(target.clone()).seed(seed).budget(1, 96);
        let report = fuzz(&cfg, &[]);
        prop_assert!(report.ok(), "{:?}", report.violations.first());
        for tok in &report.corpus {
            let inline = coverage_of_token(&target, tok, cfg.window, EngineKind::Inline);
            let threads = coverage_of_token(&target, tok, cfg.window, EngineKind::Threads);
            prop_assert_eq!(&inline, &threads, "token {}", tok);
        }
    }

    /// Replaying a campaign's own corpus as seeds reproduces only hashes
    /// the campaign already saw, and every entry re-earns its place: the
    /// corpus is a faithful, self-contained summary of the covering runs.
    #[test]
    fn corpus_seeds_prime_their_own_coverage(seed in 0u64..500) {
        let target = samples::fig1(3, 12, 0);
        let cfg = FuzzConfig::new(target).seed(seed).budget(1, 64);
        let report = fuzz(&cfg, &[]);
        // Replay the corpus alone (zero-round campaign): every hash the
        // corpus carried must reappear.
        let mut replay_cfg = cfg.clone();
        replay_cfg.rounds = 0;
        let replay = fuzz(&replay_cfg, &report.corpus);
        for h in &replay.coverage_hashes {
            prop_assert!(report.coverage_hashes.contains(h));
        }
        prop_assert_eq!(replay.corpus.len(), report.corpus.len(),
            "seed replay keeps exactly the entries that earned coverage");
    }
}
