//! The campaign runner: deterministic rounds of randomized executions,
//! coverage-gated corpus growth, and shrunk replayable counterexamples.
//!
//! # Determinism
//!
//! Each execution's RNG is seeded from `(campaign seed, execution index)`
//! alone. A round snapshots the corpus, fans its executions out over the
//! work-stealing pool ([`run_stealing`]) in fixed-size chunks keyed by
//! their position in the round, and merges chunk results *in coordinate
//! order*; whether one worker or sixteen processed the chunks cannot change
//! the report. Within a chunk, executions are gated against a chunk-local
//! coverage set (so most boring runs are dropped on the worker), and the
//! merger re-gates survivors against the global set — corpus membership is
//! therefore a pure function of the configuration.
//!
//! # Corpus discipline
//!
//! A run enters the corpus iff its [`conflict_coverage`] contributes a
//! window hash the campaign has not seen. Violating runs are reported (and
//! shrunk) instead of entering the corpus; seeding mutation from known-bad
//! runs would just rediscover the same bug.

use crate::plan::{fresh_plan, mutate_plan, run_plan};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;
use upsilon_check::{run_token, shrink_violation, violation_of, CheckConfig, ShrinkResult};
use upsilon_sim::{
    conflict_coverage, run_stealing, EngineKind, FdValue, Fnv64, ReplayToken, RunArena, StealJob,
};

/// Configuration of one fuzzing campaign.
#[derive(Clone)]
pub struct FuzzConfig<D: FdValue> {
    /// The system under test: algorithms, menu, specs, engine; `depth` is
    /// the schedule horizon and `max_faults` the crash budget per run.
    pub target: CheckConfig<D>,
    /// Campaign seed; every execution's randomness derives from it.
    pub seed: u64,
    /// Mutation rounds; the corpus snapshot feeding mutations refreshes
    /// between rounds.
    pub rounds: usize,
    /// Executions per round.
    pub execs_per_round: u64,
    /// Percentage (0–100) of fresh executions scheduled by PCT; the rest
    /// use the uniform seeded-random scheduler.
    pub pct_share: u32,
    /// Maximum PCT bug depth `d`; each PCT execution draws `d` from
    /// `1..=pct_depth`.
    pub pct_depth: usize,
    /// Percentage (0–100) of executions that mutate a corpus entry once
    /// the corpus is non-empty.
    pub mutate_share: u32,
    /// Conflict-pair window length for coverage hashes.
    pub window: usize,
    /// Executions per [`run_stealing`] job (fixed, so chunk boundaries —
    /// and hence the report — do not depend on worker count).
    pub chunk: u64,
    /// Worker threads (`0` = default pool).
    pub workers: usize,
    /// Stop after this many distinct counterexamples.
    pub max_violations: usize,
    /// Minimize counterexamples with delta debugging.
    pub shrink: bool,
}

impl<D: FdValue> std::fmt::Debug for FuzzConfig<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuzzConfig")
            .field("seed", &self.seed)
            .field("rounds", &self.rounds)
            .field("execs_per_round", &self.execs_per_round)
            .field("pct_share", &self.pct_share)
            .field("pct_depth", &self.pct_depth)
            .field("mutate_share", &self.mutate_share)
            .field("window", &self.window)
            .field("chunk", &self.chunk)
            .finish_non_exhaustive()
    }
}

impl<D: FdValue> FuzzConfig<D> {
    /// A campaign over `target` with the default budget (4 rounds of 1024
    /// executions), a 60/40 PCT/uniform scheduler mix, 40% corpus
    /// mutations, window-4 coverage and a four-counterexample budget.
    pub fn new(target: CheckConfig<D>) -> Self {
        FuzzConfig {
            target,
            seed: 0,
            rounds: 4,
            execs_per_round: 1024,
            pct_share: 60,
            pct_depth: 3,
            mutate_share: 40,
            window: 4,
            chunk: 256,
            workers: 0,
            max_violations: 4,
            shrink: true,
        }
    }

    /// Sets the campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution budget: `rounds` rounds of `execs_per_round`.
    pub fn budget(mut self, rounds: usize, execs_per_round: u64) -> Self {
        self.rounds = rounds;
        self.execs_per_round = execs_per_round;
        self
    }

    /// Sets the worker pool for the chunk fan-out.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the counterexample budget.
    pub fn max_violations(mut self, v: usize) -> Self {
        self.max_violations = v;
        self
    }
}

/// A violation found (and optionally shrunk) by a campaign.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzViolation {
    /// Name of the violated specification.
    pub spec: String,
    /// The violation message from the spec checker.
    pub message: String,
    /// Minimized replayable token (equals `raw_token` when shrinking is
    /// off).
    pub token: ReplayToken,
    /// The token of the execution that first hit the violation.
    pub raw_token: ReplayToken,
    /// Predicate evaluations the shrink spent.
    pub shrink_evals: u64,
    /// Choices removed by the shrink.
    pub shrink_removed: usize,
    /// Execution index that found it (`0` for corpus seed replays).
    pub exec: u64,
}

/// One point of the coverage growth curve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoveragePoint {
    /// Executions completed when the point was taken.
    pub execs: u64,
    /// Distinct coverage hashes accumulated by then.
    pub coverage: u64,
}

/// The result of [`fuzz`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzReport {
    /// Executions performed (excluding corpus seed replays).
    pub execs: u64,
    /// The global coverage set, sorted.
    pub coverage_hashes: Vec<u64>,
    /// Corpus entries in discovery order (seed entries first).
    pub corpus: Vec<ReplayToken>,
    /// Coverage growth, one point per round.
    pub growth: Vec<CoveragePoint>,
    /// Distinct counterexamples, in discovery order.
    pub violations: Vec<FuzzViolation>,
    /// Whether the violation budget cut the campaign short.
    pub truncated: bool,
}

impl FuzzReport {
    /// Whether the campaign found no violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays a token under `engine` and returns its coverage fingerprint —
/// the round-trip used by corpus integrity checks and property tests.
pub fn coverage_of_token<D: FdValue>(
    target: &CheckConfig<D>,
    token: &ReplayToken,
    window: usize,
    engine: EngineKind,
) -> Vec<u64> {
    let exec = run_token(target, token, engine);
    conflict_coverage(&exec.run, &exec.memory, window)
}

/// Per-execution RNG seed: a stable hash of campaign seed and index.
fn exec_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(campaign_seed);
    h.write_u64(index);
    h.finish()
}

/// A chunk survivor shipped to the merger.
struct Shipped {
    index: u64,
    token: ReplayToken,
    coverage: Vec<u64>,
    violation: Option<(String, String)>,
}

fn run_chunk<D: FdValue>(
    cfg: &FuzzConfig<D>,
    snapshot: &[ReplayToken],
    range: Range<u64>,
) -> Vec<Shipped> {
    let mut local: BTreeSet<u64> = BTreeSet::new();
    let mut shipped_specs: Vec<String> = Vec::new();
    let mut out = Vec::new();
    // One arena per chunk: every execution in the chunk reuses the same
    // trace-vector allocations (see `RunArena`).
    let mut arena = RunArena::new();
    for index in range {
        let mut rng = ChaCha8Rng::seed_from_u64(exec_seed(cfg.seed, index));
        let plan = if !snapshot.is_empty() && rng.gen_range(0..100u32) < cfg.mutate_share {
            let base = &snapshot[rng.gen_range(0..snapshot.len())];
            mutate_plan(cfg, base, &mut rng)
        } else {
            fresh_plan(cfg, &mut rng)
        };
        let exec = run_plan(&cfg.target, plan, &mut arena);
        let coverage = conflict_coverage(&exec.run, &exec.memory, cfg.window);
        let violation = violation_of(&cfg.target, &exec.run);
        let fresh = coverage.iter().any(|h| !local.contains(h));
        local.extend(coverage.iter().copied());
        match &violation {
            // One shipped counterexample per spec per chunk bounds the
            // merger's shrink work on buggy targets.
            Some((spec, _)) if !shipped_specs.contains(spec) => {
                shipped_specs.push(spec.clone());
                out.push(Shipped {
                    index,
                    token: exec.token,
                    coverage,
                    violation,
                });
            }
            Some(_) => {}
            None if fresh => out.push(Shipped {
                index,
                token: exec.token,
                coverage,
                violation: None,
            }),
            None => {}
        }
        arena.recycle(exec.run);
    }
    out
}

struct Merger<'a, D: FdValue> {
    cfg: &'a FuzzConfig<D>,
    global: BTreeSet<u64>,
    corpus: Vec<ReplayToken>,
    violations: Vec<FuzzViolation>,
    truncated: bool,
}

impl<D: FdValue> Merger<'_, D> {
    fn absorb_violation(&mut self, token: ReplayToken, spec: String, message: String, exec: u64) {
        if self.violations.len() >= self.cfg.max_violations {
            self.truncated = true;
            return;
        }
        let shrunk = if self.cfg.shrink {
            shrink_violation(&self.cfg.target, &token, &spec)
        } else {
            ShrinkResult {
                token: token.clone(),
                evals: 0,
                removed: 0,
            }
        };
        if self
            .violations
            .iter()
            .any(|v| v.spec == spec && v.token == shrunk.token)
        {
            return;
        }
        self.violations.push(FuzzViolation {
            spec,
            message,
            token: shrunk.token,
            raw_token: token,
            shrink_evals: shrunk.evals,
            shrink_removed: shrunk.removed,
            exec,
        });
    }

    fn absorb(&mut self, ship: Shipped) {
        let fresh = ship.coverage.iter().any(|h| !self.global.contains(h));
        self.global.extend(ship.coverage);
        match ship.violation {
            Some((spec, message)) => self.absorb_violation(ship.token, spec, message, ship.index),
            None if fresh => self.corpus.push(ship.token),
            None => {}
        }
    }
}

/// Runs a fuzzing campaign. `seeds` are corpus entries from earlier
/// campaigns (or hand-written tokens); they are replayed first to prime the
/// coverage set, and foreign seeds (wrong process count) are skipped.
/// Deterministic: the same configuration and seeds yield the same report,
/// regardless of worker count.
///
/// # Panics
///
/// Panics if the target's fault budget leaves no correct process, or if
/// `window`, `chunk`, `depth` or `execs_per_round` is zero.
pub fn fuzz<D: FdValue>(cfg: &FuzzConfig<D>, seeds: &[ReplayToken]) -> FuzzReport {
    assert!(
        cfg.target.max_faults < cfg.target.n_plus_1,
        "at least one process must stay correct"
    );
    assert!(cfg.target.depth >= 1, "schedule horizon must be positive");
    assert!(cfg.window >= 1, "coverage window must be positive");
    assert!(cfg.chunk >= 1, "chunk size must be positive");
    assert!(cfg.execs_per_round >= 1, "rounds must run executions");

    let mut merger = Merger {
        cfg,
        global: BTreeSet::new(),
        corpus: Vec::new(),
        violations: Vec::new(),
        truncated: false,
    };

    // Prime coverage from the seed corpus (serial; corpora are small
    // relative to a round).
    for tok in seeds {
        if tok.n_plus_1 != cfg.target.n_plus_1 {
            continue;
        }
        let exec = run_token(&cfg.target, tok, cfg.target.engine);
        let coverage = conflict_coverage(&exec.run, &exec.memory, cfg.window);
        let violation = violation_of(&cfg.target, &exec.run);
        merger.absorb(Shipped {
            index: 0,
            token: tok.clone(),
            coverage,
            violation,
        });
    }

    let mut growth = Vec::new();
    let mut execs = 0u64;
    for _round in 0..cfg.rounds {
        if merger.violations.len() >= cfg.max_violations {
            merger.truncated = true;
            break;
        }
        let snapshot: Arc<[ReplayToken]> = merger.corpus.clone().into();
        let round_end = execs + cfg.execs_per_round;
        let mut jobs: Vec<StealJob<'_, Vec<Shipped>>> = Vec::new();
        let mut start = execs;
        while start < round_end {
            let end = (start + cfg.chunk).min(round_end);
            let snap = Arc::clone(&snapshot);
            // The chunk's position in the round is its merge coordinate:
            // the work-stealing pool returns results in coordinate order,
            // so the merge below is identical for any worker count.
            let coord = vec![((start - execs) / cfg.chunk) as u32];
            jobs.push(StealJob {
                coord,
                run: Box::new(move |_spawn| run_chunk(cfg, &snap, start..end)),
            });
            start = end;
        }
        for shipped in run_stealing(jobs, cfg.workers) {
            for ship in shipped {
                merger.absorb(ship);
            }
        }
        execs = round_end;
        growth.push(CoveragePoint {
            execs,
            coverage: merger.global.len() as u64,
        });
    }
    if merger.violations.len() >= cfg.max_violations {
        merger.truncated = true;
    }

    FuzzReport {
        execs,
        coverage_hashes: merger.global.into_iter().collect(),
        corpus: merger.corpus,
        growth,
        violations: merger.violations,
        truncated: merger.truncated,
    }
}
