//! # upsilon-fuzz
//!
//! Coverage-guided randomized search over the simulator's run space — the
//! probabilistic complement of `upsilon-check`'s exhaustive exploration.
//! Where the checker enumerates every interleaving up to partial-order
//! equivalence (and therefore caps out at small depths), the fuzzer samples
//! *long* runs cheaply and keeps the ones that exhibit new interleaving
//! behaviour:
//!
//! * **Schedules** come from the PCT priority scheduler
//!   ([`PctScheduler`](upsilon_sim::PctScheduler), Burckhardt et al.,
//!   ASPLOS 2010) mixed with the uniform
//!   [`SeededRandom`](upsilon_sim::SeededRandom) scheduler, plus
//!   splice mutations that replay a corpus schedule prefix and let a fresh
//!   scheduler finish the run.
//! * **Crash times** and **failure-detector outputs** are mutated within
//!   [`FailurePattern`](upsilon_sim::FailurePattern) validity and the
//!   target's [`FdMenu`](upsilon_check::FdMenu), reusing `upsilon-check`'s
//!   menu oracle so every sampled history remains a function of `(p, t)`.
//! * **Coverage** is the conflict-pair window signal of
//!   [`conflict_coverage`](upsilon_sim::conflict_coverage): runs that hash
//!   new windows of the conflict sequence enter a corpus (optionally
//!   persisted on disk) that seeds later mutation rounds.
//! * **Violations** of the §3.3 run-condition validator or any configured
//!   trace-closed [`RunSpec`](upsilon_check::RunSpec) are minimized with
//!   the checker's ddmin shrink and reported as replayable `UCHK1:`
//!   tokens that re-execute bit-identically under both engines.
//!
//! Campaigns are deterministic: each execution's randomness derives only
//! from `(campaign seed, execution index)`, jobs fan out over the
//! work-stealing pool ([`run_stealing`](upsilon_sim::run_stealing)) in
//! fixed chunks keyed by their position in the round, and results merge in
//! coordinate order — the same configuration yields the same report
//! regardless of worker count.
//!
//! ```
//! use upsilon_check::samples;
//! use upsilon_fuzz::{fuzz, FuzzConfig};
//!
//! // The seeded snapshot-commit bug falls to a short campaign.
//! let cfg = FuzzConfig::new(samples::snapshot_commit(2, 1, 12, true))
//!     .seed(1)
//!     .budget(1, 256);
//! let report = fuzz(&cfg, &[]);
//! assert!(!report.ok());
//! println!("replay with: {}", report.violations[0].token);
//! ```
//!
//! See `DESIGN.md` §10 for the PCT construction, the coverage-hash
//! definition and the corpus format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod corpus;
mod plan;

pub use campaign::{coverage_of_token, fuzz, CoveragePoint, FuzzConfig, FuzzReport, FuzzViolation};
pub use corpus::{load_corpus, save_corpus_entry};

pub use upsilon_check::{CheckConfig, ReplayToken};
