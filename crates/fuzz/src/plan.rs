//! Execution plans: the deterministic recipe for one fuzzed run.
//!
//! A plan fixes everything the simulator quantifies over — the failure
//! pattern, the failure-detector pick script, and the scheduler (a scripted
//! prefix spliced into a PCT or uniform-random tail). Plans are generated
//! or mutated from a per-execution RNG that depends only on the campaign
//! seed and the execution index, so a campaign's runs are reproducible
//! one by one.

use crate::campaign::FuzzConfig;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;
use upsilon_check::{CheckConfig, MenuOracle};
use upsilon_sim::{
    Adversary, FailurePattern, FdValue, Memory, PctScheduler, ProcessId, ReplayToken, Run,
    RunArena, Scripted, SeededRandom, SimBuilder, Time,
};

/// Values drawn for fd pick scripts: menus in practice offer at most a
/// handful of candidates and the menu oracle clamps overshoots, so a small
/// range keeps mutations meaningful without losing any reachable pick.
const PICK_RANGE: u32 = 4;

/// Upper bound on the length of a freshly generated pick script; queries
/// past the script default to candidate 0 (the base history).
const PICK_SCRIPT_LEN: usize = 6;

/// One fully determined fuzz execution.
#[derive(Clone, Debug)]
pub(crate) struct ExecPlan {
    /// Crash time per process (`None` = correct), within the target's
    /// fault budget.
    pub crashes: Vec<Option<Time>>,
    /// Failure-detector candidate picks, per process.
    pub picks: Vec<Vec<u32>>,
    /// Scripted schedule prefix (empty for fresh executions).
    pub prefix: Vec<ProcessId>,
    /// `Some((seed, depth))` drives the tail with a PCT scheduler; `None`
    /// with the uniform seeded-random scheduler.
    pub pct: Option<(u64, usize)>,
    /// Seed of the uniform tail scheduler when `pct` is `None`.
    pub sched_seed: u64,
}

/// The result of running one plan: the canonical replay token plus the run
/// and memory needed for coverage and spec checking.
#[derive(Debug)]
pub(crate) struct PlanExec<D: FdValue> {
    pub token: ReplayToken,
    pub run: Run<D>,
    pub memory: Memory,
}

fn draw_tail<D: FdValue>(cfg: &FuzzConfig<D>, rng: &mut ChaCha8Rng) -> (Option<(u64, usize)>, u64) {
    let seed = rng.next_u64();
    if rng.gen_range(0..100u32) < cfg.pct_share {
        (Some((seed, rng.gen_range(1..=cfg.pct_depth.max(1)))), seed)
    } else {
        (None, seed)
    }
}

fn fault_budget<D: FdValue>(target: &CheckConfig<D>) -> usize {
    target.max_faults.min(target.n_plus_1.saturating_sub(1))
}

/// A plan drawn from scratch: random crashes within the fault budget,
/// short random pick scripts, and a PCT or uniform scheduler.
pub(crate) fn fresh_plan<D: FdValue>(cfg: &FuzzConfig<D>, rng: &mut ChaCha8Rng) -> ExecPlan {
    let n = cfg.target.n_plus_1;
    let horizon = cfg.target.depth as u64;
    let budget = fault_budget(&cfg.target);
    let faults = if budget == 0 {
        0
    } else {
        rng.gen_range(0..=budget)
    };
    // Fisher–Yates over process indices; the first `faults` crash.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut crashes = vec![None; n];
    for &p in order.iter().take(faults) {
        crashes[p] = Some(Time(rng.gen_range(0..=horizon)));
    }
    let picks = (0..n)
        .map(|_| {
            let len = rng.gen_range(0..=PICK_SCRIPT_LEN);
            (0..len).map(|_| rng.gen_range(0..PICK_RANGE)).collect()
        })
        .collect();
    let (pct, sched_seed) = draw_tail(cfg, rng);
    ExecPlan {
        crashes,
        picks,
        prefix: Vec::new(),
        pct,
        sched_seed,
    }
}

/// A plan derived from a corpus entry by one mutation: a crash move/add/
/// remove (kept within the fault budget), a failure-detector pick tweak,
/// or a schedule splice (truncate the recorded schedule and let a fresh
/// scheduler finish the run). The untouched dimensions replay the corpus
/// entry exactly, so mutants stay near the interesting behaviour that
/// earned the entry its place.
pub(crate) fn mutate_plan<D: FdValue>(
    cfg: &FuzzConfig<D>,
    base: &ReplayToken,
    rng: &mut ChaCha8Rng,
) -> ExecPlan {
    let n = cfg.target.n_plus_1;
    let horizon = cfg.target.depth as u64;
    let mut crashes = base.crashes.clone();
    let mut picks = base.fd_choices.clone();
    picks.resize(n, Vec::new());
    let mut prefix = base.schedule.clone();
    match rng.gen_range(0..3u32) {
        0 => {
            // Crash tweak. Adding is bounded by the fault budget; the base
            // already satisfies it, so one undo restores validity.
            let p = rng.gen_range(0..n);
            if crashes[p].is_some() && rng.gen_bool(0.5) {
                crashes[p] = None;
            } else {
                crashes[p] = Some(Time(rng.gen_range(0..=horizon)));
                if crashes.iter().flatten().count() > fault_budget(&cfg.target) {
                    crashes[p] = None;
                }
            }
        }
        1 => {
            // Failure-detector pick tweak: overwrite or append one pick.
            let p = rng.gen_range(0..n);
            let k = rng.gen_range(0..=picks[p].len());
            let v = rng.gen_range(0..PICK_RANGE);
            if k == picks[p].len() {
                picks[p].push(v);
            } else {
                picks[p][k] = v;
            }
        }
        _ => {
            // Schedule splice: keep a prefix, fresh tail scheduler.
            let cut = rng.gen_range(0..=prefix.len());
            prefix.truncate(cut);
        }
    }
    let (pct, sched_seed) = draw_tail(cfg, rng);
    ExecPlan {
        crashes,
        picks,
        prefix,
        pct,
        sched_seed,
    }
}

/// Runs a plan live under the target's engine and packs the outcome into a
/// canonical [`ReplayToken`]: the recorded schedule, crash times clamped to
/// the schedule length (a crash after the last step is equivalent — same
/// events, same `correct(F)`), and pick scripts normalized to the picks the
/// menu oracle actually served. The token re-executes the run
/// bit-identically via [`upsilon_check::run_token`] under either engine.
pub(crate) fn run_plan<D: FdValue>(
    target: &CheckConfig<D>,
    plan: ExecPlan,
    arena: &mut RunArena<D>,
) -> PlanExec<D> {
    let n = target.n_plus_1;
    let horizon = target.depth as u64;
    let mut pb = FailurePattern::builder(n);
    for (i, t) in plan.crashes.iter().enumerate() {
        if let Some(t) = t {
            pb = pb.crash(ProcessId(i), *t);
        }
    }
    let oracle = MenuOracle::new(std::sync::Arc::clone(&target.menu), n, plan.picks);
    let log = oracle.log();
    let tail: Box<dyn Adversary> = match plan.pct {
        Some((seed, depth)) => Box::new(PctScheduler::new(seed, depth, horizon.max(1))),
        None => Box::new(SeededRandom::new(plan.sched_seed)),
    };
    let mut builder = SimBuilder::<D>::new(pb.build())
        .oracle(oracle)
        .adversary(Scripted::then(plan.prefix, tail))
        .engine(target.engine)
        .max_steps(horizon);
    for (i, a) in (target.algos)().into_iter().enumerate() {
        if let Some(a) = a {
            builder = builder.spawn(ProcessId(i), a);
        }
    }
    let outcome = builder.run_with(arena);
    let schedule = outcome.run.schedule();
    let len = schedule.len() as u64;
    let crashes: Vec<Option<Time>> = plan
        .crashes
        .iter()
        .map(|c| c.map(|t| Time(t.0.min(len))))
        .collect();
    let mut fd_choices: Vec<Vec<u32>> = vec![Vec::new(); n];
    for q in log.lock().expect("query log lock").iter() {
        let script = &mut fd_choices[q.pid.index()];
        if script.len() <= q.k as usize {
            script.resize(q.k as usize + 1, 0);
        }
        script[q.k as usize] = q.pick;
    }
    PlanExec {
        token: ReplayToken {
            n_plus_1: n,
            crashes,
            fd_choices,
            schedule,
        },
        run: outcome.run,
        memory: outcome.memory,
    }
}
