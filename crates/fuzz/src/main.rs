//! Command-line front end: `cargo run -p upsilon-fuzz -- --rounds 4`.
//!
//! Runs one fuzzing campaign over a sample configuration, prints the
//! campaign counters and every (shrunk) counterexample token, and
//! optionally enforces expectations for CI: `--expect clean`,
//! `--expect violation`, and a `--min-execs-per-sec` floor. With
//! `--corpus DIR` the campaign seeds from — and saves new entries back
//! to — a persistent on-disk corpus.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use upsilon_check::{samples, CheckConfig};
use upsilon_fuzz::{fuzz, load_corpus, save_corpus_entry, FuzzConfig, FuzzReport};
use upsilon_sim::{FdValue, ProcessId};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Expect {
    Clean,
    Violation,
}

#[derive(Clone, Debug)]
struct Args {
    config: String,
    n: usize,
    depth: usize,
    faults: Option<usize>,
    k: Option<usize>,
    seed: u64,
    rounds: usize,
    execs: u64,
    chunk: u64,
    workers: usize,
    pct_share: u32,
    pct_depth: usize,
    mutate_share: u32,
    window: usize,
    max_violations: usize,
    no_shrink: bool,
    corpus: Option<PathBuf>,
    expect: Option<Expect>,
    min_execs_per_sec: f64,
    json: Option<String>,
}

const USAGE: &str = "usage: upsilon-fuzz [options]
  --config NAME        fig1 | fig1-mutating | fig2 | pinned | commit-sound | commit-buggy |
                       converge-offby1 | fig2-dropped (default fig1)
  --n N                number of processes (default 3)
  --depth N            schedule horizon per execution (default 24)
  --faults N           crash-injection budget (default 0; 1 for pinned/fig2)
  --k N                agreement parameter for commit/converge configs (default n-1)
  --seed N             campaign seed (default 0)
  --rounds N           mutation rounds (default 4)
  --execs N            executions per round (default 1024)
  --chunk N            executions per parallel job (default 256)
  --workers N          worker threads (default 0 = auto)
  --pct-share P        percent of fresh runs using the PCT scheduler (default 60)
  --pct-depth D        max PCT bug depth (default 3)
  --mutate-share P     percent of runs mutating a corpus entry (default 40)
  --window W           conflict-pair coverage window (default 4)
  --max-violations N   stop after N counterexamples (default 4)
  --no-shrink          skip counterexample minimization
  --corpus DIR         load seeds from and save new entries to DIR
  --expect WHAT        clean | violation; exit 1 when not met
  --min-execs-per-sec F  exit 1 when throughput falls below F
  --json PATH          write a machine-readable report
  --help               this text";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: "fig1".to_string(),
        n: 3,
        depth: 24,
        faults: None,
        k: None,
        seed: 0,
        rounds: 4,
        execs: 1024,
        chunk: 256,
        workers: 0,
        pct_share: 60,
        pct_depth: 3,
        mutate_share: 40,
        window: 4,
        max_violations: 4,
        no_shrink: false,
        corpus: None,
        expect: None,
        min_execs_per_sec: 0.0,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--config" => args.config = value("--config")?,
            "--n" => args.n = num("--n", value("--n")?)?,
            "--depth" => args.depth = num("--depth", value("--depth")?)?,
            "--faults" => args.faults = Some(num("--faults", value("--faults")?)?),
            "--k" => args.k = Some(num("--k", value("--k")?)?),
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            "--rounds" => args.rounds = num("--rounds", value("--rounds")?)?,
            "--execs" => args.execs = num("--execs", value("--execs")?)?,
            "--chunk" => args.chunk = num("--chunk", value("--chunk")?)?,
            "--workers" => args.workers = num("--workers", value("--workers")?)?,
            "--pct-share" => args.pct_share = num("--pct-share", value("--pct-share")?)?,
            "--pct-depth" => args.pct_depth = num("--pct-depth", value("--pct-depth")?)?,
            "--mutate-share" => {
                args.mutate_share = num("--mutate-share", value("--mutate-share")?)?
            }
            "--window" => args.window = num("--window", value("--window")?)?,
            "--max-violations" => {
                args.max_violations = num("--max-violations", value("--max-violations")?)?
            }
            "--no-shrink" => args.no_shrink = true,
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--expect" => {
                args.expect = Some(match value("--expect")?.as_str() {
                    "clean" => Expect::Clean,
                    "violation" => Expect::Violation,
                    other => return Err(format!("--expect: unknown expectation {other:?}")),
                })
            }
            "--min-execs-per-sec" => {
                args.min_execs_per_sec = num("--min-execs-per-sec", value("--min-execs-per-sec")?)?
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn tune<D: FdValue>(target: CheckConfig<D>, args: &Args) -> FuzzConfig<D> {
    let mut cfg = FuzzConfig::new(target)
        .seed(args.seed)
        .budget(args.rounds, args.execs)
        .workers(args.workers)
        .max_violations(args.max_violations);
    cfg.chunk = args.chunk;
    cfg.pct_share = args.pct_share;
    cfg.pct_depth = args.pct_depth;
    cfg.mutate_share = args.mutate_share;
    cfg.window = args.window;
    cfg.shrink = !args.no_shrink;
    cfg
}

fn run_campaign<D: FdValue>(
    args: &Args,
    target: FuzzConfig<D>,
    seeds: &mut Vec<String>,
) -> Result<FuzzReport, String> {
    let loaded = match &args.corpus {
        Some(dir) => load_corpus(dir).map_err(|e| format!("--corpus: {e}"))?,
        None => Vec::new(),
    };
    let report = fuzz(&target, &loaded);
    if let Some(dir) = &args.corpus {
        for tok in &report.corpus {
            save_corpus_entry(dir, tok).map_err(|e| format!("--corpus: {e}"))?;
        }
    }
    *seeds = loaded.iter().map(|t| t.encode()).collect();
    Ok(report)
}

fn campaign(args: &Args, seeds: &mut Vec<String>) -> Result<FuzzReport, String> {
    let n = args.n;
    let faults = args.faults.unwrap_or(0);
    let k = args.k.unwrap_or(n.saturating_sub(1)).max(1);
    match args.config.as_str() {
        "fig1" => run_campaign(
            args,
            tune(samples::fig1(n, args.depth, faults), args),
            seeds,
        ),
        "fig1-mutating" => run_campaign(
            args,
            tune(samples::fig1_mutating(n, args.depth, faults, 1), args),
            seeds,
        ),
        "fig2" => {
            let f = args.faults.unwrap_or(1).max(1);
            run_campaign(args, tune(samples::fig2(n, f, args.depth, f), args), seeds)
        }
        "pinned" => {
            let f = args.faults.unwrap_or(1).max(1);
            run_campaign(
                args,
                tune(samples::pinned_upsilon(n, f, args.depth), args),
                seeds,
            )
        }
        "commit-sound" => run_campaign(
            args,
            tune(samples::snapshot_commit(n, k, args.depth, false), args),
            seeds,
        ),
        "commit-buggy" => run_campaign(
            args,
            tune(samples::snapshot_commit(n, k, args.depth, true), args),
            seeds,
        ),
        "converge-offby1" => run_campaign(
            args,
            tune(samples::converge_offby1(n, k, args.depth, 1), args),
            seeds,
        ),
        "fig2-dropped" => {
            let f = args.faults.unwrap_or(1).max(1);
            run_campaign(
                args,
                tune(
                    samples::fig2_dropped_write(n, f, args.depth, 0, Some(ProcessId(n - 1))),
                    args,
                ),
                seeds,
            )
        }
        other => Err(format!("unknown config {other:?}")),
    }
}

fn json_report(report: &FuzzReport, execs_per_sec: f64) -> String {
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"spec\":{:?},\"token\":{:?},\"raw_token\":{:?},\"shrink_evals\":{},\"shrink_removed\":{},\"exec\":{}}}",
                v.spec,
                v.token.encode(),
                v.raw_token.encode(),
                v.shrink_evals,
                v.shrink_removed,
                v.exec
            )
        })
        .collect();
    let growth: Vec<String> = report
        .growth
        .iter()
        .map(|g| format!("{{\"execs\":{},\"coverage\":{}}}", g.execs, g.coverage))
        .collect();
    format!(
        "{{\n  \"execs\": {},\n  \"coverage\": {},\n  \"corpus\": {},\n  \"truncated\": {},\n  \"execs_per_sec\": {:.1},\n  \"growth\": [{}],\n  \"violations\": [{}]\n}}\n",
        report.execs,
        report.coverage_hashes.len(),
        report.corpus.len(),
        report.truncated,
        execs_per_sec,
        growth.join(","),
        violations.join(",")
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let mut seeds = Vec::new();
    let report = match campaign(&args, &mut seeds) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let execs_per_sec = report.execs as f64 / elapsed;

    println!(
        "config={} n={} depth={} seed={} rounds={} execs/round={}",
        args.config, args.n, args.depth, args.seed, args.rounds, args.execs
    );
    println!(
        "execs={} coverage={} corpus={} (+{} seeds) truncated={} execs/sec={:.0}",
        report.execs,
        report.coverage_hashes.len(),
        report.corpus.len(),
        seeds.len(),
        report.truncated,
        execs_per_sec
    );
    for g in &report.growth {
        println!("  growth: execs={} coverage={}", g.execs, g.coverage);
    }
    for v in &report.violations {
        println!("violation[{}] @exec {}: {}", v.spec, v.exec, v.message);
        println!("  token     = {}", v.token);
        println!(
            "  raw_token = {} (shrunk by {} choices in {} evals)",
            v.raw_token, v.shrink_removed, v.shrink_evals
        );
    }
    if report.ok() {
        println!("no violations");
    }

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, json_report(&report, execs_per_sec)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut failed = false;
    match args.expect {
        Some(Expect::Clean) if !report.ok() => {
            eprintln!("FAIL: expected a clean campaign, found a violation");
            failed = true;
        }
        Some(Expect::Violation) if report.ok() => {
            eprintln!("FAIL: expected a counterexample, campaign came back clean");
            failed = true;
        }
        _ => {}
    }
    if args.min_execs_per_sec > 0.0 && execs_per_sec < args.min_execs_per_sec {
        eprintln!(
            "FAIL: {:.0} execs/sec below the floor of {:.0}",
            execs_per_sec, args.min_execs_per_sec
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
