//! On-disk corpus persistence.
//!
//! A corpus directory holds one file per entry, named
//! `<fnv64-of-token>.uchk1` and containing the `UCHK1:` encoding followed
//! by a newline. Content-addressed names make saves idempotent and merges
//! from parallel campaigns trivial (identical tokens collide into one
//! file); loading sorts by filename so the read-back order is stable across
//! filesystems.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use upsilon_sim::{Fnv64, ReplayToken};

/// The file extension of corpus entries.
pub const CORPUS_EXT: &str = "uchk1";

fn entry_name(token: &ReplayToken) -> String {
    let mut h = Fnv64::new();
    h.write(token.encode().as_bytes());
    format!("{:016x}.{CORPUS_EXT}", h.finish())
}

/// Writes `token` into `dir` (created if missing), named by content hash.
/// Re-saving an existing entry rewrites the same file. Returns the path
/// written.
pub fn save_corpus_entry(dir: &Path, token: &ReplayToken) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(entry_name(token));
    fs::write(&path, format!("{}\n", token.encode()))?;
    Ok(path)
}

/// Loads every `.uchk1` entry in `dir`, sorted by filename. A missing
/// directory is an empty corpus; an unparsable entry is an
/// [`io::ErrorKind::InvalidData`] error naming the file.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<ReplayToken>> {
    let mut names: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == CORPUS_EXT))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    names.sort();
    names
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path)?;
            ReplayToken::parse(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_sim::{ProcessId, Time};

    fn sample(seed: u64) -> ReplayToken {
        ReplayToken {
            n_plus_1: 3,
            crashes: vec![None, Some(Time(seed)), None],
            fd_choices: vec![vec![0, 1], Vec::new(), vec![2]],
            schedule: vec![ProcessId(0), ProcessId(2), ProcessId(0)],
        }
    }

    #[test]
    fn round_trips_and_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("upsilon-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = sample(1);
        let b = sample(2);
        let p1 = save_corpus_entry(&dir, &a).unwrap();
        let p2 = save_corpus_entry(&dir, &a).unwrap();
        assert_eq!(p1, p2, "identical tokens share one file");
        save_corpus_entry(&dir, &b).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains(&a) && loaded.contains(&b));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_empty() {
        let dir = Path::new("/nonexistent/upsilon-corpus");
        assert_eq!(load_corpus(dir).unwrap(), Vec::new());
    }

    #[test]
    fn garbage_entry_is_invalid_data() {
        let dir = std::env::temp_dir().join(format!("upsilon-corpus-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("deadbeef.uchk1"), "not a token\n").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
