//! Executable versions of the paper's impossibility proofs: Theorem 1
//! (Υ is strictly weaker than Ω_n for `n ≥ 2`) and Theorem 5 (Υ^f is
//! strictly weaker than Ω^f for `2 ≤ f ≤ n`).
//!
//! The theorems quantify over *all* algorithms, so they cannot be "run";
//! what can be run is the proofs' adversary construction against any
//! *concrete* candidate extraction algorithm:
//!
//! 1. Fix the Υ^f history to output `U = {p_1, …, p_n}` constantly (a
//!    legal history both when `p_{n+1}` is correct and when every process
//!    of any `L` with `|Π − L| < |U|` is faulty — the pivot of the proof).
//! 2. Run everyone until some process outputs a candidate set `L_1`
//!    (`|L_1| = f`).
//! 3. Phase `i`: let every process take exactly one step, then let **only
//!    the processes of `Π − L_i`** take steps. This finite run is
//!    indistinguishable, for them, from a run where every process of `L_i`
//!    is faulty — where the Ω^f specification forces an output containing
//!    a member of `Π − L_i`, hence a set `L_{i+1} ≠ L_i`.
//! 4. Repeat. A *sound* candidate changes its output every phase — the
//!    adversary builds a run where the emulated Ω^f never stabilizes; a
//!    candidate that refuses to change is *refuted*: in the extension
//!    where `L_i` really crash it violates the Ω^f specification.
//!
//! Either verdict certifies that the candidate fails, which is exactly the
//! theorem's content for that candidate. The game is sound only for
//! `f ≥ 2` (for `f = 1` the pivot `U ≠ Π − L` fails — consistently,
//! Υ¹ → Ω *is* extractable in `E_1`, see [`crate::upsilon1_omega`]).

use std::sync::{Arc, Mutex};
use upsilon_sim::{
    Adversary, AlgoFn, DummyOracle, FailurePattern, Output, ProcessId, ProcessSet, SchedView,
    SimBuilder, StopReason,
};

/// A candidate algorithm claiming to extract Ω^f (sets of size `f`,
/// eventually stable, containing a correct process) from Υ^f.
///
/// Implementations publish their current output via
/// [`Output::LeaderSet`] and run forever.
pub trait Candidate {
    /// Human-readable name for tables.
    fn name(&self) -> &'static str;

    /// Builds the per-process algorithms. `set_size` is `f`: the size of
    /// the sets the candidate must output (Theorem 1 is `set_size = n`).
    fn algorithms(&self, n_plus_1: usize, set_size: usize) -> Vec<AlgoFn<ProcessSet>>;
}

/// Configuration of the lower-bound game.
#[derive(Clone, Copy, Debug)]
pub struct GameConfig {
    /// System size `n + 1` (requires `n ≥ 2`).
    pub n_plus_1: usize,
    /// Size of the candidate's output sets (`f`; `n` for Theorem 1).
    /// Requires `2 ≤ set_size ≤ n`... with `set_size = n` allowed.
    pub set_size: usize,
    /// Number of adversary phases to play.
    pub phases: usize,
    /// Steps allowed per phase before declaring the candidate stuck.
    pub phase_budget: u64,
}

impl GameConfig {
    /// The Theorem 1 game: candidate extracts Ω_n from Υ.
    pub fn theorem_1(n_plus_1: usize, phases: usize) -> Self {
        GameConfig {
            n_plus_1,
            set_size: n_plus_1 - 1,
            phases,
            phase_budget: 20_000,
        }
    }

    /// The Theorem 5 game: candidate extracts Ω^f from Υ^f.
    pub fn theorem_5(n_plus_1: usize, f: usize, phases: usize) -> Self {
        GameConfig {
            n_plus_1,
            set_size: f,
            phases,
            phase_budget: 20_000,
        }
    }
}

/// The game's verdict about one candidate. Both variants certify failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GameVerdict {
    /// The candidate kept changing its output: the adversary constructed a
    /// run prefix in which the emulated Ω^f changed `changes` times — it
    /// never stabilizes.
    NeverStabilizes {
        /// Number of forced output changes (= phases played).
        changes: usize,
        /// The sequence of sets the candidate was forced through.
        trajectory: Vec<ProcessSet>,
    },
    /// The candidate stopped changing: in the extension of the current run
    /// where the processes of `stuck_on` crash, its stable output contains
    /// no correct process — an Ω^f specification violation.
    Refuted {
        /// The phase at which the candidate got stuck.
        phase: usize,
        /// The set the candidate refused to move away from.
        stuck_on: ProcessSet,
        /// Sets observed before getting stuck.
        trajectory: Vec<ProcessSet>,
    },
}

impl GameVerdict {
    /// Number of output changes the adversary forced.
    pub fn changes(&self) -> usize {
        match self {
            GameVerdict::NeverStabilizes { changes, .. } => *changes,
            GameVerdict::Refuted { trajectory, .. } => trajectory.len().saturating_sub(1),
        }
    }
}

#[derive(Debug)]
enum Mode {
    /// Run everyone until the first output appears.
    WarmUp,
    /// Each process takes exactly one step (the proof's interlude).
    OneStepEach { queue: Vec<ProcessId> },
    /// Only `Π − current` runs, waiting for a fresh output ≠ `current`.
    Solo,
}

#[derive(Debug)]
struct GameState {
    mode: Mode,
    current: Option<ProcessSet>,
    trajectory: Vec<ProcessSet>,
    phase: usize,
    phase_baseline: Vec<u64>,
    phase_steps: u64,
    verdict: Option<GameVerdict>,
}

/// The reactive adversary driving the Theorem 1/5 construction.
struct GameAdversary {
    cfg: GameConfig,
    state: Arc<Mutex<GameState>>,
    rr: usize,
}

impl GameAdversary {
    /// Evaluates the candidate's emulated variables against the game state.
    ///
    /// The emulated Ω^f output is a *held variable*: its current value at a
    /// process is that process's latest `LeaderSet` output. A phase
    /// succeeds as soon as some process of `Π − L_i` that has moved in this
    /// phase (the proof's "after R_i") holds a value `≠ L_i`.
    fn evaluate(&self, view: &SchedView<'_>) {
        let mut st = self.state.lock().expect("game state lock");
        match st.mode {
            Mode::WarmUp => {
                // Wait for the first published set, from anyone.
                let first = view.last_output.iter().flatten().find_map(|o| match o {
                    Output::LeaderSet(l) => Some(*l),
                    _ => None,
                });
                if let Some(l) = first {
                    st.current = Some(l);
                    st.trajectory.push(l);
                    st.phase = 1;
                    st.phase_baseline = view.steps_by.to_vec();
                    st.phase_steps = 0;
                    st.mode = Mode::OneStepEach {
                        queue: all_pids(self.cfg.n_plus_1),
                    };
                }
            }
            Mode::Solo => {
                let cur = st.current.expect("solo implies a current set");
                let moved_and_changed = cur.complement(self.cfg.n_plus_1).iter().find_map(|q| {
                    // One step in the interlude plus at least one solo
                    // step certify an output "after R_i".
                    let moved = view.steps_by[q.index()] >= st.phase_baseline[q.index()] + 2;
                    match view.last_output[q.index()] {
                        Some(Output::LeaderSet(l)) if moved && l != cur => Some(l),
                        _ => None,
                    }
                });
                if let Some(l) = moved_and_changed {
                    st.current = Some(l);
                    st.trajectory.push(l);
                    if st.phase >= self.cfg.phases {
                        st.verdict = Some(GameVerdict::NeverStabilizes {
                            changes: st.phase,
                            trajectory: st.trajectory.clone(),
                        });
                    } else {
                        st.phase += 1;
                        st.phase_baseline = view.steps_by.to_vec();
                        st.phase_steps = 0;
                        st.mode = Mode::OneStepEach {
                            queue: all_pids(self.cfg.n_plus_1),
                        };
                    }
                }
            }
            Mode::OneStepEach { .. } => {}
        }
    }
}

fn all_pids(n_plus_1: usize) -> Vec<ProcessId> {
    (0..n_plus_1).map(ProcessId).collect()
}

impl Adversary for GameAdversary {
    fn next_process(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        self.evaluate(view);
        let mut st = self.state.lock().expect("game state lock");
        if st.verdict.is_some() {
            return None;
        }
        st.phase_steps += 1;
        if st.phase_steps > self.cfg.phase_budget {
            let verdict = match st.current {
                None => GameVerdict::Refuted {
                    phase: 0,
                    stuck_on: ProcessSet::EMPTY,
                    trajectory: Vec::new(),
                },
                Some(cur) => GameVerdict::Refuted {
                    phase: st.phase,
                    stuck_on: cur,
                    trajectory: st.trajectory.clone(),
                },
            };
            st.verdict = Some(verdict);
            return None;
        }
        if matches!(&st.mode, Mode::OneStepEach { queue } if queue.is_empty()) {
            st.mode = Mode::Solo;
        }
        match &mut st.mode {
            Mode::WarmUp => pick_round_robin(&mut self.rr, view.eligible),
            Mode::OneStepEach { queue } => {
                let p = queue.pop().expect("empty queues transition to Solo above");
                Some(p)
            }
            Mode::Solo => {
                let allowed = st
                    .current
                    .expect("phase implies a current set")
                    .complement(self.cfg.n_plus_1);
                pick_round_robin(&mut self.rr, view.eligible.intersection(allowed))
            }
        }
    }

    fn describe(&self) -> String {
        format!("theorem-1/5 game (set size {})", self.cfg.set_size)
    }
}

/// The game's pinned Υ history value: `U = {p_1, …, p_n}`, output
/// constantly at every process.
///
/// This is the pivot of the Theorem 1/5 proofs — legal both when `p_{n+1}`
/// is correct and when the processes of a candidate set `L` are faulty —
/// but it is *not* legal in every failure pattern: crash `p_{n+1}` and
/// `U = correct(F)`, which Υ's specification forbids. The systematic
/// explorer exploits exactly this (see `upsilon-check`'s use of
/// [`crate::spec::UpsilonFaithfulSpec`]) to produce a counterexample token
/// against the pinned history.
pub fn pinned_history(n_plus_1: usize) -> ProcessSet {
    ProcessSet::singleton(ProcessId(n_plus_1 - 1)).complement(n_plus_1)
}

fn pick_round_robin(cursor: &mut usize, set: ProcessSet) -> Option<ProcessId> {
    if set.is_empty() {
        return None;
    }
    let n = ProcessSet::MAX_PROCESSES;
    for off in 0..n {
        let i = (*cursor + off) % n;
        if set.contains(ProcessId(i)) {
            *cursor = i + 1;
            return Some(ProcessId(i));
        }
    }
    None
}

/// Plays the lower-bound game against `candidate` and returns the verdict.
///
/// The run is failure-free with a dummy Υ^f history constantly outputting
/// `U = {p_1, …, p_n}` (legal in every scenario the adversary exploits).
///
/// ```
/// use upsilon_extract::{play, ActivityCandidate, GameConfig, GameVerdict};
/// let verdict = play(GameConfig::theorem_1(4, 3), &ActivityCandidate);
/// assert!(matches!(verdict, GameVerdict::NeverStabilizes { changes: 3, .. }));
/// ```
///
/// # Panics
///
/// Panics if the configuration is out of the theorems' range
/// (`n ≥ 2`, `2 ≤ set_size ≤ n`).
pub fn play(cfg: GameConfig, candidate: &dyn Candidate) -> GameVerdict {
    let n = cfg.n_plus_1 - 1;
    assert!(n >= 2, "Theorem 1/5 require n ≥ 2");
    assert!(
        (2..=n).contains(&cfg.set_size),
        "the game is sound only for 2 ≤ f ≤ n (Υ¹ → Ω is genuinely extractable)"
    );

    // The pinned history: U = {p1..pn} forever, at everyone.
    let u = pinned_history(cfg.n_plus_1);
    let state = Arc::new(Mutex::new(GameState {
        mode: Mode::WarmUp,
        current: None,
        trajectory: Vec::new(),
        phase: 0,
        phase_baseline: vec![0; cfg.n_plus_1],
        phase_steps: 0,
        verdict: None,
    }));
    let adversary = GameAdversary {
        cfg,
        state: Arc::clone(&state),
        rr: 0,
    };

    let mut builder = SimBuilder::<ProcessSet>::new(FailurePattern::failure_free(cfg.n_plus_1))
        .oracle(DummyOracle::new(u))
        .adversary(adversary)
        .max_steps(cfg.phase_budget * (cfg.phases as u64 + 2) * 2);
    for (i, algo) in candidate
        .algorithms(cfg.n_plus_1, cfg.set_size)
        .into_iter()
        .enumerate()
    {
        builder = builder.spawn(ProcessId(i), algo);
    }
    let outcome = builder.run();

    let st = Arc::try_unwrap(state)
        .expect("adversary dropped with the run")
        .into_inner()
        .expect("game state lock");
    st.verdict.unwrap_or_else(|| {
        // Budget ran out at the runner level before the adversary ruled.
        debug_assert_eq!(outcome.run.stop_reason(), StopReason::BudgetExhausted);
        GameVerdict::Refuted {
            phase: st.phase,
            stuck_on: st.current.unwrap_or(ProcessSet::EMPTY),
            trajectory: st.trajectory,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{ActivityCandidate, MirrorCandidate, StubbornCandidate};

    #[test]
    fn activity_candidate_is_forced_to_change_forever() {
        let cfg = GameConfig::theorem_1(4, 6);
        let verdict = play(cfg, &ActivityCandidate);
        match verdict {
            GameVerdict::NeverStabilizes {
                changes,
                trajectory,
            } => {
                assert_eq!(changes, 6);
                assert!(trajectory.len() >= 7);
                // Consecutive sets differ — the non-stabilization witness.
                for w in trajectory.windows(2) {
                    assert_ne!(w[0], w[1]);
                }
            }
            other => panic!("expected NeverStabilizes, got {other:?}"),
        }
    }

    #[test]
    fn forced_changes_scale_with_phases() {
        // Theorem 1's conclusion in numbers: however many phases we play,
        // the adversary forces that many changes.
        for phases in [2usize, 4, 8] {
            let verdict = play(GameConfig::theorem_1(4, phases), &ActivityCandidate);
            assert_eq!(verdict.changes(), phases);
        }
    }

    #[test]
    fn mirror_candidate_is_refuted() {
        // Outputting (a superset of) the Υ value itself gets stuck: the
        // solo process Π − L never joins the output.
        let verdict = play(GameConfig::theorem_1(4, 4), &MirrorCandidate);
        match verdict {
            GameVerdict::Refuted { stuck_on, .. } => {
                assert!(!stuck_on.is_empty());
            }
            other => panic!("expected Refuted, got {other:?}"),
        }
    }

    #[test]
    fn stubborn_candidate_is_refuted_quickly() {
        let verdict = play(GameConfig::theorem_5(5, 2, 3), &StubbornCandidate);
        assert!(
            matches!(verdict, GameVerdict::Refuted { .. }),
            "{verdict:?}"
        );
    }

    #[test]
    fn theorem_5_game_works_for_mid_range_f() {
        for f in 2..=3usize {
            let verdict = play(GameConfig::theorem_5(5, f, 4), &ActivityCandidate);
            assert_eq!(verdict.changes(), 4, "f={f}");
        }
    }

    #[test]
    #[should_panic(expected = "sound only for")]
    fn f_equal_one_is_rejected() {
        // Υ¹ → Ω is possible (see upsilon1_omega); the game must refuse to
        // "prove" otherwise.
        let _ = play(GameConfig::theorem_5(4, 1, 2), &ActivityCandidate);
    }

    #[test]
    fn verdict_changes_accessor() {
        let v = GameVerdict::Refuted {
            phase: 1,
            stuck_on: ProcessSet::EMPTY,
            trajectory: vec![ProcessSet::all(2)],
        };
        assert_eq!(v.changes(), 0);
    }
}
