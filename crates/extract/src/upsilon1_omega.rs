//! Extracting Ω from Υ¹ in the environment `E_1` (§5.3):
//!
//! > "In the reduction algorithm, every process p_i periodically writes
//! > ever-growing timestamps in the shared memory. If Υ¹_i outputs a proper
//! > subset of Π (of size n), then p_i elects the process p = Π − Υ_i;
//! > otherwise, if Υ¹ outputs Π (i.e., exactly one process is faulty), then
//! > p_i elects the process with the smallest id among n processes with the
//! > highest timestamps. Eventually, the same correct process is elected by
//! > the correct processes — the output of Ω is extracted."
//!
//! Correctness, case by case, once Υ¹ has stabilized on `U`:
//!
//! * `U ⊊ Π` (`|U| = n`): the excluded process `Π − U` is correct — if all
//!   were correct, `U ≠ correct(F) = Π` excludes nobody faulty, and the
//!   complement is trivially correct; if one process `q` is faulty then
//!   `U ≠ Π − {q}` forces `q ∈ U`, so `Π − U ⊆ correct(F)`.
//! * `U = Π`: legal only if `correct(F) ≠ Π`, i.e. (in `E_1`) exactly one
//!   process crashed. Its timestamp freezes, every correct process's
//!   timestamp eventually exceeds it, so the top-`n` set converges to
//!   `correct(F)` and the smallest-id choice stabilizes on a correct
//!   process.

use upsilon_mem::RegisterArray;
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, Key, Output, ProcessId, ProcessSet};

/// Builds the Υ¹ → Ω extraction algorithm for one process (environment
/// `E_1`). The algorithm never returns; it publishes the currently elected
/// leader via [`Output::Leader`] whenever it changes. Validate with
/// [`upsilon_fd::check_omega`].
pub fn upsilon1_to_omega_algorithm() -> AlgoFn<ProcessSet> {
    algo(move |ctx| async move { extraction_loop(&ctx).await })
}

/// Elects the smallest id among the `n` processes with the highest
/// timestamps (ties broken toward smaller ids, so a frozen timestamp loses
/// to any strictly larger one).
fn elect_from_timestamps(stamps: &[u64]) -> ProcessId {
    let n_plus_1 = stamps.len();
    let mut ids: Vec<usize> = (0..n_plus_1).collect();
    // Highest timestamp first; ties favour smaller id.
    ids.sort_by(|&a, &b| stamps[b].cmp(&stamps[a]).then(a.cmp(&b)));
    ids.truncate(n_plus_1 - 1);
    ProcessId(*ids.iter().min().expect("n ≥ 1 candidates"))
}

/// The reusable state of the Υ¹ → Ω election: one [`step`](Self::step)
/// performs a heartbeat, a Υ¹ query and an election, returning the current
/// leader estimate. Composable into other protocols: the `upsilon-core`
/// pipeline plugs it into Ω-based consensus as a `LeaderSource`, giving
/// consensus from Υ¹ in `E_1` end to end.
#[derive(Clone, Debug)]
pub struct Upsilon1Elector {
    board: RegisterArray<u64>,
    ts: u64,
}

impl Upsilon1Elector {
    /// A fresh elector for a system of `n_plus_1` processes.
    pub fn new(n_plus_1: usize) -> Self {
        Upsilon1Elector {
            board: RegisterArray::new(Key::new("T"), n_plus_1, 0),
            ts: 0,
        }
    }

    /// One election iteration: heartbeat, query Υ¹, elect.
    ///
    /// # Errors
    ///
    /// Returns [`Crashed`] if the calling process crashed.
    pub async fn step(&mut self, ctx: &Ctx<ProcessSet>) -> Result<ProcessId, Crashed> {
        let n_plus_1 = ctx.n_plus_1();
        let all = ProcessSet::all(n_plus_1);
        // Ever-growing timestamp heartbeat.
        self.ts += 1;
        self.board.write_mine(ctx, self.ts).await?;

        let u = ctx.query_fd().await?;
        if u != all {
            // Proper subset: Υ¹'s range forces |U| = n, so the complement
            // is a singleton — elect it.
            Ok(u.complement(n_plus_1)
                .min()
                .expect("complement of a proper subset"))
        } else {
            let stamps = self.board.collect(ctx).await?;
            Ok(elect_from_timestamps(&stamps))
        }
    }
}

async fn extraction_loop(ctx: &Ctx<ProcessSet>) -> Result<(), Crashed> {
    let mut elector = Upsilon1Elector::new(ctx.n_plus_1());
    let mut published: Option<ProcessId> = None;
    // #[conform(bound = "B")]
    loop {
        let leader = elector.step(ctx).await?;
        if published != Some(leader) {
            ctx.output(Output::Leader(leader)).await?;
            published = Some(leader);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_fd::{check_omega, UpsilonChoice, UpsilonOracle};
    use upsilon_sim::{FailurePattern, Run, SeededRandom, SimBuilder, Time};

    fn run_extraction(
        pattern: &FailurePattern,
        choice: UpsilonChoice,
        stab: Time,
        seed: u64,
    ) -> Run<ProcessSet> {
        let oracle = UpsilonOracle::new(pattern, 1, choice, stab, seed);
        SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(40_000)
            .spawn_all(|_| upsilon1_to_omega_algorithm())
            .run()
            .run
    }

    fn leader_samples(run: &Run<ProcessSet>) -> Vec<(Time, ProcessId, ProcessId)> {
        let published: Vec<_> = run
            .outputs()
            .iter()
            .filter_map(|(t, p, o)| match o {
                Output::Leader(l) => Some((*t, *p, *l)),
                _ => None,
            })
            .collect();
        // The elected leader is a held variable: extend each process's last
        // value to the end of the run.
        upsilon_fd::spec::held_variable_samples(run.n_plus_1(), &published, Time(run.total_steps()))
    }

    #[test]
    fn proper_subset_case_elects_the_excluded_process() {
        // Failure-free: Υ¹ must output a proper subset (Π = correct is
        // illegal), whose complement is elected.
        let pattern = FailurePattern::failure_free(4);
        let run = run_extraction(&pattern, UpsilonChoice::ComplementOfCorrect, Time(60), 3);
        let samples = leader_samples(&run);
        let report = check_omega(&pattern, &samples, 1).expect("valid Ω extraction");
        // ComplementOfCorrect excludes the smallest correct process, p1.
        assert_eq!(report.value, ProcessId(0));
    }

    #[test]
    fn full_set_case_elects_via_timestamps() {
        // One crash and U = Π: the frozen timestamp of the crashed process
        // drops out of the top-n, and the smallest correct id wins.
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(0), Time(50))
            .build();
        let run = run_extraction(&pattern, UpsilonChoice::All, Time(100), 5);
        let samples = leader_samples(&run);
        let report = check_omega(&pattern, &samples, 1).expect("valid Ω extraction");
        assert_eq!(report.value, ProcessId(1), "smallest-id correct process");
    }

    #[test]
    fn works_across_seeds_and_patterns() {
        for seed in 0..6u64 {
            for pattern in [
                FailurePattern::failure_free(3),
                FailurePattern::builder(3)
                    .crash(ProcessId(1), Time(40))
                    .build(),
                FailurePattern::builder(3)
                    .crash(ProcessId(2), Time(70))
                    .build(),
            ] {
                for choice in [UpsilonChoice::ComplementOfCorrect, UpsilonChoice::All] {
                    let run = run_extraction(&pattern, choice, Time(120), seed);
                    let samples = leader_samples(&run);
                    check_omega(&pattern, &samples, 1)
                        .unwrap_or_else(|e| panic!("{pattern} {choice:?} seed {seed}: {e}"));
                }
            }
        }
    }

    #[test]
    fn election_function_prefers_high_timestamps_then_small_ids() {
        assert_eq!(elect_from_timestamps(&[10, 3, 8]), ProcessId(0));
        assert_eq!(elect_from_timestamps(&[1, 9, 8]), ProcessId(1));
        // The frozen (smallest) stamp is excluded even when it belongs to p1.
        assert_eq!(elect_from_timestamps(&[0, 9, 8, 7]), ProcessId(1));
        // Ties favour smaller ids for membership.
        assert_eq!(elect_from_timestamps(&[5, 5, 5]), ProcessId(0));
    }
}
