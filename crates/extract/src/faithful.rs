//! Faithful detectors (§6.1) — the case where the necessity proof is fully
//! constructive.
//!
//! The paper builds intuition with a restricted class: detectors that "in
//! every run, output the same value at every correct process, and the
//! output value depends only on the set of correct processes". Such a
//! detector is just a function `outputs : 2^Π − {∅} → R`, and §6.1 observes:
//!
//! > "for each faithful failure detector D, and for each value d ∈ R_D,
//! > there exists C ∈ 2^Π − {∅} such that, for all F with correct(F) = C,
//! > D cannot output d for F. Indeed, if there is a value that can be
//! > output by D in every failure pattern, then D can be implemented from
//! > the 'dummy' failure detector… Thus, in every run, by observing the
//! > output of a 'faithful' failure detector D, we can deterministically
//! > choose a non-empty set of processes that cannot be the set of correct
//! > processes in that run — this is sufficient for emulating Υ."
//!
//! Because `outputs` is finite data, the witness map φ_D of Corollary 9 is
//! *computable by enumeration* here — no hand-written per-detector
//! arguments: `φ(d)` = any correct-set `C` with `outputs[C] ≠ d` (of size
//! `≥ n + 1 − f`), and `w(σ) = |Π − C|`. This module implements faithful
//! detectors as data, the brute-force φ computation, the non-triviality
//! test, and the resulting end-to-end extraction — demonstrated in the
//! tests and the `parity_detector` example with a detector that reveals
//! only the *parity of the number of correct processes*.

use crate::phi::{PhiMap, Witness};
use std::collections::BTreeMap;
use std::sync::Arc;
use upsilon_sim::{FailurePattern, FdValue, Oracle, ProcessId, ProcessSet, Time};

/// A faithful failure detector, given extensionally: one output value per
/// possible correct set.
#[derive(Clone, Debug)]
pub struct FaithfulSpec<D> {
    n_plus_1: usize,
    outputs: BTreeMap<u64, D>, // keyed by ProcessSet::bits()
}

impl<D: FdValue + Ord> FaithfulSpec<D> {
    /// Builds the spec from a function of the correct set.
    ///
    /// # Panics
    ///
    /// Panics if `n_plus_1 > 16` (the table is exponential in the system
    /// size).
    pub fn from_fn(n_plus_1: usize, mut f: impl FnMut(ProcessSet) -> D) -> Self {
        let outputs = ProcessSet::all_nonempty_subsets(n_plus_1)
            .into_iter()
            .map(|c| (c.bits(), f(c)))
            .collect();
        FaithfulSpec { n_plus_1, outputs }
    }

    /// The value output when the correct set is `c`.
    pub fn output_for(&self, c: ProcessSet) -> D {
        self.outputs
            .get(&c.bits())
            .expect("non-empty subset of Π")
            .clone()
    }

    /// §6.1's non-triviality criterion: a faithful detector is non-trivial
    /// iff no single value is legal in every failure pattern — i.e. the
    /// output function is not constant.
    pub fn is_non_trivial(&self) -> bool {
        let mut values = self.outputs.values();
        let first = values.next();
        values.any(|v| Some(v) != first)
    }

    /// The brute-force witness map: `φ(d)` = the *largest* correct set `C`
    /// of size `≥ n + 1 − f` with `outputs[C] ≠ d` (largest, so crashes are
    /// least able to block the batch observation), with `w = |Π − C|`.
    ///
    /// # Panics
    ///
    /// Panics if the detector is trivial, or if some value has no witness
    /// of the required size (a trivial-within-E_f detector).
    pub fn compute_phi(&self, f: usize) -> PhiMap<D>
    where
        D: Sync,
    {
        assert!(
            self.is_non_trivial(),
            "trivial faithful detectors admit no witness map"
        );
        let n_plus_1 = self.n_plus_1;
        let min_size = n_plus_1 - f;
        // Precompute the witness per distinct output value.
        let mut table: BTreeMap<D, Witness> = BTreeMap::new();
        for d in self.outputs.values() {
            if table.contains_key(d) {
                continue;
            }
            let witness = ProcessSet::all_nonempty_subsets(n_plus_1)
                .into_iter()
                .filter(|c| c.len() >= min_size && self.output_for(*c) != *d)
                .max_by_key(|c| c.len())
                .unwrap_or_else(|| {
                    panic!("no witness of size ≥ {min_size} for {d:?}: trivial within E_f")
                });
            table.insert(
                d.clone(),
                Witness {
                    s: witness,
                    w: n_plus_1 - witness.len(),
                },
            );
        }
        Arc::new(move |d: &D| {
            *table
                .get(d)
                .unwrap_or_else(|| panic!("value {d:?} outside the detector's range"))
        })
    }

    /// Realizes the spec as an oracle for `pattern`: the faithful value for
    /// `correct(F)` from `stabilize_at` on, seeded range noise before.
    ///
    /// (The §6.1 class is constant from the start; allowing a noisy prefix
    /// only makes the extraction's job harder, and matches the general
    /// stable-detector setting of §6.2.)
    pub fn oracle(
        &self,
        pattern: &FailurePattern,
        stabilize_at: Time,
        seed: u64,
    ) -> FaithfulOracle<D> {
        let values: Vec<D> = {
            let mut vs: Vec<D> = self.outputs.values().cloned().collect();
            vs.sort();
            vs.dedup();
            vs
        };
        FaithfulOracle {
            stable: self.output_for(pattern.correct()),
            values,
            stabilize_at,
            seed,
        }
    }
}

/// The oracle realizing a [`FaithfulSpec`] under one failure pattern.
#[derive(Clone, Debug)]
pub struct FaithfulOracle<D> {
    stable: D,
    values: Vec<D>,
    stabilize_at: Time,
    seed: u64,
}

impl<D: FdValue> FaithfulOracle<D> {
    /// The stable value this history converges to.
    pub fn stable_value(&self) -> D {
        self.stable.clone()
    }
}

impl<D: FdValue> Oracle<D> for FaithfulOracle<D> {
    fn output(&mut self, p: ProcessId, t: Time) -> D {
        if t >= self.stabilize_at {
            self.stable.clone()
        } else {
            use rand::Rng;
            let mut rng = upsilon_fd::noise::noise_rng(self.seed, p, t);
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }

    fn describe(&self) -> String {
        format!(
            "faithful(stable={:?}, at={})",
            self.stable, self.stabilize_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig3::extraction_algorithm;
    use upsilon_fd::check_upsilon_f;
    use upsilon_sim::{Output, SeededRandom, SimBuilder};

    /// The showcase detector: reveals only whether the number of correct
    /// processes is even (`true`) or odd (`false`).
    fn parity_spec(n_plus_1: usize) -> FaithfulSpec<bool> {
        FaithfulSpec::from_fn(n_plus_1, |c| c.len() % 2 == 0)
    }

    #[test]
    fn parity_detector_is_non_trivial() {
        assert!(parity_spec(3).is_non_trivial());
        // The constant detector is trivial.
        let dummy = FaithfulSpec::from_fn(3, |_| 0u8);
        assert!(!dummy.is_non_trivial());
    }

    #[test]
    fn computed_phi_produces_genuine_non_samples() {
        let spec = parity_spec(4);
        let phi = spec.compute_phi(3);
        for d in [true, false] {
            let w = phi(&d);
            // The witness set's own faithful output differs from d — the
            // defining non-sample property, verified against the spec.
            assert_ne!(spec.output_for(w.s), d);
            assert_eq!(w.w, 4 - w.s.len());
            assert!(!w.s.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn trivial_detectors_are_rejected() {
        let dummy = FaithfulSpec::from_fn(3, |_| 0u8);
        let _ = dummy.compute_phi(2);
    }

    #[test]
    fn parity_suffices_to_emulate_upsilon() {
        // The full §6.1 pipeline: parity detector → computed φ → Fig. 3 →
        // a valid Υ output. Knowing only whether an even or odd number of
        // processes is alive is enough failure information to beat the
        // wait-free set-agreement impossibility.
        for (pattern, label) in [
            (FailurePattern::failure_free(3), "failure-free"),
            (
                FailurePattern::builder(3)
                    .crash(ProcessId(1), Time(9_000))
                    .build(),
                "late crash",
            ),
            (
                FailurePattern::builder(3)
                    .crash(ProcessId(0), Time(40))
                    .build(),
                "early crash",
            ),
        ] {
            let spec = parity_spec(3);
            let f = 2;
            let phi = spec.compute_phi(f);
            let oracle = spec.oracle(&pattern, Time(60), 5);
            let run = SimBuilder::<bool>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(5))
                .max_steps(30_000)
                .spawn_all(|_| extraction_algorithm(phi.clone()))
                .run()
                .run;
            let published: Vec<_> = run
                .outputs()
                .iter()
                .filter_map(|(t, p, o)| match o {
                    Output::LeaderSet(s) => Some((*t, *p, *s)),
                    _ => None,
                })
                .collect();
            let samples = upsilon_fd::held_variable_samples(3, &published, Time(run.total_steps()));
            check_upsilon_f(&pattern, f, &samples, 1).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn oracle_serves_the_faithful_value() {
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(2), Time(5))
            .build();
        let spec = parity_spec(3);
        let mut oracle = spec.oracle(&pattern, Time(10), 1);
        // correct = {p1, p2}: even → true.
        assert!(oracle.stable_value());
        assert!(oracle.output(ProcessId(0), Time(10)));
        assert!(oracle.output(ProcessId(1), Time(999)));
    }
}
