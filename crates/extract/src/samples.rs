//! f-resilient samples (§6.3).
//!
//! A sequence `σ ∈ (Π × R)^ω` is an *f-resilient sample* of a detector `D`
//! if the values of σ could have been observed, in that order, by the
//! processes of σ in a run of some algorithm using `D` under a pattern
//! `F ∈ E_f` — with `correct(F) = correct(σ)` (the reading Lemma 7 and
//! Theorem 10 rely on; see DESIGN.md).
//!
//! The general question is undecidable; the witness maps in [`crate::phi`]
//! only ever need it for **constant-value** sequences over the *stable*
//! detectors this repository implements, where it is a simple predicate:
//! a constant-`d` σ with `correct(σ) = C` is a sample iff `d` is a legal
//! eternal (stable) output of `D` in some pattern with correct set `C` and
//! at most `f` faults. (Finite noise prefixes are irrelevant: every history
//! class here allows arbitrary output before stabilization, and σ's tail
//! pins the stable value.)
//!
//! This module makes that predicate executable so the φ maps can be
//! *tested* rather than trusted: for every output value `d`, the set
//! `φ_D(d).s` must make the constant-`d` sequence a non-sample.

use upsilon_sim::{ProcessId, ProcessSet};

/// An eventually-periodic sequence over `(Π × D)`: a finite prefix followed
/// by an infinitely repeated cycle — the finite representation of the σ
/// sequences used by the minimality proof.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PeriodicSeq<D> {
    /// The finite prefix.
    pub prefix: Vec<(ProcessId, D)>,
    /// The cycle, repeated forever. Must be non-empty.
    pub cycle: Vec<(ProcessId, D)>,
}

impl<D: Clone + PartialEq> PeriodicSeq<D> {
    /// Builds the canonical constant-`d` witness sequence: each process of
    /// `outside` once (in id order), then the processes of `inside` cycling
    /// forever, every step carrying `d`.
    pub fn constant(d: D, outside: ProcessSet, inside: ProcessSet) -> Self {
        assert!(
            !inside.is_empty(),
            "the cycle (correct set of σ) must be non-empty"
        );
        PeriodicSeq {
            prefix: outside.iter().map(|p| (p, d.clone())).collect(),
            cycle: inside.iter().map(|p| (p, d.clone())).collect(),
        }
    }

    /// `correct(σ)`: the processes appearing infinitely often (the cycle).
    pub fn correct(&self) -> ProcessSet {
        self.cycle.iter().map(|(p, _)| *p).collect()
    }

    /// `w(σ)`: the length of the shortest prefix containing every step of
    /// `Π − correct(σ)` (0 when no such process appears).
    pub fn w(&self) -> usize {
        let correct = self.correct();
        self.prefix
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| !correct.contains(*p))
            .map(|(i, _)| i + 1)
            .max()
            .unwrap_or(0)
    }

    /// Whether every value in the sequence equals `d`.
    pub fn is_constant(&self, d: &D) -> bool {
        self.prefix
            .iter()
            .chain(self.cycle.iter())
            .all(|(_, v)| v == d)
    }
}

/// The stable detectors whose constant-sequence sample predicate is
/// implemented.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StableClass {
    /// Ω: stable value is a correct leader.
    Omega,
    /// Ω_k: stable value is a size-k set with a correct member.
    OmegaK(usize),
    /// P and ◇P: stable value is exactly `faulty(F)`.
    Perfect,
    /// Υ^f: stable value is a set of size ≥ n+1−f different from the
    /// correct set.
    UpsilonF(usize),
}

/// Whether the stable-detector class admits `d` as an *eternal* output in
/// some pattern with correct set `correct`, i.e. whether the constant-`d`
/// sequence with `correct(σ) = correct` is an f-resilient sample.
pub fn constant_seq_is_sample_omega(
    n_plus_1: usize,
    f: usize,
    leader: ProcessId,
    correct: ProcessSet,
) -> bool {
    env_ok(n_plus_1, f, correct) && correct.contains(leader)
}

/// Constant-sequence sample predicate for Ω_k.
pub fn constant_seq_is_sample_omega_k(
    n_plus_1: usize,
    f: usize,
    k: usize,
    set: ProcessSet,
    correct: ProcessSet,
) -> bool {
    env_ok(n_plus_1, f, correct) && set.len() == k && !set.intersection(correct).is_empty()
}

/// Constant-sequence sample predicate for P / ◇P.
pub fn constant_seq_is_sample_perfect(
    n_plus_1: usize,
    f: usize,
    suspected: ProcessSet,
    correct: ProcessSet,
) -> bool {
    env_ok(n_plus_1, f, correct) && suspected == correct.complement(n_plus_1)
}

/// Constant-sequence sample predicate for Υ^f itself.
pub fn constant_seq_is_sample_upsilon_f(
    n_plus_1: usize,
    f: usize,
    set: ProcessSet,
    correct: ProcessSet,
) -> bool {
    env_ok(n_plus_1, f, correct) && !set.is_empty() && set.len() >= n_plus_1 - f && set != correct
}

fn env_ok(n_plus_1: usize, f: usize, correct: ProcessSet) -> bool {
    !correct.is_empty() && correct.complement(n_plus_1).len() <= f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi::{phi_omega, phi_omega_k, phi_perfect};

    #[test]
    fn periodic_seq_correct_and_w() {
        let seq = PeriodicSeq::constant(
            7u64,
            ProcessSet::from_iter([ProcessId(0), ProcessId(2)]),
            ProcessSet::from_iter([ProcessId(1), ProcessId(3)]),
        );
        assert_eq!(
            seq.correct(),
            ProcessSet::from_iter([ProcessId(1), ProcessId(3)])
        );
        assert_eq!(
            seq.w(),
            2,
            "both outside processes appear within the first 2 steps"
        );
        assert!(seq.is_constant(&7));
        assert!(!seq.is_constant(&8));
    }

    #[test]
    fn w_is_zero_without_outside_processes() {
        let seq = PeriodicSeq::constant(1u8, ProcessSet::EMPTY, ProcessSet::all(3));
        assert_eq!(seq.w(), 0);
        assert_eq!(seq.correct(), ProcessSet::all(3));
    }

    #[test]
    fn phi_omega_witnesses_are_non_samples() {
        // The defining property of φ_Ω: the constant-leader sequence with
        // correct(σ) = Π − {leader} is NOT a sample (the leader would be
        // faulty), while with correct(σ) = Π it IS (so the complement is
        // the only useful exclusion).
        let n_plus_1 = 4;
        for f in 1..=3usize {
            let phi = phi_omega(n_plus_1);
            for j in 0..n_plus_1 {
                let d = ProcessId(j);
                let wit = phi(&d);
                assert!(
                    !constant_seq_is_sample_omega(n_plus_1, f, d, wit.s),
                    "φ_Ω({d}) must be a non-sample witness"
                );
                assert!(constant_seq_is_sample_omega(
                    n_plus_1,
                    f,
                    d,
                    ProcessSet::all(n_plus_1)
                ));
            }
        }
    }

    #[test]
    fn phi_omega_k_witnesses_are_non_samples() {
        let n_plus_1 = 5;
        for k in 2..=4usize {
            let phi = phi_omega_k(n_plus_1);
            let l: ProcessSet = (0..k).map(ProcessId).collect();
            let wit = phi(&l);
            assert!(
                !constant_seq_is_sample_omega_k(n_plus_1, k, k, l, wit.s),
                "k={k}: the all-faulty L cannot be eternal"
            );
        }
    }

    #[test]
    fn phi_perfect_witnesses_are_non_samples() {
        let n_plus_1 = 3;
        let phi = phi_perfect(n_plus_1);
        for f in 1..=2usize {
            // d ≠ ∅: witness is Π.
            let d = ProcessSet::singleton(ProcessId(1));
            let wit = phi(&d);
            assert!(!constant_seq_is_sample_perfect(n_plus_1, f, d, wit.s));
            // d = ∅: witness is Π − {p1}.
            let wit = phi(&ProcessSet::EMPTY);
            assert!(!constant_seq_is_sample_perfect(
                n_plus_1,
                f,
                ProcessSet::EMPTY,
                wit.s
            ));
        }
    }

    #[test]
    fn witness_w_matches_the_canonical_sequence() {
        // w(σ) of the canonical constant sequence equals the φ maps' w.
        let n_plus_1 = 4;
        let d = ProcessId(2);
        let wit = phi_omega(n_plus_1)(&d);
        let seq = PeriodicSeq::constant(d, wit.s.complement(n_plus_1), wit.s);
        assert_eq!(seq.w(), wit.w);

        let l = ProcessSet::from_iter([ProcessId(0), ProcessId(1)]);
        let wit = phi_omega_k(n_plus_1)(&l);
        let seq = PeriodicSeq::constant(l, wit.s.complement(n_plus_1), wit.s);
        assert_eq!(seq.w(), wit.w);
    }

    #[test]
    fn environment_bound_is_enforced() {
        // A correct set missing more than f processes is outside E_f.
        let correct = ProcessSet::singleton(ProcessId(0));
        assert!(!constant_seq_is_sample_omega(4, 2, ProcessId(0), correct));
        assert!(constant_seq_is_sample_omega(4, 3, ProcessId(0), correct));
    }

    #[test]
    fn upsilon_f_sample_predicate() {
        let n_plus_1 = 4;
        let correct = ProcessSet::from_iter([ProcessId(0), ProcessId(1), ProcessId(2)]);
        let u = ProcessSet::all(4);
        assert!(constant_seq_is_sample_upsilon_f(n_plus_1, 1, u, correct));
        assert!(
            !constant_seq_is_sample_upsilon_f(n_plus_1, 1, correct, correct),
            "Υ^f never stabilizes on the correct set"
        );
        assert!(
            !constant_seq_is_sample_upsilon_f(
                n_plus_1,
                1,
                ProcessSet::singleton(ProcessId(3)),
                correct
            ),
            "size bound |U| ≥ n+1−f"
        );
    }

    #[test]
    fn stable_class_enum_is_usable() {
        let classes = [
            StableClass::Omega,
            StableClass::OmegaK(2),
            StableClass::Perfect,
            StableClass::UpsilonF(1),
        ];
        assert_eq!(classes.len(), 4);
        assert_ne!(StableClass::Omega, StableClass::Perfect);
    }
}
