//! Extracting anti-Ω from Υ — the downward edge of the paper's related-work
//! discussion (§2): Zielinski's anti-Ω \[22,23\] is *strictly weaker* than
//! Υ, so Υ must be able to emulate it. The paper cites the fact; this
//! module provides an executable construction in the style of §5.3's
//! timestamp extraction.
//!
//! anti-Ω outputs one process identifier per query such that **some correct
//! process is eventually never output**. The emulation rule, run atop
//! heartbeat timestamps:
//!
//! > query Υ to get `U`; output the member of `U` with the lowest
//! > timestamp (ties toward the smaller id).
//!
//! Once Υ has stabilized on `U ≠ correct(F)`, outputs are confined to `U`,
//! and every case of the Υ specification closes the argument:
//!
//! * `U` contains a faulty process: frozen timestamps lose to growing ones,
//!   so eventually only (a fixed) faulty member is output — *every* correct
//!   process is eventually never output.
//! * `U` consists of correct processes only: then `U ≠ correct(F)` forces
//!   `correct(F) ⊋ U` (since `U ⊆ correct(F)`), so some correct process
//!   lies outside `U` and is never output at all — even though the argmin
//!   may oscillate inside `U` forever (anti-Ω tolerates that; a *stable*
//!   detector could not, which is exactly why anti-Ω is weaker).
//!
//! Note the asymmetry with Theorem 1: Υ → Ω_n is impossible because Ω_n
//! demands a *stable* set containing a correct process; anti-Ω only demands
//! the eventual *absence* of one correct process, which Υ's single excluded
//! candidate set provides.

use upsilon_mem::RegisterArray;
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, Key, Output, ProcessId, ProcessSet};

/// Picks the member of `u` with the lowest timestamp (ties toward smaller
/// ids).
fn least_active_member(u: ProcessSet, stamps: &[u64]) -> ProcessId {
    u.iter()
        .min_by(|a, b| {
            stamps[a.index()]
                .cmp(&stamps[b.index()])
                .then(a.index().cmp(&b.index()))
        })
        .expect("Υ outputs non-empty sets")
}

/// Builds the Υ → anti-Ω extraction algorithm for one process. The
/// algorithm never returns; it publishes the current anti-Ω output via
/// [`Output::Leader`] at every query. Validate with
/// [`upsilon_fd::check_anti_omega`].
pub fn upsilon_to_anti_omega_algorithm() -> AlgoFn<ProcessSet> {
    algo(move |ctx| async move { extraction_loop(&ctx).await })
}

async fn extraction_loop(ctx: &Ctx<ProcessSet>) -> Result<(), Crashed> {
    let n_plus_1 = ctx.n_plus_1();
    let board = RegisterArray::<u64>::new(Key::new("hb"), n_plus_1, 0);
    let mut ts: u64 = 0;
    // #[conform(bound = "B")]
    loop {
        ts += 1;
        board.write_mine(ctx, ts).await?;
        let u = ctx.query_fd().await?;
        let stamps = board.collect(ctx).await?;
        let candidate = least_active_member(u, &stamps);
        // anti-Ω is queried per step and is *unstable*: publish every
        // iteration (not on change), so the published stream faithfully
        // samples the emulated output over time — the spec is about which
        // processes keep appearing, not about a final value.
        ctx.output(Output::Leader(candidate)).await?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_fd::{check_anti_omega, UpsilonChoice, UpsilonOracle};
    use upsilon_sim::{FailurePattern, Run, SeededRandom, SimBuilder, Time};

    fn run_extraction(
        pattern: &FailurePattern,
        choice: UpsilonChoice,
        seed: u64,
    ) -> Run<ProcessSet> {
        let oracle = UpsilonOracle::wait_free(pattern, choice, Time(80), seed);
        SimBuilder::<ProcessSet>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(12_000)
            .spawn_all(|_| upsilon_to_anti_omega_algorithm())
            .run()
            .run
    }

    /// The emulated variable as (time, observer, value) samples — anti-Ω is
    /// unstable, so no held-variable extension: the checker looks at which
    /// processes appear in the published stream's tail.
    fn samples(run: &Run<ProcessSet>) -> Vec<(Time, ProcessId, ProcessId)> {
        run.outputs()
            .iter()
            .filter_map(|(t, p, o)| match o {
                Output::Leader(l) => Some((*t, *p, *l)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn faulty_member_case() {
        // U = Π with crashes: the frozen-timestamp member wins, so every
        // correct process is eventually avoided.
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(0), Time(30))
            .build();
        let run = run_extraction(&pattern, UpsilonChoice::All, 3);
        let witness = check_anti_omega(&pattern, &samples(&run)).expect("valid anti-Ω emulation");
        assert!(pattern.is_correct(witness));
    }

    #[test]
    fn all_correct_subset_case() {
        // U a strict subset of the correct set: outputs stay inside U, so
        // the correct processes outside U are never output.
        let pattern = FailurePattern::failure_free(4);
        let run = run_extraction(&pattern, UpsilonChoice::SubsetOfCorrect, 5);
        let witness = check_anti_omega(&pattern, &samples(&run)).expect("valid anti-Ω emulation");
        assert!(pattern.is_correct(witness));
    }

    #[test]
    fn works_across_patterns_seeds_and_choices() {
        for seed in 0..4u64 {
            for pattern in [
                FailurePattern::failure_free(3),
                FailurePattern::builder(3)
                    .crash(ProcessId(1), Time(40))
                    .build(),
                FailurePattern::builder(4)
                    .crash(ProcessId(0), Time(25))
                    .crash(ProcessId(3), Time(55))
                    .build(),
            ] {
                for choice in [
                    UpsilonChoice::ComplementOfCorrect,
                    UpsilonChoice::All,
                    UpsilonChoice::FaultyPadded,
                    UpsilonChoice::SubsetOfCorrect,
                ] {
                    let run = run_extraction(&pattern, choice, seed);
                    check_anti_omega(&pattern, &samples(&run))
                        .unwrap_or_else(|e| panic!("{pattern} {choice:?} seed {seed}: {e}"));
                }
            }
        }
    }

    #[test]
    fn least_active_member_rule() {
        let u = ProcessSet::from_iter([ProcessId(1), ProcessId(2)]);
        assert_eq!(least_active_member(u, &[0, 7, 3]), ProcessId(2));
        assert_eq!(
            least_active_member(u, &[0, 3, 3]),
            ProcessId(1),
            "tie → smaller id"
        );
        assert_eq!(
            least_active_member(ProcessSet::singleton(ProcessId(0)), &[9, 1, 1]),
            ProcessId(0)
        );
    }
}
