//! Concrete candidate Υ^f → Ω^f extractors for the Theorem 1/5 game.
//!
//! The theorems assert that *no* candidate can work; these three natural
//! attempts exhibit the two possible failure modes the game detects:
//!
//! * [`ActivityCandidate`] is *live* — it reacts to whoever is taking
//!   steps — so the adversary forces it to change its output forever
//!   (`NeverStabilizes`);
//! * [`MirrorCandidate`] and [`StubbornCandidate`] are *stable* — they
//!   stick to a set — so the adversary finds an extension in which their
//!   stable set contains no correct process (`Refuted`).

use crate::adversary::Candidate;
use upsilon_mem::RegisterArray;
use upsilon_sim::{algo, AlgoFn, Key, Output, ProcessId, ProcessSet};

/// Publishes the `m` most recently active processes (highest heartbeat
/// timestamps, ties toward smaller ids).
///
/// This is the natural "suspect the silent" extractor — and exactly the
/// kind of algorithm the Theorem 1 run construction defeats: whichever set
/// it outputs, the adversary lets an excluded process run solo until the
/// set must change.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActivityCandidate;

fn top_m(stamps: &[u64], m: usize) -> ProcessSet {
    let mut ids: Vec<usize> = (0..stamps.len()).collect();
    ids.sort_by(|&a, &b| stamps[b].cmp(&stamps[a]).then(a.cmp(&b)));
    ids.into_iter().take(m).map(ProcessId).collect()
}

impl Candidate for ActivityCandidate {
    fn name(&self) -> &'static str {
        "activity (top-m heartbeats)"
    }

    fn algorithms(&self, n_plus_1: usize, set_size: usize) -> Vec<AlgoFn<ProcessSet>> {
        (0..n_plus_1)
            .map(|_| -> AlgoFn<ProcessSet> {
                algo(move |ctx| async move {
                    let board = RegisterArray::<u64>::new(Key::new("hb"), n_plus_1, 0);
                    let mut ts = 0u64;
                    let mut published = None;
                    // #[conform(bound = "B")]
                    loop {
                        ts += 1;
                        board.write_mine(&ctx, ts).await?;
                        let _ = ctx.query_fd().await?;
                        let stamps = board.collect(&ctx).await?;
                        let l = top_m(&stamps, set_size);
                        if published != Some(l) {
                            ctx.output(Output::LeaderSet(l)).await?;
                            published = Some(l);
                        }
                    }
                })
            })
            .collect()
    }
}

/// Publishes (a deterministic size-`m` trim of) the Υ^f output itself.
///
/// Plausible at first sight — "the gladiators look like the live ones" —
/// but with the pinned history `U = {p_1..p_n}` it never includes
/// `p_{n+1}`, so the run in which everyone else crashes refutes it.
#[derive(Clone, Copy, Debug, Default)]
pub struct MirrorCandidate;

impl Candidate for MirrorCandidate {
    fn name(&self) -> &'static str {
        "mirror (trimmed Υ output)"
    }

    fn algorithms(&self, n_plus_1: usize, set_size: usize) -> Vec<AlgoFn<ProcessSet>> {
        (0..n_plus_1)
            .map(|_| -> AlgoFn<ProcessSet> {
                algo(move |ctx| async move {
                    let mut published = None;
                    // #[conform(bound = "B")]
                    loop {
                        let u: ProcessSet = ctx.query_fd().await?;
                        // Deterministic trim/pad to the required size.
                        let mut l: ProcessSet = u.iter().take(set_size).collect();
                        let mut next = 0usize;
                        while l.len() < set_size {
                            l.insert(ProcessId(next));
                            next += 1;
                        }
                        if published != Some(l) {
                            ctx.output(Output::LeaderSet(l)).await?;
                            published = Some(l);
                        }
                    }
                })
            })
            .collect()
    }
}

/// Publishes the fixed set `{p_1, …, p_m}` forever, ignoring everything.
///
/// The baseline "stable but blind" candidate: refuted by the extension in
/// which exactly those processes crash.
#[derive(Clone, Copy, Debug, Default)]
pub struct StubbornCandidate;

impl Candidate for StubbornCandidate {
    fn name(&self) -> &'static str {
        "stubborn (constant set)"
    }

    fn algorithms(&self, n_plus_1: usize, set_size: usize) -> Vec<AlgoFn<ProcessSet>> {
        (0..n_plus_1)
            .map(|_| -> AlgoFn<ProcessSet> {
                algo(move |ctx| async move {
                    let l: ProcessSet = (0..set_size).map(ProcessId).collect();
                    ctx.output(Output::LeaderSet(l)).await?;
                    // #[conform(bound = "B")]
                    loop {
                        ctx.yield_step().await?;
                    }
                })
            })
            .collect()
    }
}

/// All shipped candidates, for table-driven experiments.
pub fn all_candidates() -> Vec<Box<dyn Candidate>> {
    vec![
        Box::new(ActivityCandidate),
        Box::new(MirrorCandidate),
        Box::new(StubbornCandidate),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_m_orders_by_timestamp_then_id() {
        assert_eq!(
            top_m(&[5, 9, 9, 1], 2),
            ProcessSet::from_iter([ProcessId(1), ProcessId(2)])
        );
        assert_eq!(
            top_m(&[5, 5, 5], 2),
            ProcessSet::from_iter([ProcessId(0), ProcessId(1)])
        );
        assert_eq!(top_m(&[1, 2], 2), ProcessSet::all(2));
    }

    #[test]
    fn candidates_report_names() {
        for c in all_candidates() {
            assert!(!c.name().is_empty());
            assert_eq!(c.algorithms(4, 2).len(), 4);
        }
    }
}
