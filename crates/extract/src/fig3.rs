//! The paper's Fig. 3: transforming any stable f-non-trivial failure
//! detector `D` into Υ^f (§6.3, Theorem 10).
//!
//! Every process runs two conceptual tasks, interleaved fairly here in one
//! loop (our processes are single automata; a strict alternation of task
//! steps is one legal scheduling of the paper's two parallel tasks):
//!
//! * **Task 1** — query the local module of `D` and publish the value with
//!   an ever-increasing timestamp in a register `R[i]`.
//! * **Task 2** — proceed in *rounds*. A round is based on the value `d`
//!   the process currently observes from its own module:
//!   1. set the emulated output `Υ^f-output_i := Π`;
//!   2. compute `(S, w) = φ_D(d)`;
//!   3. if `S = Π`, just wait for instability (some report with a value
//!      `≠ d`), then restart;
//!   4. otherwise wait until `w` *batches* are observed (in every batch,
//!      every process wrote at least two fresh `d`-reports — certifying a
//!      fresh query step returning `d` per process per batch), publish
//!      `Υ^f-output_i := S`, and wait for instability.
//!
//! Waiting forever in step 3/4 keeps the output at `Π` (or `S`), which is
//! correct: a batch that never completes means some process stopped
//! reporting, i.e. crashed, so `correct(F) ≠ Π`; and completed batches make
//! the non-sample σ embeddable into the actual run, so `S ≠ correct(F)`
//! (Theorem 10's two cases). Observed instability is shared through a
//! register `Unstable[m]` so one process's observation frees all blocked
//! peers; since `D` is stable, restarts eventually cease and all correct
//! processes converge on the same final announcement.

use crate::phi::PhiMap;
use upsilon_mem::{Register, RegisterArray};
use upsilon_sim::{algo, AlgoFn, Crashed, Ctx, FdValue, Key, Output, ProcessSet};

/// Builds the Fig. 3 extraction algorithm for one process, for a detector
/// with value type `D` and witness map `phi`.
///
/// The algorithm never returns: it keeps emulating Υ^f forever. Run it
/// under a step budget and validate the published `LeaderSet` outputs with
/// [`upsilon_fd::check_upsilon_f`].
pub fn extraction_algorithm<D>(phi: PhiMap<D>) -> AlgoFn<D>
where
    D: FdValue + Eq,
{
    algo(move |ctx| async move { extraction_loop(&ctx, &phi).await })
}

/// Publishes `set` as the current emulated Υ^f output if it differs from
/// the last published value.
async fn publish<D: FdValue>(
    ctx: &Ctx<D>,
    last: &mut Option<ProcessSet>,
    set: ProcessSet,
) -> Result<(), Crashed> {
    if *last != Some(set) {
        ctx.output(Output::LeaderSet(set)).await?;
        *last = Some(set);
    }
    Ok(())
}

// Each task of the Fig. 3 client is wait-free: every iteration of both
// loops completes in a bounded number of steps (Theorem 10's waits are
// step-taking loops, not blocking). R is the number of rounds a recorded
// run restarts through, B the heartbeat iterations of its longest round;
// the dynamic cross-check binds both from run data.
// #[conform(wait_free)]
async fn extraction_loop<D>(ctx: &Ctx<D>, phi: &PhiMap<D>) -> Result<(), Crashed>
where
    D: FdValue + Eq,
{
    let n_plus_1 = ctx.n_plus_1();
    let all = ProcessSet::all(n_plus_1);
    let reports = RegisterArray::<Option<(u64, D)>>::new(Key::new("R"), n_plus_1, None);
    let mut ts: u64 = 0;
    let mut round: u64 = 0;
    let mut last_published: Option<ProcessSet> = None;

    // #[conform(bound = "R")]
    loop {
        round += 1;
        let unstable = Register::<bool>::new(Key::new("Unstable").at(round), false);
        let batches_done = Register::<bool>::new(Key::new("Batches").at(round), false);

        // Base value of the round, reported immediately (Task 1).
        let d = ctx.query_fd().await?;
        ts += 1;
        reports.write_mine(ctx, Some((ts, d.clone()))).await?;

        // Line 8: reset the emulated output to Π.
        publish(ctx, &mut last_published, all).await?;

        let witness = (phi)(&d);
        // If S = Π there is nothing to announce beyond Π itself.
        let mut announced = witness.s == all;

        // Round-start baseline: only reports *newer* than these timestamps
        // count — the paper detects a "new failure detector value" by
        // waiting for the reporter's timestamp to increase, so a stale
        // report (e.g. from a crashed process) never triggers a restart.
        let baseline: Vec<u64> = reports
            .collect(ctx)
            .await?
            .iter()
            .map(|c| c.as_ref().map_or(0, |(t, _)| *t))
            .collect();

        let mut batch_count: usize = 0;
        // Timestamps at the start of the current batch, per process.
        let mut batch_base = baseline.clone();

        // Announce immediately if no batches are required.
        if !announced && witness.w == 0 {
            batches_done.write(ctx, true).await?;
            publish(ctx, &mut last_published, witness.s).await?;
            announced = true;
        }

        // #[conform(bound = "B")]
        'round: loop {
            // Task 1 heartbeat: keep reporting the current value.
            let d_now = ctx.query_fd().await?;
            ts += 1;
            reports.write_mine(ctx, Some((ts, d_now.clone()))).await?;
            if d_now != d {
                unstable.write(ctx, true).await?;
                break 'round;
            }
            if unstable.read(ctx).await? {
                break 'round;
            }

            // Observe everyone's reports; a *fresh* report carrying a value
            // other than d means D has not stabilized on d.
            let snap = reports.collect(ctx).await?;
            let fresh_change = snap
                .iter()
                .enumerate()
                .any(|(j, c)| c.as_ref().is_some_and(|(t, v)| *t > baseline[j] && v != &d));
            if fresh_change {
                unstable.write(ctx, true).await?;
                break 'round;
            }

            if announced {
                continue;
            }

            // Did someone else complete the batches?
            if batches_done.read(ctx).await? {
                publish(ctx, &mut last_published, witness.s).await?;
                announced = true;
                continue;
            }

            // Batch accounting: a batch completes when every process has
            // written at least two fresh d-reports since the batch began
            // (each write is preceded by a query returning d, so a batch
            // certifies one fresh (q_j, d) query step per process).
            let current: Vec<u64> = snap
                .iter()
                .map(|c| c.as_ref().map_or(0, |(t, _)| *t))
                .collect();
            if batch_base.iter().zip(&current).all(|(b, c)| *c >= b + 2) {
                batch_count += 1;
                batch_base = current;
                if batch_count >= witness.w {
                    batches_done.write(ctx, true).await?;
                    publish(ctx, &mut last_published, witness.s).await?;
                    announced = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi::{phi_omega, phi_omega_k, phi_perfect};
    use upsilon_fd::{
        check_upsilon_f, EventuallyPerfectOracle, LeaderChoice, OmegaKChoice, OmegaKOracle,
        OmegaOracle, PerfectOracle,
    };
    use upsilon_sim::{FailurePattern, Oracle, ProcessId, Run, SeededRandom, SimBuilder, Time};

    /// Runs the extraction under `oracle` and returns the published
    /// LeaderSet outputs as spec-checker samples.
    fn run_extraction<D: FdValue + Eq>(
        pattern: &FailurePattern,
        oracle: impl Oracle<D> + 'static,
        phi: PhiMap<D>,
        steps: u64,
        seed: u64,
    ) -> Run<D> {
        SimBuilder::<D>::new(pattern.clone())
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(steps)
            .spawn_all(|_| extraction_algorithm(phi.clone()))
            .run()
            .run
    }

    fn emulated_samples<D: FdValue>(run: &Run<D>) -> Vec<(Time, ProcessId, ProcessSet)> {
        let published: Vec<_> = run
            .outputs()
            .iter()
            .filter_map(|(t, p, o)| match o {
                Output::LeaderSet(s) => Some((*t, *p, *s)),
                _ => None,
            })
            .collect();
        // Υ^f-output is a held variable (Fig. 3 publishes only on change):
        // extend each process's last value to the end of the run.
        upsilon_fd::spec::held_variable_samples(run.n_plus_1(), &published, Time(run.total_steps()))
    }

    #[test]
    fn extracts_upsilon_from_omega_failure_free() {
        // With everyone alive the w = 1 batch completes and the extraction
        // announces the complement of the stable leader.
        let pattern = FailurePattern::failure_free(3);
        let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(100), 1);
        let expected = ProcessSet::singleton(oracle.leader()).complement(3);
        let run = run_extraction(&pattern, oracle, phi_omega(3), 30_000, 1);
        let samples = emulated_samples(&run);
        let report = check_upsilon_f(&pattern, 2, &samples, 1).expect("valid extraction");
        assert_eq!(
            report.value, expected,
            "Ω extraction converges to the complement"
        );
    }

    #[test]
    fn extracts_upsilon_from_omega_crash_before_stabilization() {
        // The crashed process never contributes fresh d-reports, so the
        // batch never completes and the output stays Π — legal, because
        // correct(F) ≠ Π (Theorem 10's blocked-wait case).
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(0), Time(40))
            .build();
        let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(100), 2);
        let run = run_extraction(&pattern, oracle, phi_omega(3), 30_000, 2);
        let samples = emulated_samples(&run);
        let report = check_upsilon_f(&pattern, 2, &samples, 1).expect("valid extraction");
        assert_eq!(report.value, ProcessSet::all(3));
    }

    #[test]
    fn extracts_upsilon_from_omega_crash_after_announcement() {
        // The crash comes long after stabilization: the batch completed
        // while everyone was alive, the complement was announced, and a
        // later crash does not disturb it (stale reports are not "new
        // values").
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(2), Time(8_000))
            .build();
        let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(100), 3);
        let expected = ProcessSet::singleton(oracle.leader()).complement(3);
        let run = run_extraction(&pattern, oracle, phi_omega(3), 40_000, 3);
        let samples = emulated_samples(&run);
        let report = check_upsilon_f(&pattern, 2, &samples, 1).expect("valid extraction");
        assert_eq!(report.value, expected);
    }

    #[test]
    fn extracts_upsilon_f_from_omega_f() {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(1), Time(9_000))
            .build();
        for f in 2..=3usize {
            let oracle = OmegaKOracle::new(&pattern, f, OmegaKChoice::default(), Time(80), 7);
            let expected = oracle.stable_set().complement(4);
            let run = run_extraction(&pattern, oracle, phi_omega_k(4), 60_000, 7);
            let samples = emulated_samples(&run);
            let report =
                check_upsilon_f(&pattern, f, &samples, 1).unwrap_or_else(|e| panic!("f={f}: {e}"));
            assert_eq!(report.value, expected, "f={f}: batches completed pre-crash");
        }
    }

    #[test]
    fn extracts_upsilon_from_perfect_detector() {
        // P in a run with crashes: stable value is faulty(F) ≠ ∅, so the
        // extraction announces Π (legal since correct(F) ≠ Π).
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(1), Time(20))
            .build();
        let oracle = PerfectOracle::new(&pattern);
        let run = run_extraction(&pattern, oracle, phi_perfect(3), 30_000, 11);
        let samples = emulated_samples(&run);
        let report = check_upsilon_f(&pattern, 2, &samples, 1).expect("P extraction");
        assert_eq!(report.value, ProcessSet::all(3));
    }

    #[test]
    fn extracts_upsilon_from_perfect_detector_failure_free() {
        // P in a failure-free run: stable value ∅, witness (Π − {p1}, 1);
        // batches complete since everyone keeps reporting ∅.
        let pattern = FailurePattern::failure_free(3);
        let oracle = PerfectOracle::new(&pattern);
        let run = run_extraction(&pattern, oracle, phi_perfect(3), 30_000, 13);
        let samples = emulated_samples(&run);
        let report = check_upsilon_f(&pattern, 2, &samples, 1).expect("failure-free P");
        assert_eq!(
            report.value,
            ProcessSet::singleton(ProcessId(0)).complement(3),
            "the announced witness set excludes p1, which is correct — legal"
        );
    }

    #[test]
    fn extracts_upsilon_from_eventually_perfect_with_noise() {
        let pattern = FailurePattern::builder(4)
            .crash(ProcessId(3), Time(60))
            .build();
        let oracle = EventuallyPerfectOracle::new(&pattern, Time(250), 17);
        let run = run_extraction(&pattern, oracle, phi_perfect(4), 60_000, 17);
        let samples = emulated_samples(&run);
        let report = check_upsilon_f(&pattern, 3, &samples, 1).expect("◇P extraction");
        assert_eq!(report.value, ProcessSet::all(4));
    }

    #[test]
    fn local_stability_is_not_enough_the_boundary_of_theorem_10() {
        // Footnote 2 of the paper notes the *lower bounds* also hold for
        // locally stable detectors; the *positive* Fig. 3 construction,
        // however, needs global stability. With a detector whose processes
        // stabilize on different values, the extraction keeps observing
        // "new" values and restarting: in a failure-free run its output
        // sits at Π = correct(F) forever — a Υ violation. This is why
        // Theorem 10 is stated for stable detectors.
        use upsilon_fd::LocallyStableUpsilonOracle;
        let pattern = FailurePattern::failure_free(3);
        let oracle = LocallyStableUpsilonOracle::new(&pattern, 2, Time(30), 7);
        assert!(oracle.is_genuinely_divergent());
        // φ for set-valued outputs: reuse the Ω_k complement map shape
        // (|d| = 2 here, so S = Π − d, w = 2) — a fine witness map for any
        // *stable* detector of this range.
        let run = run_extraction(&pattern, oracle, phi_omega_k(3), 30_000, 7);
        let samples = emulated_samples(&run);
        let verdict = check_upsilon_f(&pattern, 2, &samples, 1);
        assert!(
            verdict.is_err(),
            "locally-stable input must break the extraction: {verdict:?}"
        );
    }

    #[test]
    fn extraction_is_deterministic() {
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(0), Time(30))
            .build();
        let mk = || {
            let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(90), 23);
            run_extraction(&pattern, oracle, phi_omega(3), 20_000, 23)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn output_while_unstable_is_pi() {
        // Before D stabilizes, the only announcements are Π or witness sets
        // of observed values; all are legal Υ^f range values (size ≥ n).
        let pattern = FailurePattern::failure_free(3);
        let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(400), 29);
        let run = run_extraction(&pattern, oracle, phi_omega(3), 20_000, 29);
        for (_, _, s) in emulated_samples(&run) {
            assert!(s.len() >= 2, "all published sets respect the Υ range: {s}");
        }
    }
}
