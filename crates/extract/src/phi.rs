//! Witness maps `φ_D` (Corollary 9).
//!
//! For an f-non-trivial failure detector `D`, Corollary 9 guarantees a map
//! `φ_D` carrying each output value `d` to `(correct(σ), w(σ))` for some
//! sequence `σ ∈ (Π × {d})^ω` with `|correct(σ)| ≥ n + 1 − f` that is **not**
//! an f-resilient sample of `D` — i.e. no run of `D` in `E_f` whose correct
//! set is `correct(σ)` can make the processes of `σ` observe `d` in that
//! order forever.
//!
//! The paper's proof of the corollary is *non-constructive* ("we do not
//! construct the map φ_D here: it is sufficient for us to know that such a
//! map exists"). To make Fig. 3 executable we substitute explicit witness
//! maps for each concrete stable detector, each justified below; the Fig. 3
//! algorithm consumes only the `(S, w)` pairs, exactly as the paper's
//! reduction does, so the substitution preserves the construction.
//!
//! Interpretation of "f-resilient sample" (see DESIGN.md): σ is a sample of
//! `D` iff there exist `F ∈ E_f` with `correct(F) = correct(σ)`,
//! `H ∈ D(F)` and non-decreasing times consistent with σ. The equality of
//! correct sets is what Lemma 7's subsequence argument and Theorem 10's
//! final contradiction rely on.

use upsilon_sim::{ProcessId, ProcessSet};

/// The output of a witness map: `S = correct(σ)` and `w = w(σ)`, the length
/// of the shortest prefix of σ containing every step of `Π − correct(σ)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Witness {
    /// `correct(σ)`: the set the extraction announces once `w` batches of
    /// unanimous-`d` reports are observed.
    pub s: ProcessSet,
    /// `w(σ)`: how many batches certify that the finite prefix of σ could
    /// have happened under the current failure pattern.
    pub w: usize,
}

/// A witness map `φ_D`: output value → [`Witness`]. Shared by all processes
/// running the Fig. 3 extraction.
pub type PhiMap<D> = std::sync::Arc<dyn Fn(&D) -> Witness + Send + Sync>;

/// `φ_Ω` for a system of `n + 1` processes.
///
/// For `d = p_j`, take σ = one step of `p_j`, then the other `n` processes
/// forever, everyone observing leader `p_j`. Then `correct(σ) = Π − {p_j}`
/// and `w(σ) = 1`. σ is not a sample: a run with `correct(F) = Π − {p_j}`
/// has `p_j` faulty, and no Ω history for such an `F` can output the faulty
/// `p_j` at correct processes forever. `|S| = n ≥ n + 1 − f` for every
/// `f ≥ 1`. (Note how the extraction then reduces to the complement rule of
/// §4: once the leader output stabilizes on `p_j`, announce `Π − {p_j}`.)
pub fn phi_omega(n_plus_1: usize) -> PhiMap<ProcessId> {
    std::sync::Arc::new(move |d: &ProcessId| Witness {
        s: ProcessSet::singleton(*d).complement(n_plus_1),
        w: 1,
    })
}

/// `φ_{Ω_k}` for a system of `n + 1` processes.
///
/// For `d = L` (`|L| = k`), take σ = each member of `L` once, then
/// `Π − L` forever, everyone observing `L`. Then `correct(σ) = Π − L`
/// (size `n + 1 − k`) and `w(σ) = k`. Not a sample: with
/// `correct(F) = Π − L`, every member of `L` is faulty, but an Ω_k history
/// must eventually output a set containing a correct process — it cannot
/// stick to the all-faulty `L` forever.
pub fn phi_omega_k(n_plus_1: usize) -> PhiMap<ProcessSet> {
    std::sync::Arc::new(move |d: &ProcessSet| Witness {
        s: d.complement(n_plus_1),
        w: d.len(),
    })
}

/// `φ_P` = `φ_{◇P}` for a system of `n + 1` processes.
///
/// For a suspicion set `d ≠ ∅`: take σ = everyone forever observing `d`;
/// `correct(σ) = Π`, `w(σ) = 0`. Not a sample: a (◇)P history in a
/// failure-free run must eventually output `∅` forever, never a constant
/// `d ≠ ∅`.
///
/// For `d = ∅`: take σ = one step of `p_1`, then everyone else forever
/// observing `∅`; `correct(σ) = Π − {p_1}`, `w(σ) = 1`. Not a sample: with
/// `correct(F) = Π − {p_1}`, `p_1` is faulty and a (◇)P history eventually
/// outputs `{p_1}` forever — it cannot output `∅` forever.
pub fn phi_perfect(n_plus_1: usize) -> PhiMap<ProcessSet> {
    std::sync::Arc::new(move |d: &ProcessSet| {
        if d.is_empty() {
            Witness {
                s: ProcessSet::singleton(ProcessId(0)).complement(n_plus_1),
                w: 1,
            }
        } else {
            Witness {
                s: ProcessSet::all(n_plus_1),
                w: 0,
            }
        }
    })
}

/// The largest `f` for which a witness map's sets satisfy the Υ^f size
/// bound `|S| ≥ n + 1 − f` across the given sample of outputs — used by
/// experiments to label what was extracted.
pub fn max_f_supported(n_plus_1: usize, witness_sizes: impl IntoIterator<Item = usize>) -> usize {
    let min_size = witness_sizes.into_iter().min().unwrap_or(n_plus_1);
    n_plus_1 - min_size.min(n_plus_1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_omega_is_the_complement_with_one_batch() {
        let phi = phi_omega(4);
        let w = phi(&ProcessId(2));
        assert_eq!(
            w.s,
            ProcessSet::from_iter([ProcessId(0), ProcessId(1), ProcessId(3)])
        );
        assert_eq!(w.w, 1);
    }

    #[test]
    fn phi_omega_k_complements_the_set() {
        let phi = phi_omega_k(5);
        let l = ProcessSet::from_iter([ProcessId(0), ProcessId(4)]);
        let w = phi(&l);
        assert_eq!(w.s, l.complement(5));
        assert_eq!(w.w, 2);
    }

    #[test]
    fn phi_perfect_cases() {
        let phi = phi_perfect(3);
        let nonempty = phi(&ProcessSet::singleton(ProcessId(1)));
        assert_eq!(nonempty.s, ProcessSet::all(3));
        assert_eq!(nonempty.w, 0);
        let empty = phi(&ProcessSet::EMPTY);
        assert_eq!(empty.s, ProcessSet::from_iter([ProcessId(1), ProcessId(2)]));
        assert_eq!(empty.w, 1);
    }

    #[test]
    fn witness_sets_are_never_empty_and_large_enough() {
        // |S| ≥ n + 1 − f must hold for the extraction to emit legal Υ^f
        // values; with these maps |S| ≥ n.
        let n_plus_1 = 5;
        for j in 0..n_plus_1 {
            assert!(phi_omega(n_plus_1)(&ProcessId(j)).s.len() >= n_plus_1 - 1);
        }
        for k in 1..n_plus_1 {
            let l: ProcessSet = (0..k).map(ProcessId).collect();
            assert_eq!(phi_omega_k(n_plus_1)(&l).s.len(), n_plus_1 - k);
        }
    }

    #[test]
    fn max_f_supported_computation() {
        assert_eq!(max_f_supported(5, [4, 5]), 1);
        assert_eq!(max_f_supported(5, [3]), 2);
        assert_eq!(max_f_supported(5, std::iter::empty::<usize>()), 0);
    }
}
