//! Failure-detector faithfulness as a run-level specification.
//!
//! A Υ^f history is *legal* for a failure pattern `F` when its stable value
//! `U` satisfies §4's conditions — non-empty, of size `≥ n + 1 − f`, and
//! **not equal to `correct(F)`**. The adversary game of
//! [`crate::adversary`] pins the history to `U = {p_1, …, p_n}`, which is
//! legal in the failure-free pattern it plays in; [`UpsilonFaithfulSpec`]
//! checks that legality *per explored run*, so a systematic explorer that
//! also enumerates crash scenarios discovers the patterns (crash
//! `p_{n+1}`) in which the pinned history stops being a Υ history at all.

use upsilon_analysis::RunSpec;
use upsilon_fd::upsilon_stable_legal;
use upsilon_sim::{ProcessSet, Run, Time};

/// Checks that every failure-detector value sampled at or after
/// `stable_from` is a legal stable Υ^f value for the run's own failure
/// pattern.
///
/// Samples before `stable_from` are unconstrained (Υ may output anything
/// during its unstable prefix). With `stable_from = Time::ZERO` this is the
/// faithfulness of a constant history such as the adversary game's
/// [`pinned_history`](crate::adversary::pinned_history).
#[derive(Clone, Copy, Debug)]
pub struct UpsilonFaithfulSpec {
    /// The resilience parameter `f` of Υ^f.
    pub f: usize,
    /// The time from which the history claims to be stable.
    pub stable_from: Time,
}

impl UpsilonFaithfulSpec {
    /// A spec for a history claiming stability from the start (constant
    /// histories, e.g. the Theorem 1/5 pinned `U`).
    pub fn constant(f: usize) -> Self {
        UpsilonFaithfulSpec {
            f,
            stable_from: Time::ZERO,
        }
    }
}

impl RunSpec<ProcessSet> for UpsilonFaithfulSpec {
    fn name(&self) -> &str {
        "upsilon-faithful"
    }

    fn check(&self, run: &Run<ProcessSet>) -> Result<(), String> {
        for (t, p, set) in run.fd_samples() {
            if *t >= self.stable_from && !upsilon_stable_legal(run.pattern(), self.f, *set) {
                return Err(format!(
                    "unfaithful Υ^{} history: {p} sampled {set} at {t}, illegal under {} \
                     (correct = {})",
                    self.f,
                    run.pattern(),
                    run.pattern().correct(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::pinned_history;
    use upsilon_sim::{algo, DummyOracle, FailurePattern, ProcessId, SimBuilder};

    fn query_once_run(pattern: FailurePattern, u: ProcessSet) -> Run<ProcessSet> {
        SimBuilder::<ProcessSet>::new(pattern)
            .oracle(DummyOracle::new(u))
            .spawn_all(|_| {
                algo(move |ctx| async move {
                    ctx.query_fd().await?;
                    Ok(())
                })
            })
            .run()
            .run
    }

    #[test]
    fn pinned_history_is_faithful_failure_free() {
        let u = pinned_history(3);
        let run = query_once_run(FailurePattern::failure_free(3), u);
        assert_eq!(UpsilonFaithfulSpec::constant(2).check(&run), Ok(()));
    }

    #[test]
    fn pinned_history_is_unfaithful_when_last_process_crashes() {
        // Crash p_{n+1} *after* the queries: correct(F) = U, so the pinned
        // constant history violates Υ's "U ≠ correct(F)".
        let u = pinned_history(3);
        let pattern = FailurePattern::builder(3)
            .crash(ProcessId(2), Time(100))
            .build();
        let run = query_once_run(pattern, u);
        let err = UpsilonFaithfulSpec::constant(2).check(&run).unwrap_err();
        assert!(err.contains("unfaithful"), "{err}");
    }
}
