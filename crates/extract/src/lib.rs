//! # upsilon-extract
//!
//! The minimality machinery of *"On the weakest failure detector ever"*
//! (§6): everything around extracting Υ^f from other failure detectors and
//! showing nothing weaker suffices.
//!
//! * [`fig3`] — the paper's Fig. 3 reduction: any *stable, f-non-trivial*
//!   detector `D` emulates Υ^f, given a witness map `φ_D` (Theorem 10);
//! * [`phi`] — explicit witness maps for the concrete stable detectors
//!   (the executable substitute for the paper's non-constructive
//!   Corollary 9);
//! * [`samples`] — the f-resilient-sample formalism, with decidable
//!   predicates for constant sequences over stable detectors, used to test
//!   the witness maps;
//! * [`adversary`] / [`candidates`] — the Theorem 1/5 run constructions as
//!   a game refuting any concrete Υ^f → Ω^f extraction candidate;
//! * [`upsilon1_omega`] — the positive counterpart: Υ¹ → Ω in `E_1`
//!   (§5.3), showing the `f ≥ 2` condition of Theorem 5 is tight;
//! * [`anti_omega_from_upsilon`] — the downward edge Υ → anti-Ω (Zielinski
//!   \[22,23\], cited in §2), as a §5.3-style timestamp construction;
//! * [`faithful`] — the §6.1 intuition made fully constructive: for
//!   detectors whose output depends only on the correct set, the witness
//!   map is *computed* by enumeration instead of hand-written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod anti_omega_from_upsilon;
pub mod candidates;
pub mod faithful;
pub mod fig3;
pub mod phi;
pub mod samples;
pub mod spec;
pub mod upsilon1_omega;

pub use adversary::{pinned_history, play, Candidate, GameConfig, GameVerdict};
pub use anti_omega_from_upsilon::upsilon_to_anti_omega_algorithm;
pub use candidates::{all_candidates, ActivityCandidate, MirrorCandidate, StubbornCandidate};
pub use faithful::{FaithfulOracle, FaithfulSpec};
pub use fig3::extraction_algorithm;
pub use phi::{max_f_supported, phi_omega, phi_omega_k, phi_perfect, PhiMap, Witness};
pub use samples::PeriodicSeq;
pub use spec::UpsilonFaithfulSpec;
pub use upsilon1_omega::{upsilon1_to_omega_algorithm, Upsilon1Elector};
