//! Rule C1 violations: step operations detached from their await points.
//!
//! The §3.1 model grants one atomic step per suspension. Stashing a step
//! future for later, or funnelling two shared operations through a single
//! await, desynchronizes algorithm code from the schedule the proofs
//! quantify over.

use std::future::Future;
use upsilon_mem::Register;
use upsilon_sim::{Crashed, Ctx, ProcessId};

/// Issues a step operation without awaiting it where issued, then awaits
/// the stashed future later — zero operations mediated at that await
/// point, one operation never awaited in place.
pub async fn stashed_step(ctx: &Ctx<ProcessId>) -> Result<(), Crashed> {
    let fut = ctx.yield_step();
    fut.await
}

/// Funnels two register reads through one await point.
pub async fn double_op(
    ctx: &Ctx<ProcessId>,
    a: &Register<u64>,
    b: &Register<u64>,
) -> Result<u64, Crashed> {
    let (x, y) = both(a.read(ctx), b.read(ctx)).await;
    Ok(x? + y?)
}

/// Sequences two futures behind one await (the vehicle of the violation;
/// itself takes no context).
async fn both<A: Future, B: Future>(a: A, b: B) -> (A::Output, B::Output) {
    (a.await, b.await)
}
