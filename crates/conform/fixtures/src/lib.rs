//! Deliberately **nonconforming** algorithm code.
//!
//! Each module here violates exactly one `upsilon-conform` rule, on
//! purpose: the conformance checker's negative golden tests
//! (`crates/conform/tests/fixtures.rs`) scan these sources and assert
//! that every file trips its intended rule — and *only* that rule. The
//! code compiles (the violations are semantic, against the §3.1 model
//! contract, not against Rust) but none of it is ever executed.
//!
//! This crate is intentionally **not** in the checker's
//! [`SCANNED_CRATES`](../upsilon_conform/constant.SCANNED_CRATES.html)
//! set, so the workspace-wide "zero findings" gate stays meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c1_double_op;
pub mod c2_banned_api;
pub mod c3_leaked_handle;
pub mod c4_unbounded_helping;
