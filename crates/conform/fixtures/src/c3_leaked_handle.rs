//! Rule C3 violations: contexts and shared-object handles escaping the
//! algorithm body.
//!
//! Shared objects are only accessible through granted steps; a handle (or
//! the context itself) that leaks into a wrapper or closure could be
//! driven outside the schedule.

use upsilon_mem::{Register, RegisterArray};
use upsilon_sim::{Crashed, Ctx, Key, ProcessId};

/// Wraps a register handle in an escape wrapper.
pub async fn leaked_handle(ctx: &Ctx<ProcessId>) -> Result<u64, Crashed> {
    let reg = Register::<u64>::new(Key::new("leak"), 0);
    let boxed = Box::new(reg);
    boxed.read(ctx).await
}

/// Captures a register-array handle in an inner closure.
pub async fn closure_capture(
    ctx: &Ctx<ProcessId>,
    arr: &RegisterArray<u64>,
) -> Result<u64, Crashed> {
    let pick = move |i: usize| arr.slot(i);
    pick(0).read(ctx).await
}

/// Aliases the execution context into a local.
pub async fn aliased_ctx(ctx: &Ctx<ProcessId>) -> Result<(), Crashed> {
    let stash = ctx;
    stash.yield_step().await
}
