//! Rule C4 violation: a `wait_free` claim over an unbounded helping loop.
//!
//! Wait-freedom (Theorems 2, 6, 10) requires a bound on the steps any
//! invocation takes regardless of other processes. This routine retries
//! until the detector nominates the caller — which may never happen — yet
//! claims `wait_free` with no `#[conform(bound = "…")]` on the loop.

use upsilon_sim::{Crashed, Ctx, ProcessId};

/// Spins on the failure detector until self-nomination.
// #[conform(wait_free)]
pub async fn helping_wait(ctx: &Ctx<ProcessId>) -> Result<(), Crashed> {
    loop {
        let leader = ctx.query_fd().await?;
        if leader == ctx.pid() {
            return Ok(());
        }
        ctx.yield_step().await?;
    }
}
