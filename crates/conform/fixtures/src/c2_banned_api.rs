//! Rule C2 violations: host APIs inside an algorithm body.
//!
//! Algorithm steps must be deterministic functions of process state and
//! granted responses. Wall clocks and host sleeping introduce behaviour
//! the model cannot schedule or replay.

use upsilon_sim::{Crashed, Ctx, ProcessId};

/// Reads the host clock and sleeps the host thread mid-protocol.
pub async fn clocked(ctx: &Ctx<ProcessId>) -> Result<u64, Crashed> {
    let t0 = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(0));
    ctx.yield_step().await?;
    Ok(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX))
}
