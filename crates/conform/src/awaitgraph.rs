//! Rule C4: the await graph and static per-invocation step bounds.
//!
//! Every `.await` in algorithm code costs the bound of the operation it
//! mediates: `Ctx` step methods cost one step, calls to indexed async
//! routines cost that routine's own bound (computed recursively, maximum
//! over same-name definitions), synchronous helpers cost nothing. Loops
//! multiply their body cost by an iteration bound taken from a
//! `#[conform(bound = "...")]` annotation; a loop whose body takes steps
//! but has no annotation is unbounded, as is any await cycle (recursion).
//!
//! Branches are *summed*, not maxed, so the result is a sound (if
//! sometimes loose) upper bound. A `#[conform(bound = "...")]` annotation
//! directly on a `fn` overrides the computed bound for that definition —
//! the escape hatch for dispatch patterns the name-based resolution would
//! misread as recursion.

use std::collections::BTreeMap;

use crate::bound::{parse_expr, Expr};
use crate::diag::{BoundRow, Finding, RuleId};
use crate::model::{parse_annotation, AlgoBody, FileModel, FnDef};
use crate::rules::{chain_calls, chain_start, FnIndex, NameClass};
use crate::tree::{Delim, Spanned, Tok};

/// A step bound, or the reason there is none.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Cost {
    Bounded(Expr),
    Unbounded { line: u32, why: String },
}

impl Cost {
    fn zero() -> Cost {
        Cost::Bounded(Expr::zero())
    }

    fn mul_by(self, factor: Expr) -> Cost {
        match self {
            Cost::Bounded(e) => Cost::Bounded(factor * e),
            u @ Cost::Unbounded { .. } => u,
        }
    }

    fn max(self, rhs: Cost) -> Cost {
        match (self, rhs) {
            (Cost::Bounded(a), Cost::Bounded(b)) => Cost::Bounded(a.max(b)),
            (u @ Cost::Unbounded { .. }, _) | (_, u @ Cost::Unbounded { .. }) => u,
        }
    }

    fn is_zero(&self) -> bool {
        matches!(self, Cost::Bounded(e) if e.is_zero())
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;

    /// Sequential composition: unboundedness is absorbing.
    fn add(self, rhs: Cost) -> Cost {
        match (self, rhs) {
            (Cost::Bounded(a), Cost::Bounded(b)) => Cost::Bounded(a + b),
            (u @ Cost::Unbounded { .. }, _) | (_, u @ Cost::Unbounded { .. }) => u,
        }
    }
}

struct Graph<'a> {
    index: &'a FnIndex,
    /// name -> indices into `defs`.
    by_name: BTreeMap<&'a str, Vec<usize>>,
    defs: Vec<&'a FnDef>,
    memo: BTreeMap<String, Cost>,
    findings: Vec<Finding>,
}

/// Computes bounds for every algorithm routine and the C4 findings for
/// violated `wait_free` claims.
pub fn compute(files: &[FileModel], index: &FnIndex) -> (Vec<BoundRow>, Vec<Finding>) {
    let mut defs: Vec<&FnDef> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for file in files {
        for f in &file.fns {
            if f.is_async && f.takes_ctx && !f.body.is_empty() {
                by_name.entry(&f.name).or_default().push(defs.len());
                defs.push(f);
            }
        }
    }
    let mut graph = Graph {
        index,
        by_name,
        defs: defs.clone(),
        memo: BTreeMap::new(),
        findings: Vec::new(),
    };
    let mut rows = Vec::new();
    for def in &defs {
        let mut visiting = vec![def.name.clone()];
        let cost = graph.def_cost(def, &mut visiting);
        let wait_free = def.ann.as_ref().is_some_and(|a| a.wait_free);
        if wait_free {
            if let Cost::Unbounded { line, why } = &cost {
                graph.findings.push(Finding {
                    rule: RuleId::C4,
                    file: def.file.clone(),
                    line: def.line,
                    message: format!(
                        "`{}` claims wait_free but has no static step bound: {why} (line {line})",
                        def.name
                    ),
                    suggestion: "annotate the offending loop with \
                                 #[conform(bound = \"...\")] or drop the wait_free claim"
                        .to_string(),
                });
            }
        }
        rows.push(row(&def.name, &def.file, def.line, wait_free, cost));
    }
    for file in files {
        for a in &file.algos {
            let cost = graph.algo_cost(a);
            rows.push(row("<algo>", &a.file, a.line, false, cost));
        }
    }
    (rows, graph.findings)
}

fn row(name: &str, file: &str, line: u32, wait_free: bool, cost: Cost) -> BoundRow {
    match cost {
        Cost::Bounded(e) => BoundRow {
            name: name.to_string(),
            file: file.to_string(),
            line,
            wait_free,
            params: e.params().into_iter().collect(),
            bound: Some(e.to_string()),
            unbounded: None,
        },
        Cost::Unbounded { line: at, why } => BoundRow {
            name: name.to_string(),
            file: file.to_string(),
            line,
            wait_free,
            params: Vec::new(),
            bound: None,
            unbounded: Some(format!("{why} (line {at})")),
        },
    }
}

impl<'a> Graph<'a> {
    fn algo_cost(&mut self, a: &AlgoBody) -> Cost {
        let mut visiting = Vec::new();
        self.body_cost(&a.body, &a.file, &mut visiting)
    }

    /// The bound of one definition: annotation override, else body walk.
    fn def_cost(&mut self, def: &FnDef, visiting: &mut Vec<String>) -> Cost {
        if let Some(bound) = def.ann.as_ref().and_then(|a| a.bound.as_ref()) {
            let ann_line = def.ann.as_ref().map_or(def.line, |a| a.line);
            return match parse_expr(bound) {
                Ok(e) => Cost::Bounded(e),
                Err(e) => {
                    self.findings.push(Finding {
                        rule: RuleId::C4,
                        file: def.file.clone(),
                        line: ann_line,
                        message: format!("invalid bound expression `{bound}`: {e}"),
                        suggestion: "bounds are integer arithmetic over parameters: \
                                     INT, IDENT, +, -, *, parentheses, max(a, b)"
                            .to_string(),
                    });
                    Cost::Unbounded {
                        line: ann_line,
                        why: "invalid bound annotation".to_string(),
                    }
                }
            };
        }
        let body = def.body.clone();
        let file = def.file.clone();
        self.body_cost(&body, &file, visiting)
    }

    /// Bound of a callee name: maximum over all same-name definitions.
    fn bound_of_name(&mut self, name: &str, line: u32, visiting: &mut Vec<String>) -> Cost {
        if let Some(hit) = self.memo.get(name) {
            return hit.clone();
        }
        if visiting.iter().any(|v| v == name) {
            return Cost::Unbounded {
                line,
                why: format!("recursive await cycle through `{name}`"),
            };
        }
        let Some(indices) = self.by_name.get(name).cloned() else {
            return Cost::Unbounded {
                line,
                why: format!("awaited routine `{name}` is not indexed"),
            };
        };
        visiting.push(name.to_string());
        let mut acc = Cost::zero();
        for i in indices {
            let def = self.defs[i];
            let c = self.def_cost(def, visiting);
            acc = acc.max(c);
        }
        visiting.pop();
        // Only cache cycle-free results: a cost computed inside a cycle is
        // relative to the current resolution stack.
        if !visiting
            .iter()
            .any(|v| self.by_name.contains_key(v.as_str()))
            || visiting.is_empty()
        {
            self.memo.insert(name.to_string(), acc.clone());
        }
        acc
    }

    /// Sum of step costs over a token list, with loop multiplication.
    fn body_cost(&mut self, toks: &[Spanned], file: &str, visiting: &mut Vec<String>) -> Cost {
        let mut total = Cost::zero();
        let mut pending: Option<Expr> = None;
        let mut i = 0usize;
        while i < toks.len() {
            match &toks[i].tok {
                Tok::Conform(text) => {
                    if let Ok(ann) = parse_annotation(text, toks[i].line) {
                        if let Some(b) = ann.bound {
                            match parse_expr(&b) {
                                Ok(e) => pending = Some(e),
                                Err(e) => {
                                    self.findings.push(Finding {
                                        rule: RuleId::C4,
                                        file: file.to_string(),
                                        line: toks[i].line,
                                        message: format!("invalid bound expression `{b}`: {e}"),
                                        suggestion: "bounds are integer arithmetic over \
                                                     parameters: INT, IDENT, +, -, *, \
                                                     parentheses, max(a, b)"
                                            .to_string(),
                                    });
                                }
                            }
                        }
                    }
                    i += 1;
                }
                Tok::Ident(kw) if kw == "loop" => {
                    let Some(Spanned {
                        tok: Tok::Group(Delim::Brace, children, _),
                        ..
                    }) = toks.get(i + 1)
                    else {
                        i += 1;
                        continue;
                    };
                    let inner = self.body_cost(children, file, visiting);
                    total = total + self.looped(inner, pending.take(), toks[i].line, "loop");
                    i += 2;
                }
                Tok::Ident(kw) if kw == "while" => {
                    let mut j = i + 1;
                    while j < toks.len() && !matches!(&toks[j].tok, Tok::Group(Delim::Brace, ..)) {
                        j += 1;
                    }
                    let cond = self.body_cost(&toks[i + 1..j.min(toks.len())], file, visiting);
                    let inner = match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Group(Delim::Brace, children, _)) => {
                            self.body_cost(children, file, visiting)
                        }
                        _ => Cost::zero(),
                    };
                    let per_iter = inner + cond.clone();
                    let repeated = self.looped(per_iter, pending.take(), toks[i].line, "while");
                    // The condition runs once more than the body.
                    total = total + repeated + cond;
                    i = j + 1;
                }
                Tok::Ident(kw) if kw == "for" => {
                    let mut j = i + 1;
                    while j < toks.len() && toks[j].ident() != Some("in") {
                        j += 1;
                    }
                    let mut k = j + 1;
                    while k < toks.len() && !matches!(&toks[k].tok, Tok::Group(Delim::Brace, ..)) {
                        k += 1;
                    }
                    // The iterator expression is evaluated once.
                    let iter_cost = self.body_cost(&toks[j + 1..k.min(toks.len())], file, visiting);
                    let inner = match toks.get(k).map(|t| &t.tok) {
                        Some(Tok::Group(Delim::Brace, children, _)) => {
                            self.body_cost(children, file, visiting)
                        }
                        _ => Cost::zero(),
                    };
                    let repeated = self.looped(inner, pending.take(), toks[i].line, "for");
                    total = total + iter_cost + repeated;
                    i = k + 1;
                }
                Tok::Punct('.') if toks.get(i + 1).and_then(|t| t.ident()) == Some("await") => {
                    let start = chain_start(toks, i);
                    let line = toks[i].line;
                    for (name, group_idx) in chain_calls(toks, start, i) {
                        let call_cost = match self.index.classify(&name) {
                            NameClass::StepMethod => Cost::Bounded(Expr::one()),
                            NameClass::AsyncCtx => self.bound_of_name(&name, line, visiting),
                            NameClass::LocalMethod | NameClass::Sync | NameClass::AsyncOther => {
                                Cost::zero()
                            }
                            NameClass::Unknown => {
                                if matches!(&toks[group_idx].tok,
                                    Tok::Group(_, children, _) if flat_has_ctx(children))
                                {
                                    Cost::Unbounded {
                                        line,
                                        why: format!("awaited call to unindexed routine `{name}`"),
                                    }
                                } else {
                                    Cost::zero()
                                }
                            }
                        };
                        total = total + call_cost;
                    }
                    i += 2;
                }
                Tok::Punct(';') => {
                    pending = None;
                    i += 1;
                }
                Tok::Group(_, children, _) => {
                    let inner = self.body_cost(children, file, visiting);
                    total = total + inner;
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }
        total
    }

    /// Applies an iteration bound to a loop-body cost.
    fn looped(&mut self, inner: Cost, bound: Option<Expr>, line: u32, kw: &str) -> Cost {
        match bound {
            Some(e) => inner.mul_by(e),
            None if inner.is_zero() => Cost::zero(),
            None => match inner {
                u @ Cost::Unbounded { .. } => u,
                Cost::Bounded(_) => Cost::Unbounded {
                    line,
                    why: format!("`{kw}` loop takes steps but has no #[conform(bound)]"),
                },
            },
        }
    }
}

fn flat_has_ctx(toks: &[Spanned]) -> bool {
    toks.iter().any(|t| match &t.tok {
        Tok::Ident(s) => s == "ctx",
        Tok::Group(_, children, _) => flat_has_ctx(children),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::model_file;

    fn bounds(src: &str) -> (Vec<BoundRow>, Vec<Finding>) {
        let model = model_file("crates/mem/src/t.rs", src);
        assert!(model.errors.is_empty(), "{:?}", model.errors);
        let files = vec![model];
        let index = FnIndex::build(&files);
        compute(&files, &index)
    }

    fn bound_of<'a>(rows: &'a [BoundRow], name: &str) -> &'a BoundRow {
        rows.iter().find(|r| r.name == name).expect("row exists")
    }

    #[test]
    fn straight_line_steps_sum() {
        let (rows, findings) = bounds(
            "
async fn two(ctx: &Ctx<()>) -> Result<(), Crashed> {
    ctx.invoke(1).await?;
    ctx.query_fd().await?;
    Ok(())
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(bound_of(&rows, "two").bound.as_deref(), Some("2"));
    }

    #[test]
    fn callee_bounds_compose() {
        let (rows, _) = bounds(
            "
async fn read(ctx: &Ctx<()>) -> Result<u64, Crashed> { ctx.invoke(0).await }
async fn twice(ctx: &Ctx<()>) -> Result<u64, Crashed> {
    let a = read(ctx).await?;
    let b = read(ctx).await?;
    Ok(a + b)
}
",
        );
        assert_eq!(bound_of(&rows, "twice").bound.as_deref(), Some("2"));
    }

    #[test]
    fn annotated_loops_multiply() {
        let (rows, findings) = bounds(
            "
// #[conform(wait_free)]
async fn collect(ctx: &Ctx<()>) -> Result<(), Crashed> {
    // #[conform(bound = \"n_plus_1\")]
    for i in 0..9 {
        ctx.invoke(i).await?;
    }
    Ok(())
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
        let row = bound_of(&rows, "collect");
        assert_eq!(row.bound.as_deref(), Some("n_plus_1"));
        assert_eq!(row.params, vec!["n_plus_1".to_string()]);
        assert!(row.wait_free);
    }

    #[test]
    fn unannotated_step_loop_is_unbounded_and_claim_trips_c4() {
        let (rows, findings) = bounds(
            "
// #[conform(wait_free)]
async fn spin(ctx: &Ctx<()>) -> Result<(), Crashed> {
    loop {
        ctx.query_fd().await?;
    }
}
",
        );
        assert!(bound_of(&rows, "spin").bound.is_none());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::C4);
        assert!(findings[0].message.contains("spin"), "{findings:?}");
    }

    #[test]
    fn unclaimed_unbounded_loop_is_reported_but_not_a_finding() {
        let (rows, findings) = bounds(
            "
async fn spin(ctx: &Ctx<()>) -> Result<(), Crashed> {
    loop {
        ctx.query_fd().await?;
    }
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert!(bound_of(&rows, "spin").unbounded.is_some());
    }

    #[test]
    fn recursion_is_unbounded() {
        let (rows, _) = bounds(
            "
async fn ping(ctx: &Ctx<()>) -> Result<(), Crashed> { pong(ctx).await }
async fn pong(ctx: &Ctx<()>) -> Result<(), Crashed> { ping(ctx).await }
",
        );
        assert!(bound_of(&rows, "ping").unbounded.is_some());
        assert!(bound_of(&rows, "pong").unbounded.is_some());
    }

    #[test]
    fn fn_level_annotation_overrides_the_walk() {
        let (rows, findings) = bounds(
            "
// #[conform(wait_free, bound = \"n_plus_1 + 2\")]
async fn dispatch(ctx: &Ctx<()>) -> Result<(), Crashed> {
    loop {
        ctx.invoke(0).await?;
    }
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(
            bound_of(&rows, "dispatch").bound.as_deref(),
            Some("n_plus_1 + 2")
        );
    }

    #[test]
    fn loops_with_no_steps_cost_nothing() {
        let (rows, findings) = bounds(
            "
async fn tally(ctx: &Ctx<()>) -> Result<u64, Crashed> {
    let mut acc = 0;
    for i in 0..10 {
        acc += i;
    }
    ctx.decide(acc).await?;
    Ok(acc)
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(bound_of(&rows, "tally").bound.as_deref(), Some("1"));
    }

    #[test]
    fn while_condition_counts_one_extra_evaluation() {
        let (rows, _) = bounds(
            "
async fn read(ctx: &Ctx<()>) -> Result<u64, Crashed> { ctx.invoke(0).await }
async fn poll(ctx: &Ctx<()>) -> Result<(), Crashed> {
    // #[conform(bound = \"W\")]
    while read(ctx).await? == 0 {
        ctx.yield_step().await?;
    }
    Ok(())
}
",
        );
        // W * (1 + 1) + 1 trailing condition evaluation.
        assert_eq!(bound_of(&rows, "poll").bound.as_deref(), Some("W * 2 + 1"));
    }

    #[test]
    fn algo_bodies_get_rows() {
        let (rows, _) = bounds(
            "
fn factory(v: u64) -> AlgoFn<()> {
    algo(move |ctx| async move {
        ctx.decide(v).await?;
        Ok(())
    })
}
",
        );
        assert_eq!(bound_of(&rows, "<algo>").bound.as_deref(), Some("1"));
    }

    #[test]
    fn bad_bound_expression_is_a_c4_finding() {
        let (_, findings) = bounds(
            "
// #[conform(wait_free, bound = \"2 ^ n\")]
async fn oops(ctx: &Ctx<()>) -> Result<(), Crashed> { ctx.yield_step().await }
",
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RuleId::C4 && f.message.contains("invalid bound expression")),
            "{findings:?}"
        );
    }
}
