//! Bracket-tree parser: groups the flat token stream by matched
//! `()`/`[]`/`{}` delimiters.
//!
//! The rule passes walk this tree instead of raw text: a call's argument
//! list is one node, a loop body is one node, and sibling order at each
//! level is source order — enough structure to reason about postfix chains,
//! await points and loop nesting without a full Rust grammar.

use crate::lexer::{RawSpanned, RawTok};

/// A delimiter kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

impl Delim {
    fn open(c: char) -> Option<Delim> {
        match c {
            '(' => Some(Delim::Paren),
            '[' => Some(Delim::Bracket),
            '{' => Some(Delim::Brace),
            _ => None,
        }
    }

    fn close(self) -> char {
        match self {
            Delim::Paren => ')',
            Delim::Bracket => ']',
            Delim::Brace => '}',
        }
    }
}

/// A tree token: like [`RawTok`] but with delimited groups folded into
/// single nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A lifetime or loop label.
    Lifetime(String),
    /// One punctuation character (delimiters excluded).
    Punct(char),
    /// An opaque literal.
    Literal,
    /// The inner text of a `#[conform(...)]` annotation comment.
    Conform(String),
    /// A delimited group; carries the line of the closing delimiter so
    /// spans can be computed.
    Group(Delim, Vec<Spanned>, u32),
}

/// A tree token with the 1-based line it starts on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line of the token (for groups: the opening delimiter).
    pub line: u32,
}

impl Spanned {
    /// The last source line this token covers.
    pub fn end_line(&self) -> u32 {
        match &self.tok {
            Tok::Group(_, _, close) => *close,
            _ => self.line,
        }
    }

    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.tok, Tok::Punct(p) if *p == c)
    }
}

/// Parses a flat token stream into a bracket tree.
///
/// # Errors
///
/// Returns `(line, message)` for unbalanced delimiters.
pub fn parse(raw: Vec<RawSpanned>) -> Result<Vec<Spanned>, (u32, String)> {
    // Each stack frame: (delimiter, opening line, children so far).
    let mut stack: Vec<(Delim, u32, Vec<Spanned>)> = Vec::new();
    let mut top: Vec<Spanned> = Vec::new();
    let mut last_line = 1u32;
    for RawSpanned { tok, line } in raw {
        last_line = line;
        let spanned = match tok {
            RawTok::Punct(c) => {
                if let Some(d) = Delim::open(c) {
                    stack.push((d, line, Vec::new()));
                    continue;
                }
                if let Some(expect) = stack.last().map(|(d, _, _)| d.close()) {
                    if c == expect {
                        let (d, open_line, children) = stack.pop().expect("stack is non-empty");
                        let group = Spanned {
                            tok: Tok::Group(d, children, line),
                            line: open_line,
                        };
                        match stack.last_mut() {
                            Some((_, _, parent)) => parent.push(group),
                            None => top.push(group),
                        }
                        continue;
                    }
                }
                if matches!(c, ')' | ']' | '}') {
                    return Err((line, format!("unmatched closing delimiter `{c}`")));
                }
                Spanned {
                    tok: Tok::Punct(c),
                    line,
                }
            }
            RawTok::Ident(s) => Spanned {
                tok: Tok::Ident(s),
                line,
            },
            RawTok::Lifetime(s) => Spanned {
                tok: Tok::Lifetime(s),
                line,
            },
            RawTok::Literal => Spanned {
                tok: Tok::Literal,
                line,
            },
            RawTok::Conform(s) => Spanned {
                tok: Tok::Conform(s),
                line,
            },
        };
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(spanned),
            None => top.push(spanned),
        }
    }
    if let Some((d, open_line, _)) = stack.first() {
        return Err((
            *open_line,
            format!(
                "unclosed `{}` opened here (file ends at line {last_line})",
                match d {
                    Delim::Paren => '(',
                    Delim::Bracket => '[',
                    Delim::Brace => '{',
                }
            ),
        ));
    }
    Ok(top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> Vec<Spanned> {
        parse(lex(src)).expect("balanced")
    }

    #[test]
    fn groups_nest() {
        let t = tree("f(a, g[0], { x })");
        assert_eq!(t.len(), 2);
        let Tok::Group(Delim::Paren, children, _) = &t[1].tok else {
            panic!("expected paren group, got {:?}", t[1].tok);
        };
        let kinds: Vec<bool> = children
            .iter()
            .map(|s| matches!(s.tok, Tok::Group(..)))
            .collect();
        assert_eq!(kinds, vec![false, false, false, true, false, true]);
    }

    #[test]
    fn close_lines_give_spans() {
        let t = tree("fn f()\n{\n  body();\n}");
        let body = t.last().expect("body group");
        assert_eq!(body.line, 2);
        assert_eq!(body.end_line(), 4);
    }

    #[test]
    fn unbalanced_is_an_error() {
        assert!(parse(lex("fn f() {")).is_err());
        assert!(parse(lex("}")).is_err());
        // Mismatched nesting: `(` closed by `}`.
        assert!(parse(lex("( }")).is_err());
    }
}
