//! Discovery of algorithm bodies and the workspace function index.
//!
//! An *algorithm body* — the code the §3.1 model contract governs — is
//! either:
//!
//! * the `async move { ... }` block of a closure passed to `algo(...)`
//!   (the simulator's entry point for process algorithms), or
//! * the body of an `async fn` that takes the execution context (a
//!   parameter named `ctx` or of type `Ctx<...>`) — the helper routines
//!   algorithms are composed from (`Register::read`, `converge`, Fig. 1's
//!   `propose`, ...).
//!
//! `#[cfg(test)] mod` subtrees and `tests/`/`benches/` files are excluded:
//! harness code legitimately uses host constructs (mutex-collected results,
//! for instance) and is not algorithm code.

use crate::lexer;
use crate::tree::{self, Delim, Spanned, Tok};

/// A parsed `#[conform(...)]` annotation.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Annotation {
    /// `wait_free`: the routine claims a bounded per-invocation step count.
    pub wait_free: bool,
    /// `bound = "expr"`: a loop iteration bound, or a whole-routine bound
    /// override when attached to a `fn`.
    pub bound: Option<String>,
    /// Line of the annotation comment.
    pub line: u32,
}

/// Parses the inner text of `#[conform(...)]`.
///
/// Items are comma-separated: `wait_free` and/or `bound = "<expr>"`.
///
/// # Errors
///
/// Returns a description of the first malformed item.
pub fn parse_annotation(text: &str, line: u32) -> Result<Annotation, String> {
    let mut ann = Annotation {
        line,
        ..Annotation::default()
    };
    for item in split_top_level(text) {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if item == "wait_free" {
            ann.wait_free = true;
        } else if let Some(rest) = item.strip_prefix("bound") {
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('=') else {
                return Err(format!("expected `bound = \"...\"`, got `{item}`"));
            };
            let rest = rest.trim();
            let inner = rest
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| format!("bound expression must be quoted, got `{rest}`"))?;
            ann.bound = Some(inner.to_string());
        } else {
            return Err(format!(
                "unknown conform annotation item `{item}` (known: wait_free, bound = \"...\")"
            ));
        }
    }
    Ok(ann)
}

/// Splits annotation text at top-level commas (commas inside quotes do not
/// split).
fn split_top_level(text: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    items.push(cur);
    items
}

/// A discovered function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// Repository-relative file path.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Whether the definition is `async`.
    pub is_async: bool,
    /// Whether a parameter mentions `ctx` or `Ctx` (execution-context
    /// taking routines are algorithm code).
    pub takes_ctx: bool,
    /// Parameter-list tokens (used to spot shared-object-handle params).
    pub params: Vec<Spanned>,
    /// Body tokens (empty for bodiless trait declarations).
    pub body: Vec<Spanned>,
    /// The `#[conform(...)]` annotation directly above the item, if any.
    pub ann: Option<Annotation>,
}

/// A discovered `algo(|ctx| async move { ... })` closure body.
#[derive(Clone, Debug)]
pub struct AlgoBody {
    /// Repository-relative file path.
    pub file: String,
    /// Line of the `algo(` call.
    pub line: u32,
    /// The async block's tokens.
    pub body: Vec<Spanned>,
}

/// Everything discovered in one file.
#[derive(Clone, Default, Debug)]
pub struct FileModel {
    /// Function definitions outside test regions.
    pub fns: Vec<FnDef>,
    /// Algorithm closure bodies outside test regions.
    pub algos: Vec<AlgoBody>,
    /// Parse problems: `(line, message)` for bad trees or bad annotations.
    pub errors: Vec<(u32, String)>,
}

/// Lexes, tree-parses and walks one file.
pub fn model_file(rel_file: &str, source: &str) -> FileModel {
    let mut model = FileModel::default();
    let raw = lexer::lex(source);
    let tree = match tree::parse(raw) {
        Ok(t) => t,
        Err((line, msg)) => {
            model.errors.push((line, msg));
            return model;
        }
    };
    walk(&tree, rel_file, &mut model);
    model
}

/// Whether a bracket attribute group is `cfg(test)` (or contains it, as in
/// `cfg(all(test, ...))`).
fn is_cfg_test(children: &[Spanned]) -> bool {
    let mut saw_cfg = false;
    let mut saw_test = false;
    fn scan(children: &[Spanned], saw_cfg: &mut bool, saw_test: &mut bool) {
        for c in children {
            match &c.tok {
                Tok::Ident(s) if s == "cfg" => *saw_cfg = true,
                Tok::Ident(s) if s == "test" => *saw_test = true,
                Tok::Group(_, inner, _) => scan(inner, saw_cfg, saw_test),
                _ => {}
            }
        }
    }
    scan(children, &mut saw_cfg, &mut saw_test);
    saw_cfg && saw_test
}

fn walk(toks: &[Spanned], file: &str, model: &mut FileModel) {
    let mut pending_ann: Option<Annotation> = None;
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Conform(text) => {
                match parse_annotation(text, toks[i].line) {
                    Ok(a) => pending_ann = Some(a),
                    Err(e) => model.errors.push((toks[i].line, e)),
                }
                i += 1;
            }
            Tok::Punct('#') => {
                // `#[...]` or `#![...]` attribute; note cfg(test).
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if let Some(Spanned {
                    tok: Tok::Group(Delim::Bracket, children, _),
                    ..
                }) = toks.get(j)
                {
                    if is_cfg_test(children) {
                        pending_cfg_test = true;
                    }
                    i = j + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "mod" && pending_cfg_test => {
                // Skip the whole `#[cfg(test)] mod name { ... }` subtree.
                let mut j = i + 1;
                while j < toks.len()
                    && !matches!(&toks[j].tok, Tok::Group(Delim::Brace, ..))
                    && !toks[j].is_punct(';')
                {
                    j += 1;
                }
                pending_cfg_test = false;
                pending_ann = None;
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let ann = pending_ann.take();
                let is_async = preceded_by_async(toks, i);
                i = scan_fn(toks, i, file, is_async, ann, model);
                pending_cfg_test = false;
            }
            Tok::Ident(kw) if kw == "algo" => {
                // `algo ( ... |ctx| async move { body } ... )`
                if let Some(Spanned {
                    tok: Tok::Group(Delim::Paren, args, _),
                    ..
                }) = toks.get(i + 1)
                {
                    if let Some(body) = closure_body(args) {
                        model.algos.push(AlgoBody {
                            file: file.to_string(),
                            line: toks[i].line,
                            body: body.to_vec(),
                        });
                    } else {
                        model.errors.push((
                            toks[i].line,
                            "algo(...) call without a recognizable \
                             `|ctx| async move { ... }` closure"
                                .to_string(),
                        ));
                    }
                    // Recurse into the arguments anyway (nothing else to
                    // find there today, but nested items stay covered).
                    walk(args, file, model);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Tok::Group(_, children, _) => {
                pending_ann = None;
                pending_cfg_test = false;
                walk(children, file, model);
                i += 1;
            }
            Tok::Punct(';') => {
                pending_ann = None;
                pending_cfg_test = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
}

/// Whether the tokens shortly before index `i` (the `fn` keyword) include
/// `async` without an intervening item boundary.
fn preceded_by_async(toks: &[Spanned], i: usize) -> bool {
    let start = i.saturating_sub(4);
    toks[start..i].iter().any(|t| t.ident() == Some("async"))
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index to
/// resume at.
fn scan_fn(
    toks: &[Spanned],
    fn_idx: usize,
    file: &str,
    is_async: bool,
    ann: Option<Annotation>,
    model: &mut FileModel,
) -> usize {
    let line = toks[fn_idx].line;
    let Some(name) = toks.get(fn_idx + 1).and_then(|t| t.ident()) else {
        return fn_idx + 1;
    };
    // Find the parameter list: the first paren group after the name (the
    // generic parameter lists in this codebase contain no parentheses).
    let mut j = fn_idx + 2;
    let params = loop {
        match toks.get(j) {
            Some(Spanned {
                tok: Tok::Group(Delim::Paren, children, _),
                ..
            }) => break children,
            Some(t) if t.is_punct(';') || matches!(t.tok, Tok::Group(Delim::Brace, ..)) => {
                return j; // malformed or macro-ish; skip
            }
            Some(_) => j += 1,
            None => return toks.len(),
        }
    };
    let takes_ctx = flat_contains_ident(params, "ctx") || flat_contains_ident(params, "Ctx");
    let params = params.clone();
    // Find the body: the first brace group before a `;` (a `;` first means
    // a bodiless trait-method declaration).
    let mut k = j + 1;
    let body: Vec<Spanned> = loop {
        match toks.get(k) {
            Some(Spanned {
                tok: Tok::Group(Delim::Brace, children, _),
                ..
            }) => break children.clone(),
            Some(t) if t.is_punct(';') => break Vec::new(),
            Some(_) => k += 1,
            None => break Vec::new(),
        }
    };
    // Recurse into the body: nested `algo(...)` closures (factory fns) and
    // nested items are discovered there.
    if !body.is_empty() {
        walk(&body, file, model);
    }
    model.fns.push(FnDef {
        name: name.to_string(),
        file: file.to_string(),
        line,
        is_async,
        takes_ctx,
        params,
        body,
        ann,
    });
    k + 1
}

/// Finds the `async { ... }` (or `async move { ... }`) block of a
/// `|ctx| ...` closure among call arguments.
fn closure_body(args: &[Spanned]) -> Option<&[Spanned]> {
    // Match: `|` ... `ctx` ... `|` then the first brace group after an
    // `async` keyword.
    let close = {
        let open = args.iter().position(|t| t.is_punct('|'))?;
        let close = args[open + 1..].iter().position(|t| t.is_punct('|'))? + open + 1;
        if !args[open..close].iter().any(|t| t.ident() == Some("ctx")) {
            return None;
        }
        close
    };
    let mut saw_async = false;
    for t in &args[close + 1..] {
        match &t.tok {
            Tok::Ident(s) if s == "async" => saw_async = true,
            Tok::Group(Delim::Brace, children, _) if saw_async => return Some(children),
            _ => {}
        }
    }
    None
}

fn flat_contains_ident(toks: &[Spanned], name: &str) -> bool {
    toks.iter().any(|t| match &t.tok {
        Tok::Ident(s) => s == name,
        Tok::Group(_, children, _) => flat_contains_ident(children, name),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_ctx_taking_async_fns() {
        let src = "
pub async fn propose(ctx: &Ctx<ProcessSet>, v: u64) -> Result<u64, Crashed> {
    ctx.decide(v).await
}
fn helper(x: u64) -> u64 { x }
";
        let m = model_file("crates/agreement/src/x.rs", src);
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].is_async && m.fns[0].takes_ctx);
        assert_eq!(m.fns[0].name, "propose");
        assert_eq!(m.fns[0].line, 2);
        assert!(!m.fns[1].is_async && !m.fns[1].takes_ctx);
        assert!(m.errors.is_empty());
    }

    #[test]
    fn finds_algo_closures_even_nested_in_factories() {
        let src = "
pub fn algorithm(v: u64) -> AlgoFn<()> {
    algo(move |ctx| async move {
        ctx.decide(v).await?;
        Ok(())
    })
}
";
        let m = model_file("crates/agreement/src/x.rs", src);
        assert_eq!(m.algos.len(), 1);
        assert_eq!(m.algos[0].line, 3);
        assert!(!m.algos[0].body.is_empty());
    }

    #[test]
    fn skips_cfg_test_modules() {
        let src = "
async fn real(ctx: &Ctx<()>) -> Result<(), Crashed> { ctx.yield_step().await }
#[cfg(test)]
mod tests {
    async fn fake(ctx: &Ctx<()>) -> Result<(), Crashed> { ctx.yield_step().await }
    fn harness() { algo(move |ctx| async move { Ok(()) }); }
}
";
        let m = model_file("crates/agreement/src/x.rs", src);
        assert_eq!(m.fns.len(), 1, "{:?}", m.fns);
        assert_eq!(m.fns[0].name, "real");
        assert!(m.algos.is_empty());
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "
pub trait LeaderSource<D> {
    async fn current_leader(&mut self, ctx: &Ctx<D>) -> Result<ProcessId, Crashed>;
}
";
        let m = model_file("crates/agreement/src/x.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].body.is_empty());
        assert!(m.fns[0].takes_ctx);
    }

    #[test]
    fn annotations_attach_to_the_following_fn() {
        let src = "
// #[conform(wait_free, bound = \"n_plus_1 + 1\")]
pub async fn bounded(ctx: &Ctx<()>) -> Result<(), Crashed> { ctx.yield_step().await }
pub async fn plain(ctx: &Ctx<()>) -> Result<(), Crashed> { ctx.yield_step().await }
";
        let m = model_file("crates/mem/src/x.rs", src);
        let ann = m.fns[0].ann.as_ref().expect("annotated");
        assert!(ann.wait_free);
        assert_eq!(ann.bound.as_deref(), Some("n_plus_1 + 1"));
        assert!(m.fns[1].ann.is_none());
    }

    #[test]
    fn annotation_parser_rejects_junk() {
        assert!(parse_annotation("wait_free", 1).expect("ok").wait_free);
        assert!(parse_annotation("bound = \"R\", wait_free", 1).is_ok());
        assert!(parse_annotation("speedy", 1).is_err());
        assert!(parse_annotation("bound = R", 1).is_err());
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let m = model_file("crates/mem/src/x.rs", "fn f() {\n");
        assert_eq!(m.errors.len(), 1);
    }
}
