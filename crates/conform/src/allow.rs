//! A generic rule/path allowlist, shared by the conformance checker and
//! (by delegation) the determinism lint in `upsilon-analysis`.
//!
//! Format: one `<rule-id> <path>` pair per line; `#` starts a comment.
//! Paths are repository-relative and matched exactly.

/// A parsed allowlist.
#[derive(Clone, Default, Debug)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// An empty allowlist (suppresses nothing).
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// Parses allowlist text, validating rule ids against `known`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or unknown-rule line.
    pub fn parse(text: &str, known: &[&str]) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let n = idx + 1;
            let mut parts = line.split_whitespace();
            let (Some(rule_id), Some(path), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("allowlist line {n}: expected '<rule-id> <path>'"));
            };
            if !known.contains(&rule_id) {
                return Err(format!(
                    "allowlist line {n}: unknown rule '{rule_id}' (known: {})",
                    known.join(", ")
                ));
            }
            entries.push((rule_id.to_string(), path.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Whether `(rule_id, file)` is suppressed.
    pub fn permits(&self, rule_id: &str, file: &str) -> bool {
        self.entries.iter().any(|(r, p)| r == rule_id && p == file)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOWN: &[&str] = &["C1", "C2", "wall-clock"];

    #[test]
    fn parses_entries_and_comments() {
        let a = Allowlist::parse(
            "# header\nC1 crates/a/src/x.rs\nwall-clock crates/b/src/main.rs # timing\n",
            KNOWN,
        )
        .expect("valid");
        assert_eq!(a.len(), 2);
        assert!(a.permits("C1", "crates/a/src/x.rs"));
        assert!(a.permits("wall-clock", "crates/b/src/main.rs"));
        assert!(!a.permits("C2", "crates/a/src/x.rs"));
        assert!(!a.permits("C1", "crates/a/src/y.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_bad_shapes() {
        let err = Allowlist::parse("C9 path.rs", KNOWN).expect_err("unknown rule");
        assert!(err.contains("unknown rule 'C9'"), "{err}");
        assert!(err.contains("known: C1, C2, wall-clock"), "{err}");
        let err = Allowlist::parse("C1", KNOWN).expect_err("missing path");
        assert!(err.contains("expected '<rule-id> <path>'"), "{err}");
        let err = Allowlist::parse("C1 a.rs extra", KNOWN).expect_err("extra field");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn empty_is_empty() {
        assert!(Allowlist::empty().is_empty());
        assert_eq!(Allowlist::empty().len(), 0);
    }
}
