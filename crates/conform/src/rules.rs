//! The per-body rule passes: C1 (step atomicity), C2 (banned host APIs)
//! and C3 (context/handle escape), plus the name index and postfix-chain
//! utilities shared with the C4 await-graph pass.

use std::collections::BTreeSet;

use crate::diag::{Finding, RuleId};
use crate::model::{AlgoBody, FileModel, FnDef};
use crate::tree::{Delim, Spanned, Tok};

/// `Ctx` methods that take one atomic step.
pub const CTX_STEP_METHODS: [&str; 5] = ["invoke", "query_fd", "output", "decide", "yield_step"];

/// `Ctx` methods that are local reads (no step).
pub const CTX_LOCAL_METHODS: [&str; 4] = ["pid", "n_plus_1", "n", "now"];

/// Types whose values are shared-object handles (access capabilities that
/// must not leave the algorithm).
const HANDLE_TYPES: [&str; 9] = [
    "Register",
    "RegisterArray",
    "NativeSnapshot",
    "AfekSnapshot",
    "FlavoredSnapshot",
    "ConvergeInstance",
    "Consensus",
    "Upsilon1Elector",
    "Ctx",
];

/// Wrappers that would let a handle outlive or escape the algorithm body.
const ESCAPE_WRAPPERS: [&str; 7] = ["Box", "Rc", "Arc", "RefCell", "Cell", "Mutex", "RwLock"];

/// Macros whose arguments may mention `ctx` without mediating a step
/// (assertions and formatting only observe local state).
const LOCAL_MACROS: [&str; 16] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
    "format",
    "vec",
    "panic",
    "unreachable",
    "todo",
    "write",
    "writeln",
    "println",
    "eprintln",
];

/// Keywords that terminate a backward postfix-chain walk.
const CHAIN_STOP_KEYWORDS: [&str; 22] = [
    "match", "if", "else", "return", "let", "break", "continue", "in", "loop", "while", "for",
    "move", "async", "await", "mut", "ref", "unsafe", "dyn", "as", "impl", "fn", "where",
];

/// How a name resolves against the workspace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NameClass {
    /// A `Ctx` step method: one atomic shared operation.
    StepMethod,
    /// A `Ctx` local method: no step.
    LocalMethod,
    /// An indexed `async fn` taking the context (its own bound applies).
    AsyncCtx,
    /// An indexed `async fn` not taking the context (no steps inside).
    AsyncOther,
    /// An indexed synchronous function: no step.
    Sync,
    /// Not indexed.
    Unknown,
}

/// Name index over every scanned file.
#[derive(Clone, Default, Debug)]
pub struct FnIndex {
    async_ctx: BTreeSet<String>,
    async_other: BTreeSet<String>,
    sync_fns: BTreeSet<String>,
}

impl FnIndex {
    /// Builds the index from all file models.
    pub fn build(files: &[FileModel]) -> FnIndex {
        let mut index = FnIndex::default();
        for file in files {
            for f in &file.fns {
                if f.body.is_empty() {
                    continue; // bodiless trait declaration; an impl will index it
                }
                match (f.is_async, f.takes_ctx) {
                    (true, true) => {
                        index.async_ctx.insert(f.name.clone());
                    }
                    (true, false) => {
                        index.async_other.insert(f.name.clone());
                    }
                    (false, _) => {
                        index.sync_fns.insert(f.name.clone());
                    }
                }
            }
        }
        index
    }

    /// Classifies a call target name. Step/local `Ctx` methods win, then
    /// async definitions (the conservative choice under collisions), then
    /// synchronous ones.
    pub fn classify(&self, name: &str) -> NameClass {
        if CTX_STEP_METHODS.contains(&name) {
            NameClass::StepMethod
        } else if CTX_LOCAL_METHODS.contains(&name) {
            NameClass::LocalMethod
        } else if self.async_ctx.contains(name) {
            NameClass::AsyncCtx
        } else if self.async_other.contains(name) {
            NameClass::AsyncOther
        } else if self.sync_fns.contains(name) {
            NameClass::Sync
        } else {
            NameClass::Unknown
        }
    }
}

/// Whether `name` is a keyword as far as call detection goes.
fn is_keyword(name: &str) -> bool {
    CHAIN_STOP_KEYWORDS.contains(&name) || matches!(name, "fn" | "pub" | "use" | "struct" | "enum")
}

/// Walks forward from token `from` through postfix-chain tokens
/// (`.`/`?`/idents/argument groups/literals) looking for `.await`.
pub fn chain_has_await(toks: &[Spanned], from: usize) -> bool {
    let mut j = from + 1;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Ident(s) if s == "await" => return true,
            Tok::Ident(s) if !is_keyword(s) => j += 1,
            Tok::Punct('.') | Tok::Punct('?') | Tok::Punct(':') => j += 1,
            Tok::Group(Delim::Paren | Delim::Bracket, ..) | Tok::Literal => j += 1,
            _ => return false,
        }
    }
    false
}

/// Walks backward from `await_dot` (the `.` of a `.await`) to the start of
/// its postfix chain; returns the start index.
pub fn chain_start(toks: &[Spanned], await_dot: usize) -> usize {
    let mut j = await_dot;
    while j > 0 {
        let prev = &toks[j - 1];
        let ok = match &prev.tok {
            Tok::Ident(s) => !CHAIN_STOP_KEYWORDS.contains(&s.as_str()),
            Tok::Punct('.') | Tok::Punct('?') | Tok::Punct(':') => true,
            Tok::Group(Delim::Paren | Delim::Bracket, ..) => true,
            Tok::Literal => true,
            _ => false,
        };
        if !ok {
            break;
        }
        j -= 1;
    }
    j
}

/// The calls in a chain segment: `(name, index_of_args_group)` for every
/// `ident ( ... )` at this nesting level.
pub fn chain_calls(toks: &[Spanned], start: usize, end: usize) -> Vec<(String, usize)> {
    let mut calls = Vec::new();
    let mut k = start;
    while k + 1 < end {
        if let (Some(name), Tok::Group(Delim::Paren, ..)) = (toks[k].ident(), &toks[k + 1].tok) {
            if !is_keyword(name) {
                calls.push((name.to_string(), k + 1));
            }
            k += 2;
        } else {
            k += 1;
        }
    }
    calls
}

/// Whether a call argument list passes the context *itself* (a bare `ctx`
/// not followed by `.`), as opposed to the result of a `ctx.`-method call:
/// `read(ctx)` receives the context, `Update(ctx.pid().index(), v)` does
/// not.
fn receives_ctx(toks: &[Spanned]) -> bool {
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(s)
                if s == "ctx"
                    && !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.'))) =>
            {
                return true;
            }
            Tok::Group(_, children, _) if receives_ctx(children) => {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

fn flat_contains_any(toks: &[Spanned], names: &BTreeSet<String>) -> Option<String> {
    for t in toks {
        match &t.tok {
            Tok::Ident(s) if names.contains(s) => return Some(s.clone()),
            Tok::Group(_, children, _) => {
                if let Some(hit) = flat_contains_any(children, names) {
                    return Some(hit);
                }
            }
            _ => {}
        }
    }
    None
}

/// What kind of position a group's contents are in.
#[derive(Clone, PartialEq, Eq, Debug)]
enum GroupCtx {
    /// Arguments of a call: `name(...)` (`macro_call` for `name!(...)`).
    CallArgs {
        name: String,
        awaited: bool,
        macro_call: bool,
    },
    /// Anything else: a block, a tuple, an index, an array.
    Other,
}

struct Checker<'a> {
    index: &'a FnIndex,
    file: &'a str,
    /// Local variables (and params, and `self`) that hold shared-object
    /// handles or the context.
    handles: BTreeSet<String>,
    findings: &'a mut Vec<Finding>,
}

/// Runs C1/C2/C3 over one function body that is algorithm code.
pub fn check_fn(def: &FnDef, index: &FnIndex, findings: &mut Vec<Finding>) {
    let mut handles = BTreeSet::new();
    handles.insert("ctx".to_string());
    handles.insert("self".to_string());
    collect_param_handles(&def.params, &mut handles);
    collect_let_handles(&def.body, &mut handles);
    let mut checker = Checker {
        index,
        file: &def.file,
        handles,
        findings,
    };
    checker.walk(&def.body, &GroupCtx::Other);
}

/// Runs C1/C2/C3 over one `algo(|ctx| async move { ... })` body.
pub fn check_algo(algo: &AlgoBody, index: &FnIndex, findings: &mut Vec<Finding>) {
    let mut handles = BTreeSet::new();
    handles.insert("ctx".to_string());
    collect_let_handles(&algo.body, &mut handles);
    let mut checker = Checker {
        index,
        file: &algo.file,
        handles,
        findings,
    };
    checker.walk(&algo.body, &GroupCtx::Other);
}

/// Params of handle type: `name: ... Register<...> ...`.
fn collect_param_handles(params: &[Spanned], handles: &mut BTreeSet<String>) {
    let mut i = 0;
    while i + 1 < params.len() {
        if let (Some(name), true) = (params[i].ident(), params[i + 1].is_punct(':')) {
            // Type tokens run to the next top-level comma.
            let mut j = i + 2;
            while j < params.len() && !params[j].is_punct(',') {
                j += 1;
            }
            if params[i + 2..j]
                .iter()
                .any(|t| t.ident().is_some_and(|s| HANDLE_TYPES.contains(&s)))
            {
                handles.insert(name.to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Let-bindings whose initializer involves a handle type or a handle
/// projection (`.slot(...)`, `.mine(...)`).
fn collect_let_handles(toks: &[Spanned], handles: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < toks.len() {
        if let Tok::Group(_, children, _) = &toks[i].tok {
            collect_let_handles(children, handles);
            i += 1;
            continue;
        }
        if toks[i].ident() == Some("let") {
            let mut j = i + 1;
            if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(|t| t.ident()) {
                // Find `=` then the initializer up to `;` at this level.
                let mut eq = j + 1;
                while eq < toks.len() && !toks[eq].is_punct('=') && !toks[eq].is_punct(';') {
                    eq += 1;
                }
                if eq < toks.len() && toks[eq].is_punct('=') {
                    let mut end = eq + 1;
                    while end < toks.len() && !toks[end].is_punct(';') {
                        end += 1;
                    }
                    let rhs = &toks[eq + 1..end.min(toks.len())];
                    let names_handle_type = rhs
                        .iter()
                        .any(|t| t.ident().is_some_and(|s| HANDLE_TYPES.contains(&s)));
                    let projects_handle = rhs.windows(2).any(|w| {
                        w[0].is_punct('.') && matches!(w[1].ident(), Some("slot") | Some("mine"))
                    });
                    if names_handle_type || projects_handle {
                        handles.insert(name.to_string());
                    }
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
}

impl Checker<'_> {
    fn emit(&mut self, rule: RuleId, line: u32, message: String, suggestion: &str) {
        self.findings.push(Finding {
            rule,
            file: self.file.to_string(),
            line,
            message,
            suggestion: suggestion.to_string(),
        });
    }

    fn walk(&mut self, toks: &[Spanned], gctx: &GroupCtx) {
        let mut i = 0;
        while i < toks.len() {
            match &toks[i].tok {
                Tok::Ident(s) if s == "ctx" => self.check_ctx_use(toks, i, gctx),
                Tok::Ident(_) => self.check_banned(toks, i),
                Tok::Punct('.') if toks.get(i + 1).and_then(|t| t.ident()) == Some("await") => {
                    self.check_await_point(toks, i);
                }
                Tok::Punct('|') => {
                    if let Some(next) = self.check_closure(toks, i) {
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
            if let Tok::Group(delim, children, _) = &toks[i].tok {
                let child_ctx = if *delim == Delim::Paren {
                    self.call_context(toks, i, gctx)
                } else {
                    GroupCtx::Other
                };
                self.walk(children, &child_ctx);
            }
            i += 1;
        }
    }

    /// The [`GroupCtx`] for a paren group at index `gi`. A call is awaited
    /// if its own chain reaches `.await` *or* it sits in the argument list
    /// of an awaited call (its future is driven through the outer await).
    fn call_context(&self, toks: &[Spanned], gi: usize, parent: &GroupCtx) -> GroupCtx {
        let parent_awaited = matches!(
            parent,
            GroupCtx::CallArgs {
                awaited: true,
                macro_call: false,
                ..
            }
        );
        if gi >= 1 {
            if let Some(name) = toks[gi - 1].ident() {
                if !is_keyword(name) {
                    return GroupCtx::CallArgs {
                        name: name.to_string(),
                        awaited: chain_has_await(toks, gi) || parent_awaited,
                        macro_call: false,
                    };
                }
            }
            if toks[gi - 1].is_punct('!') && gi >= 2 {
                if let Some(name) = toks[gi - 2].ident() {
                    return GroupCtx::CallArgs {
                        name: name.to_string(),
                        awaited: false,
                        macro_call: true,
                    };
                }
            }
        }
        GroupCtx::Other
    }

    /// C1/C3 for one occurrence of the identifier `ctx`.
    fn check_ctx_use(&mut self, toks: &[Spanned], i: usize, gctx: &GroupCtx) {
        let line = toks[i].line;
        let next = toks.get(i + 1);
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        // `|ctx|` closure parameter or `ctx:` type ascription: a binding,
        // not a use.
        if next.is_some_and(|t| t.is_punct('|') || t.is_punct(':'))
            || prev.is_some_and(|t| t.is_punct('|'))
        {
            return;
        }
        if next.is_some_and(|t| t.is_punct('.')) {
            // Receiver position: `ctx.method(...)`.
            let Some(method) = toks.get(i + 2).and_then(|t| t.ident()) else {
                self.emit(
                    RuleId::C1,
                    line,
                    "unrecognized context access (not a method call)".to_string(),
                    "access the context only through its step and local methods",
                );
                return;
            };
            if CTX_STEP_METHODS.contains(&method) {
                if !chain_has_await(toks, i + 3) {
                    self.emit(
                        RuleId::C1,
                        line,
                        format!("step operation `ctx.{method}(...)` is never awaited"),
                        "await the operation where its atomic step should be taken; \
                         binding the future for later desynchronizes the schedule",
                    );
                }
            } else if !CTX_LOCAL_METHODS.contains(&method) {
                self.emit(
                    RuleId::C1,
                    line,
                    format!("unknown context method `ctx.{method}(...)`"),
                    "model operations are invoke/query_fd/output/decide/yield_step \
                     (steps) and pid/n/n_plus_1/now (local reads)",
                );
            }
            return;
        }
        // Argument position: `f(.., ctx, ..)`.
        if let GroupCtx::CallArgs {
            name,
            awaited,
            macro_call,
        } = gctx
        {
            if *macro_call {
                if !LOCAL_MACROS.contains(&name.as_str()) {
                    self.emit(
                        RuleId::C3,
                        line,
                        format!("context passed to macro `{name}!`"),
                        "only assertion/formatting macros may observe the context",
                    );
                }
                return;
            }
            match self.index.classify(name) {
                NameClass::Sync | NameClass::LocalMethod => {}
                NameClass::AsyncCtx | NameClass::AsyncOther | NameClass::StepMethod => {
                    if !awaited {
                        self.emit(
                            RuleId::C1,
                            line,
                            format!(
                                "call `{name}(.., ctx, ..)` performs model operations \
                                 but is not awaited here"
                            ),
                            "await the call so its steps are granted in order",
                        );
                    }
                }
                NameClass::Unknown => {
                    if !awaited {
                        self.emit(
                            RuleId::C1,
                            line,
                            format!(
                                "call `{name}(.., ctx, ..)` is neither a known \
                                 synchronous helper nor awaited"
                            ),
                            "await the call, or define the helper inside a scanned crate",
                        );
                    }
                }
            }
            return;
        }
        // Any other position: the context is being aliased or stored.
        self.emit(
            RuleId::C3,
            line,
            "context value escapes the algorithm (aliased, stored or returned)".to_string(),
            "use `ctx` only as a method receiver or call argument",
        );
    }

    /// C2: banned host APIs.
    fn check_banned(&mut self, toks: &[Spanned], i: usize) {
        let Some(name) = toks[i].ident() else { return };
        let line = toks[i].line;
        let next_is_path = toks.get(i + 1).is_some_and(|t| t.is_punct(':'));
        let next_is_call = matches!(
            toks.get(i + 1).map(|t| &t.tok),
            Some(Tok::Group(Delim::Paren, ..))
        );
        let (what, fix): (&str, &str) = match name {
            "thread" if next_is_path => (
                "std::thread",
                "the model is one deterministic step stream per process; \
                 express concurrency as separate algorithm processes",
            ),
            "Instant" | "SystemTime" => (
                "host clock",
                "use ctx.now() — logical time derived from granted steps",
            ),
            "thread_rng" | "random" if next_is_call || next_is_path => (
                "unseeded randomness",
                "take randomness from the seeded simulator configuration",
            ),
            "rand" if next_is_path => (
                "unseeded randomness",
                "take randomness from the seeded simulator configuration",
            ),
            "File" | "TcpStream" | "TcpListener" | "UdpSocket" if next_is_path => (
                "blocking I/O",
                "algorithms may only interact through ctx-mediated shared objects",
            ),
            "fs" | "net" if next_is_path => (
                "blocking I/O",
                "algorithms may only interact through ctx-mediated shared objects",
            ),
            "Command" if next_is_path => (
                "process spawning",
                "algorithms may only interact through ctx-mediated shared objects",
            ),
            "env" if next_is_path => (
                "process environment",
                "pass configuration through the algorithm's parameters",
            ),
            "stdin" | "stdout" | "stderr" if next_is_call => (
                "standard streams",
                "algorithms may only interact through ctx-mediated shared objects",
            ),
            "sleep" if next_is_call => (
                "host sleeping",
                "waiting is expressed as bounded retries over granted steps",
            ),
            _ => return,
        };
        self.emit(
            RuleId::C2,
            line,
            format!("banned host API (`{name}`, {what}) in algorithm body"),
            fix,
        );
    }

    /// C1: each await point must mediate exactly one shared operation.
    fn check_await_point(&mut self, toks: &[Spanned], await_dot: usize) {
        let line = toks[await_dot].line;
        let start = chain_start(toks, await_dot);
        let ops = self.count_ops(&toks[start..await_dot]);
        if ops != 1 {
            self.emit(
                RuleId::C1,
                line,
                format!("await point mediates {ops} shared operations (exactly 1 required)"),
                if ops == 0 {
                    "each .await must drive one ctx-mediated operation; awaiting a \
                     stashed future or a ctx-free helper is not a model step"
                } else {
                    "split the expression so each await performs one operation"
                },
            );
        }
    }

    /// Counts the shared operations an await point mediates: step-method
    /// and indexed-async calls at any depth of the chain slice. Sub-chains
    /// that carry their own `.await` are skipped (they are separate await
    /// points, checked where they occur); an unindexed call that takes the
    /// context counts as one operation when nothing inside it counted.
    fn count_ops(&self, toks: &[Spanned]) -> usize {
        let mut ops = 0usize;
        let mut i = 0usize;
        while i < toks.len() {
            if let (Some(name), Some(Tok::Group(Delim::Paren, children, _))) =
                (toks[i].ident(), toks.get(i + 1).map(|t| &t.tok))
            {
                if !is_keyword(name) && !chain_has_await(toks, i + 1) {
                    let nested = self.count_ops(children);
                    ops += nested;
                    match self.index.classify(name) {
                        NameClass::StepMethod | NameClass::AsyncCtx => ops += 1,
                        NameClass::Unknown if nested == 0 && receives_ctx(children) => {
                            ops += 1;
                        }
                        _ => {}
                    }
                    i += 2;
                    continue;
                }
            }
            if let Tok::Group(Delim::Paren | Delim::Bracket, children, _) = &toks[i].tok {
                ops += self.count_ops(children);
            }
            i += 1;
        }
        ops
    }

    /// C3: inner closures must not capture the context or a handle, and
    /// escape wrappers / channel sends must not carry them.
    ///
    /// Returns `Some(resume_index)` when a closure was recognized and its
    /// body consumed.
    fn check_closure(&mut self, toks: &[Spanned], bar: usize) -> Option<usize> {
        // Distinguish a closure-opening `|` from binary `|`/`||`: after an
        // expression (ident, literal, group, `?`) it is an operator.
        if bar > 0 {
            match &toks[bar - 1].tok {
                Tok::Ident(s) if !is_keyword(s) => return None,
                Tok::Literal | Tok::Group(..) => return None,
                Tok::Punct('?') | Tok::Punct('|') => return None,
                _ => {}
            }
        }
        let close = if toks.get(bar + 1).is_some_and(|t| t.is_punct('|')) {
            bar + 1
        } else {
            bar + 1 + toks[bar + 1..].iter().position(|t| t.is_punct('|'))?
        };
        // Skip an optional `-> Type` and a `move` to reach the body.
        let mut body_start = close + 1;
        while body_start < toks.len() {
            match &toks[body_start].tok {
                Tok::Group(Delim::Brace, ..) => break,
                Tok::Punct(',') => break,
                _ => body_start += 1,
            }
        }
        let (body, resume): (Vec<&Spanned>, usize) = match toks.get(body_start).map(|t| &t.tok) {
            Some(Tok::Group(Delim::Brace, children, _)) => {
                (children.iter().collect(), body_start + 1)
            }
            _ => {
                // Expression body: tokens up to the next top-level comma.
                (toks[close + 1..body_start].iter().collect(), body_start)
            }
        };
        let owned: Vec<Spanned> = body.into_iter().cloned().collect();
        if let Some(hit) = flat_contains_any(&owned, &self.handles) {
            self.emit(
                RuleId::C3,
                toks[bar].line,
                format!("`{hit}` (context or shared-object handle) captured by an inner closure"),
                "inner closures run outside the granted-step discipline; \
                 inline the shared-memory access into the algorithm body",
            );
        }
        // Still check C2/awaits inside the closure body.
        self.walk(&owned, &GroupCtx::Other);
        Some(resume)
    }
}

/// C3 wrapper/channel checks that operate on plain sibling patterns; run
/// alongside the main walk.
pub fn check_escapes(
    body: &[Spanned],
    handles: &BTreeSet<String>,
    file: &str,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < body.len() {
        if let Tok::Group(_, children, _) = &body[i].tok {
            check_escapes(children, handles, file, findings);
        }
        // `Wrapper::new(.. handle ..)`
        if let Some(w) = body[i].ident() {
            if ESCAPE_WRAPPERS.contains(&w)
                && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 3).and_then(|t| t.ident()) == Some("new")
            {
                if let Some(Tok::Group(Delim::Paren, args, _)) = body.get(i + 4).map(|t| &t.tok) {
                    if let Some(hit) = flat_contains_any(args, handles) {
                        findings.push(Finding {
                            rule: RuleId::C3,
                            file: file.to_string(),
                            line: body[i].line,
                            message: format!(
                                "context or shared-object handle `{hit}` wrapped in `{w}::new`"
                            ),
                            suggestion: "handles must stay owned by the algorithm body; \
                                         share data, not capabilities"
                                .to_string(),
                        });
                    }
                }
            }
        }
        // `.send(.. handle ..)`
        if body[i].is_punct('.') && body.get(i + 1).and_then(|t| t.ident()) == Some("send") {
            if let Some(Tok::Group(Delim::Paren, args, _)) = body.get(i + 2).map(|t| &t.tok) {
                if let Some(hit) = flat_contains_any(args, handles) {
                    findings.push(Finding {
                        rule: RuleId::C3,
                        file: file.to_string(),
                        line: body[i].line,
                        message: format!(
                            "context or shared-object handle `{hit}` sent through a channel"
                        ),
                        suggestion: "handles must stay owned by the algorithm body; \
                                     share data, not capabilities"
                            .to_string(),
                    });
                }
            }
        }
        i += 1;
    }
}

/// The handle set for a function body (exported for the escape pass).
pub fn handle_set(params: &[Spanned], body: &[Spanned]) -> BTreeSet<String> {
    let mut handles = BTreeSet::new();
    handles.insert("ctx".to_string());
    handles.insert("self".to_string());
    collect_param_handles(params, &mut handles);
    collect_let_handles(body, &mut handles);
    handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::model_file;

    fn check_src(src: &str) -> Vec<Finding> {
        let model = model_file("crates/mem/src/t.rs", src);
        assert!(model.errors.is_empty(), "{:?}", model.errors);
        let index = FnIndex::build(std::slice::from_ref(&model));
        let mut findings = Vec::new();
        for f in &model.fns {
            if f.takes_ctx && !f.body.is_empty() {
                check_fn(f, &index, &mut findings);
                let handles = handle_set(&f.params, &f.body);
                check_escapes(&f.body, &handles, &f.file, &mut findings);
            }
        }
        for a in &model.algos {
            check_algo(a, &index, &mut findings);
            let handles = handle_set(&[], &a.body);
            check_escapes(&a.body, &handles, &a.file, &mut findings);
        }
        findings
    }

    #[test]
    fn clean_single_op_awaits_pass() {
        let findings = check_src(
            "
pub async fn read(ctx: &Ctx<()>, r: &Register<u64>) -> Result<u64, Crashed> {
    let v = r.read(ctx).await?;
    debug_assert!(v <= ctx.n(), \"bound\");
    ctx.decide(v).await?;
    Ok(v)
}
pub async fn read_inner(self_reg: &Register<u64>, ctx: &Ctx<()>) -> Result<u64, Crashed> {
    ctx.invoke(1).await
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unawaited_step_and_stashed_future_trip_c1() {
        let findings = check_src(
            "
async fn bad(ctx: &Ctx<()>) -> Result<(), Crashed> {
    let fut = ctx.invoke(1);
    let x = fut.await;
    Ok(())
}
",
        );
        let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![RuleId::C1, RuleId::C1], "{findings:?}");
        assert!(
            findings[0].message.contains("never awaited"),
            "{findings:?}"
        );
        assert!(
            findings[1].message.contains("0 shared operations"),
            "{findings:?}"
        );
    }

    #[test]
    fn sync_helper_taking_ctx_is_fine() {
        let findings = check_src(
            "
fn mine(ctx: &Ctx<()>, r: &RegisterArray<u64>) -> Register<u64> { r.slot(0) }
async fn good(ctx: &Ctx<()>, r: &RegisterArray<u64>) -> Result<u64, Crashed> {
    mine(ctx, r).read(ctx).await
}
async fn read(self_r: &Register<u64>, ctx: &Ctx<()>) -> Result<u64, Crashed> {
    ctx.invoke(0).await
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn banned_apis_trip_c2() {
        let findings = check_src(
            "
async fn bad(ctx: &Ctx<()>) -> Result<(), Crashed> {
    let t = Instant::now();
    std::thread::sleep(t);
    ctx.yield_step().await
}
",
        );
        // Three findings: the clock read, `std::thread`, and the sleep call.
        assert!(
            findings.iter().all(|f| f.rule == RuleId::C2),
            "{findings:?}"
        );
        assert_eq!(findings.len(), 3, "{findings:?}");
    }

    #[test]
    fn ctx_alias_and_wrapper_trip_c3() {
        let findings = check_src(
            "
async fn bad(ctx: &Ctx<()>, r: Register<u64>) -> Result<(), Crashed> {
    let stash = ctx;
    let boxed = Box::new(r);
    ctx.yield_step().await
}
",
        );
        let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&RuleId::C3), "{findings:?}");
        assert!(
            findings.iter().any(|f| f.message.contains("Box::new")),
            "{findings:?}"
        );
    }

    #[test]
    fn closure_capturing_handle_trips_c3_but_data_closures_pass() {
        let findings = check_src(
            "
async fn bad(ctx: &Ctx<()>, r: &Register<u64>) -> Result<u64, Crashed> {
    let vals: Vec<u64> = (0..3).map(|i| i + 1).collect();
    let f = move |x: u64| r.slot(x);
    ctx.invoke(vals[0]).await
}
",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::C3);
        assert!(findings[0].message.contains('r'), "{findings:?}");
    }

    #[test]
    fn double_op_chain_trips_c1() {
        let findings = check_src(
            "
async fn read(self_r: &Register<u64>, ctx: &Ctx<()>) -> Result<u64, Crashed> {
    ctx.invoke(0).await
}
async fn bad(ctx: &Ctx<()>, a: &Register<u64>, b: &Register<u64>) -> Result<u64, Crashed> {
    let x = helper(a.read(ctx).await?, ctx.pid());
    Ok(x)
}
fn helper(v: u64, p: ProcessId) -> u64 { v }
",
        );
        assert!(findings.is_empty(), "{findings:?}");
        let findings = check_src(
            "
async fn read(self_r: &Register<u64>, ctx: &Ctx<()>) -> Result<u64, Crashed> {
    ctx.invoke(0).await
}
async fn bad(ctx: &Ctx<()>, a: &Register<u64>) -> Result<u64, Crashed> {
    let x = pair(a.read(ctx), a.read(ctx)).await;
    Ok(0)
}
",
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RuleId::C1 && f.message.contains("2 shared operations")),
            "{findings:?}"
        );
    }

    #[test]
    fn match_pattern_pipes_are_not_closures() {
        let findings = check_src(
            "
async fn good(ctx: &Ctx<()>, x: Option<u64>) -> Result<u64, Crashed> {
    let y = match x { Some(0) | None => 0, Some(v) => v };
    ctx.decide(y).await?;
    Ok(y)
}
",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
