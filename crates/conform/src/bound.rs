//! The step-bound expression algebra of rule C4.
//!
//! Bounds are symbolic arithmetic over non-negative integers and named
//! parameters (`n`, `n_plus_1`, `f`, `k`, plus environment-dependent loop
//! parameters like `R`/`K`/`W` declared in `#[conform(bound = "...")]`
//! annotations). The await-graph pass adds and multiplies these; the
//! dynamic cross-check evaluates them against measured run parameters.
//!
//! Grammar (for the annotation string):
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := factor ('*' factor)*
//! factor := INTEGER | IDENT | '(' expr ')' | 'max' '(' expr (',' expr)+ ')'
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A symbolic step-count expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A non-negative integer constant.
    Int(i64),
    /// A named parameter.
    Var(String),
    /// Sum of the operands.
    Add(Vec<Expr>),
    /// `a - b` (used only in annotations; evaluation saturates at 0).
    Sub(Box<Expr>, Box<Expr>),
    /// Product of the operands.
    Mul(Vec<Expr>),
    /// Maximum of the operands.
    Max(Vec<Expr>),
}

impl Expr {
    /// The zero expression.
    pub fn zero() -> Expr {
        Expr::Int(0)
    }

    /// The one expression.
    pub fn one() -> Expr {
        Expr::Int(1)
    }

    /// Whether this expression is literally zero (after simplification).
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Int(0))
    }

    /// `max(self, rhs)`, constant-folding where possible.
    pub fn max(self, rhs: Expr) -> Expr {
        match (self, rhs) {
            (Expr::Int(a), Expr::Int(b)) => Expr::Int(a.max(b)),
            (Expr::Int(0), e) | (e, Expr::Int(0)) => e,
            (a, b) if a == b => a,
            (Expr::Max(mut xs), e) => {
                if !xs.contains(&e) {
                    xs.push(e);
                }
                Expr::Max(xs)
            }
            (a, b) => Expr::Max(vec![a, b]),
        }
    }

    fn fold_ints(self) -> Expr {
        if let Expr::Add(xs) = self {
            let (ints, mut rest): (Vec<Expr>, Vec<Expr>) =
                xs.into_iter().partition(|e| matches!(e, Expr::Int(_)));
            let sum: i64 = ints
                .iter()
                .map(|e| match e {
                    Expr::Int(v) => *v,
                    _ => 0,
                })
                .sum();
            if sum != 0 {
                rest.push(Expr::Int(sum));
            }
            match rest.len() {
                0 => Expr::Int(0),
                1 => rest.pop().expect("len checked"),
                _ => Expr::Add(rest),
            }
        } else {
            self
        }
    }

    /// Every parameter name appearing in the expression.
    pub fn params(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Int(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Add(xs) | Expr::Mul(xs) | Expr::Max(xs) => {
                for x in xs {
                    x.collect_params(out);
                }
            }
            Expr::Sub(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
        }
    }

    /// Evaluates against concrete parameter values. Subtraction saturates
    /// at zero (step counts are never negative).
    ///
    /// # Errors
    ///
    /// Returns the name of the first unbound parameter.
    pub fn eval(&self, params: &BTreeMap<String, i64>) -> Result<i64, String> {
        match self {
            Expr::Int(v) => Ok(*v),
            Expr::Var(name) => params
                .get(name)
                .copied()
                .ok_or_else(|| format!("unbound parameter `{name}`")),
            Expr::Add(xs) => xs.iter().try_fold(0i64, |acc, x| Ok(acc + x.eval(params)?)),
            Expr::Sub(a, b) => Ok((a.eval(params)? - b.eval(params)?).max(0)),
            Expr::Mul(xs) => xs.iter().try_fold(1i64, |acc, x| Ok(acc * x.eval(params)?)),
            Expr::Max(xs) => {
                let mut best = i64::MIN;
                for x in xs {
                    best = best.max(x.eval(params)?);
                }
                Ok(best)
            }
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;

    /// `self + rhs`, constant-folding where possible.
    fn add(self, rhs: Expr) -> Expr {
        match (self, rhs) {
            (Expr::Int(0), e) | (e, Expr::Int(0)) => e,
            (Expr::Int(a), Expr::Int(b)) => Expr::Int(a + b),
            (Expr::Add(mut xs), Expr::Add(ys)) => {
                xs.extend(ys);
                Expr::Add(xs).fold_ints()
            }
            (Expr::Add(mut xs), e) => {
                xs.push(e);
                Expr::Add(xs).fold_ints()
            }
            (e, Expr::Add(mut ys)) => {
                ys.insert(0, e);
                Expr::Add(ys).fold_ints()
            }
            (a, b) => Expr::Add(vec![a, b]),
        }
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;

    /// `self * rhs`, constant-folding where possible.
    fn mul(self, rhs: Expr) -> Expr {
        match (self, rhs) {
            (Expr::Int(0), _) | (_, Expr::Int(0)) => Expr::Int(0),
            (Expr::Int(1), e) | (e, Expr::Int(1)) => e,
            (Expr::Int(a), Expr::Int(b)) => Expr::Int(a * b),
            (Expr::Mul(mut xs), e) => {
                xs.push(e);
                Expr::Mul(xs)
            }
            (a, b) => Expr::Mul(vec![a, b]),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(e: &Expr) -> u8 {
            match e {
                Expr::Int(_) | Expr::Var(_) | Expr::Max(_) => 2,
                Expr::Mul(_) => 1,
                Expr::Add(_) | Expr::Sub(..) => 0,
            }
        }
        fn write_child(f: &mut fmt::Formatter<'_>, e: &Expr, min: u8) -> fmt::Result {
            if prec(e) < min {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        }
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write_child(f, x, 1)?;
                }
                Ok(())
            }
            Expr::Sub(a, b) => {
                write_child(f, a, 1)?;
                write!(f, " - ")?;
                write_child(f, b, 2)
            }
            Expr::Mul(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write_child(f, x, 2)?;
                }
                Ok(())
            }
            Expr::Max(xs) => {
                write!(f, "max(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parses a bound expression from annotation text.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_expr(text: &str) -> Result<Expr, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!(
            "trailing input at column {} of bound expression `{text}`",
            p.pos + 1
        ));
    }
    Ok(e)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<Expr, String> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some('+') => {
                    self.pos += 1;
                    acc = acc + self.term()?;
                }
                Some('-') => {
                    self.pos += 1;
                    acc = Expr::Sub(Box::new(acc), Box::new(self.term()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut acc = self.factor()?;
        while self.peek() == Some('*') {
            self.pos += 1;
            acc = acc * self.factor()?;
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let e = self.expr()?;
                if self.peek() != Some(')') {
                    return Err("expected `)`".to_string());
                }
                self.pos += 1;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                text.parse::<i64>()
                    .map(Expr::Int)
                    .map_err(|e| format!("bad integer `{text}`: {e}"))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    self.pos += 1;
                }
                let name: String = self.chars[start..self.pos].iter().collect();
                if name == "max" && self.peek() == Some('(') {
                    // n-ary max: the awaitgraph renders folded maxima as
                    // max(a, b, c, …), so the parser must round-trip them.
                    self.pos += 1;
                    let mut acc = self.expr()?;
                    if self.peek() != Some(',') {
                        return Err("expected `,` in max(..)".to_string());
                    }
                    while self.peek() == Some(',') {
                        self.pos += 1;
                        acc = acc.max(self.expr()?);
                    }
                    if self.peek() != Some(')') {
                        return Err("expected `)` closing max(..)".to_string());
                    }
                    self.pos += 1;
                    Ok(acc)
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(c) => Err(format!("unexpected character `{c}` in bound expression")),
            None => Err("empty bound expression".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(text: &str, params: &[(&str, i64)]) -> i64 {
        let map: BTreeMap<String, i64> = params.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        parse_expr(text)
            .expect("parses")
            .eval(&map)
            .expect("evaluates")
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("2 + 3 * 4", &[]), 14);
        assert_eq!(eval("(2 + 3) * 4", &[]), 20);
        assert_eq!(
            eval("n_plus_1 * n_plus_1 + 2 * n_plus_1", &[("n_plus_1", 4)]),
            24
        );
        assert_eq!(eval("max(3, n)", &[("n", 7)]), 7);
        assert_eq!(eval("max(3, n, 12, f)", &[("n", 7), ("f", 2)]), 12);
        assert_eq!(eval("5 - 9", &[]), 0, "saturating subtraction");
    }

    #[test]
    fn unbound_parameters_are_reported() {
        let e = parse_expr("R * 3").expect("parses");
        assert_eq!(e.params().into_iter().collect::<Vec<_>>(), vec!["R"]);
        let err = e.eval(&BTreeMap::new()).unwrap_err();
        assert!(err.contains('R'), "{err}");
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("2 +").is_err());
        assert!(parse_expr("(2").is_err());
        assert!(parse_expr("2 ^ 3").is_err());
        assert!(parse_expr("max(1)").is_err());
    }

    #[test]
    fn algebra_folds_constants() {
        assert_eq!((Expr::Int(2) + Expr::Int(3)), Expr::Int(5));
        assert_eq!((Expr::Int(0) * Expr::Var("n".into())), Expr::Int(0));
        assert_eq!(
            (Expr::Int(1) * Expr::Var("n".into())),
            Expr::Var("n".into())
        );
        assert_eq!(
            Expr::Var("n".into()).max(Expr::Var("n".into())),
            Expr::Var("n".into())
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        for text in [
            "n_plus_1 + 1",
            "(n_plus_1 + 2) * n_plus_1 + 2",
            "R * (K * 12 + 9)",
            "max(n, f + 1)",
        ] {
            let e = parse_expr(text).expect("parses");
            let rendered = e.to_string();
            let again = parse_expr(&rendered).expect("re-parses");
            assert_eq!(e, again, "{text} -> {rendered}");
        }
    }
}
