//! `upsilon-conform`: a source-level conformance checker for the §3.1
//! shared-memory model.
//!
//! Every correctness claim in this repository is a claim *about the model*:
//! processes advance in atomic steps, each step performs at most one
//! shared-memory or failure-detector operation, and wait-free routines
//! (Theorems 2, 6, 10) take a bounded number of steps per invocation. The
//! simulator enforces the step discipline at runtime — it grants one step
//! per poll — but nothing stops algorithm *source* from quietly deviating:
//! stashing a step future and awaiting it later, reading the host clock,
//! leaking an object handle into a closure, or helping in an unbounded
//! loop while claiming wait-freedom.
//!
//! This crate closes that gap statically. It lexes and bracket-parses the
//! algorithm crates with a purpose-built, dependency-free front end (no
//! full Rust grammar — just enough structure to see items, bodies, postfix
//! chains and `.await` points) and enforces four rules:
//!
//! * **C1** — step atomicity: every `ctx`-mediated operation is awaited
//!   where it is issued, and every await point mediates exactly one
//!   shared operation.
//! * **C2** — no banned host APIs (threads, clocks, entropy, blocking
//!   I/O) inside algorithm bodies.
//! * **C3** — no execution context or shared-object handle smuggled out
//!   of the algorithm (aliasing, escape wrappers, channels, closures).
//! * **C4** — every routine annotated `// #[conform(wait_free)]` has a
//!   static per-invocation step bound, computed over the await graph with
//!   loop bounds taken from `// #[conform(bound = "…")]` annotations.
//!
//! Findings are reported with file, line, rule id and a suggested fix,
//! rendered either human-readably or as deterministic JSON (suitable for
//! golden-file tests). Audited exceptions live in an allowlist shared
//! with the determinism lint's format: `<rule-id> <path>` per line.
//!
//! The checker is wired into `upsilon-analysis` (`cargo run -p
//! upsilon-analysis --bin conform`) and CI; the `crates/conform/fixtures`
//! crate holds deliberately nonconforming algorithms that pin down each
//! rule as a negative golden test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allow;
pub mod awaitgraph;
pub mod bound;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod tree;

pub use allow::Allowlist;
pub use bound::{parse_expr, Expr};
pub use diag::{BoundRow, ConformReport, Finding, RuleId};
pub use model::{model_file, FileModel};
pub use rules::FnIndex;

use std::fs;
use std::io;
use std::path::Path;

/// Crate directories under `crates/` whose `src/` trees hold algorithm
/// code governed by the §3.1 contract.
///
/// `mem` is included beyond the protocol crates because the base-object
/// routines (`Register::read`, the Afek et al. snapshot, …) are the very
/// algorithm code the bounds of composite routines rest on; `sim` and
/// `analysis` are harness code and are covered by the determinism lint
/// instead.
pub const SCANNED_CRATES: &[&str] = &["agreement", "check", "converge", "extract", "fd", "mem"];

/// All known rule identifiers, for allowlist validation.
pub fn known_rule_ids() -> Vec<&'static str> {
    RuleId::ALL.iter().map(|r| r.id()).collect()
}

/// Loads and parses an allowlist file.
///
/// # Errors
///
/// Propagates I/O failures; malformed entries surface as
/// [`io::ErrorKind::InvalidData`].
pub fn load_allowlist(path: &Path) -> io::Result<Allowlist> {
    let text = fs::read_to_string(path)?;
    Allowlist::parse(&text, &known_rule_ids())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Analyzes a set of already-loaded `(repo-relative path, source)` pairs.
///
/// This is the core entry point; [`scan_workspace`] reads the files of
/// [`SCANNED_CRATES`] and delegates here, and tests feed fixture sources
/// directly.
pub fn check_sources(sources: &[(String, String)], allow: &Allowlist) -> ConformReport {
    let mut report = ConformReport::default();
    let mut models: Vec<FileModel> = Vec::new();
    let mut parse_findings: Vec<Finding> = Vec::new();
    for (rel, src) in sources {
        report.files.push(rel.clone());
        let m = model::model_file(rel, src);
        for (line, msg) in &m.errors {
            parse_findings.push(Finding {
                rule: RuleId::Parse,
                file: rel.clone(),
                line: *line,
                message: msg.clone(),
                suggestion: "fix the file (or the annotation) so it can be analyzed; \
                             an unparsable file cannot be certified"
                    .to_string(),
            });
        }
        models.push(m);
    }
    let index = FnIndex::build(&models);
    let mut findings = parse_findings;
    for m in &models {
        for f in &m.fns {
            if f.takes_ctx && !f.body.is_empty() {
                rules::check_fn(f, &index, &mut findings);
                let handles = rules::handle_set(&f.params, &f.body);
                rules::check_escapes(&f.body, &handles, &f.file, &mut findings);
            }
        }
        for a in &m.algos {
            rules::check_algo(a, &index, &mut findings);
            let handles = rules::handle_set(&[], &a.body);
            rules::check_escapes(&a.body, &handles, &a.file, &mut findings);
        }
    }
    let (bounds, c4) = awaitgraph::compute(&models, &index);
    findings.extend(c4);
    report.bounds = bounds;
    for f in findings {
        if allow.permits(f.rule.id(), &f.file) {
            report.suppressed.push(f);
        } else {
            report.findings.push(f);
        }
    }
    report.normalize();
    report
}

/// Scans every non-test `.rs` file of the [`SCANNED_CRATES`] under
/// `root/crates` and checks the §3.1 contract.
///
/// `tests/` and `benches/` trees are excluded: harness code legitimately
/// uses host constructs and is not algorithm code. (`#[cfg(test)] mod`
/// regions inside `src/` files are excluded by the model walk itself.)
///
/// # Errors
///
/// Propagates filesystem errors; a missing crate directory is an error
/// (the checker must not silently pass because it looked in the wrong
/// place).
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> io::Result<ConformReport> {
    let mut sources = Vec::new();
    for krate in SCANNED_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("scanned crate source directory missing: {}", dir.display()),
            ));
        }
        let mut files = Vec::new();
        collect_rust_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = relative_path(root, &path);
            let source = fs::read_to_string(&path)?;
            sources.push((rel, source));
        }
    }
    Ok(check_sources(&sources, allow))
}

fn collect_rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_rule_ids_cover_all_rules() {
        let ids = known_rule_ids();
        assert_eq!(ids.len(), RuleId::ALL.len());
        for r in RuleId::ALL {
            assert!(ids.contains(&r.id()));
        }
    }

    #[test]
    fn check_sources_cross_file_composition() {
        // A routine in one file calls a routine defined in another; the
        // index resolves it and the bound composes.
        let lib = "
pub async fn base(ctx: &Ctx<()>) -> Result<u64, Crashed> { ctx.invoke(0).await }
"
        .to_string();
        let user = "
// #[conform(wait_free)]
pub async fn twice(ctx: &Ctx<()>) -> Result<u64, Crashed> {
    let a = base(ctx).await?;
    let b = base(ctx).await?;
    Ok(a + b)
}
"
        .to_string();
        let report = check_sources(
            &[
                ("crates/mem/src/lib.rs".to_string(), lib),
                ("crates/agreement/src/user.rs".to_string(), user),
            ],
            &Allowlist::empty(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        let row = report.bound_for("user.rs", "twice").expect("row");
        assert_eq!(row.bound.as_deref(), Some("2"));
        assert!(row.wait_free);
    }

    #[test]
    fn parse_errors_become_parse_findings() {
        let report = check_sources(
            &[(
                "crates/mem/src/bad.rs".to_string(),
                "fn f() {\n".to_string(),
            )],
            &Allowlist::empty(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, RuleId::Parse);
    }

    #[test]
    fn allowlist_moves_findings_to_suppressed() {
        let src = "
async fn bad(ctx: &Ctx<()>) -> Result<(), Crashed> {
    let t = Instant::now();
    ctx.yield_step().await
}
"
        .to_string();
        let allow = Allowlist::parse("C2 crates/mem/src/t.rs", &known_rule_ids()).expect("valid");
        let report = check_sources(&[("crates/mem/src/t.rs".to_string(), src)], &allow);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].rule, RuleId::C2);
    }
}
