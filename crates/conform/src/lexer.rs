//! A small purpose-built Rust lexer.
//!
//! Produces a flat token stream with line numbers: identifiers, lifetimes,
//! single-character punctuation, opaque literals (string/char/number
//! contents are dropped — the rules never need them) and `#[conform(...)]`
//! annotation comments, which are surfaced as first-class tokens so the
//! rule passes can attach them to the following `fn` or loop.
//!
//! The lexer understands exactly as much Rust surface syntax as is needed
//! to never misparse the constructs that defeat line-based scanners:
//! nested block comments, string literals containing `//` or braces, raw
//! strings, byte strings, char literals vs. lifetimes.

use std::fmt;

/// A flat (pre-tree) token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RawTok {
    /// An identifier or keyword.
    Ident(String),
    /// A lifetime or loop label (without the leading `'`).
    Lifetime(String),
    /// One punctuation character (multi-char operators arrive as runs).
    Punct(char),
    /// A string/char/number literal; contents are irrelevant to the rules.
    Literal,
    /// The inner text of a `// #[conform(...)]` annotation comment.
    Conform(String),
}

impl fmt::Display for RawTok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawTok::Ident(s) => write!(f, "{s}"),
            RawTok::Lifetime(s) => write!(f, "'{s}"),
            RawTok::Punct(c) => write!(f, "{c}"),
            RawTok::Literal => write!(f, "<lit>"),
            RawTok::Conform(s) => write!(f, "#[conform({s})]"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawSpanned {
    /// The token.
    pub tok: RawTok,
    /// 1-based line on which the token starts.
    pub line: u32,
}

/// Tokenizes `source`. Never fails: unrecognized bytes are skipped (the
/// bracket-tree pass reports structural problems).
pub fn lex(source: &str) -> Vec<RawSpanned> {
    let mut out = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                let text: String = chars[start..end].iter().collect();
                if let Some(ann) = conform_annotation(&text) {
                    out.push(RawSpanned {
                        tok: RawTok::Conform(ann),
                        line,
                    });
                }
                i = end;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let tok_line = line;
                i = skip_string(&chars, i, &mut line);
                out.push(RawSpanned {
                    tok: RawTok::Literal,
                    line: tok_line,
                });
            }
            'r' | 'b' if starts_prefixed_literal(&chars, i) => {
                let tok_line = line;
                i = skip_prefixed_literal(&chars, i, &mut line);
                out.push(RawSpanned {
                    tok: RawTok::Literal,
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1).copied();
                let after = chars.get(i + 2).copied();
                let is_lifetime =
                    matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
                if is_lifetime {
                    let start = i + 1;
                    let mut end = start;
                    while end < chars.len() && (chars[end].is_alphanumeric() || chars[end] == '_') {
                        end += 1;
                    }
                    out.push(RawSpanned {
                        tok: RawTok::Lifetime(chars[start..end].iter().collect()),
                        line,
                    });
                    i = end;
                } else {
                    let tok_line = line;
                    i = skip_char_literal(&chars, i, &mut line);
                    out.push(RawSpanned {
                        tok: RawTok::Literal,
                        line: tok_line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(RawSpanned {
                    tok: RawTok::Ident(chars[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                i = skip_number(&chars, i);
                out.push(RawSpanned {
                    tok: RawTok::Literal,
                    line,
                });
            }
            c => {
                out.push(RawSpanned {
                    tok: RawTok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Extracts the inner text of a `#[conform(...)]` marker from comment text.
fn conform_annotation(comment: &str) -> Option<String> {
    const MARKER: &str = "#[conform(";
    let start = comment.find(MARKER)? + MARKER.len();
    let rest = &comment[start..];
    let mut depth = 1usize;
    let mut in_str = false;
    for (idx, c) in rest.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..idx].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn starts_prefixed_literal(chars: &[char], i: usize) -> bool {
    // r"..." | r#"..."# | b"..." | br"..." | b'...' — but NOT an identifier
    // like `result` or `balance`.
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true; // byte char literal
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    chars.get(j) == Some(&'"')
}

fn skip_prefixed_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    let mut hashes = 0usize;
    if chars[i] == 'b' {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            return skip_char_literal(chars, i, line);
        }
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    if raw {
        i += 1; // past the opening quote
        while i < chars.len() {
            if chars[i] == '\n' {
                *line += 1;
                i += 1;
            } else if chars[i] == '"' {
                let mut k = 0usize;
                while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        i
    } else {
        skip_string(chars, i, line)
    }
}

/// Skips a regular `"..."` string starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(chars[i], '"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2, // escape (covers \" \\ \n and \<newline> continuations)
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a char literal starting at the opening `'`.
fn skip_char_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(chars[i], '\'');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a numeric literal (ints, floats, hex/oct/bin, suffixes). A `.`
/// is consumed only when followed by a digit, so `0..n` lexes as
/// `<lit> . . n`.
fn skip_number(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<RawTok> {
        lex(src).into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn idents_puncts_and_literals() {
        assert_eq!(
            toks("let x = 42;"),
            vec![
                RawTok::Ident("let".into()),
                RawTok::Ident("x".into()),
                RawTok::Punct('='),
                RawTok::Literal,
                RawTok::Punct(';'),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        // A string containing `//`, braces and an escaped quote must not
        // derail the rest of the line.
        assert_eq!(
            toks(r#"f("a // \" {", x)"#),
            vec![
                RawTok::Ident("f".into()),
                RawTok::Punct('('),
                RawTok::Literal,
                RawTok::Punct(','),
                RawTok::Ident("x".into()),
                RawTok::Punct(')'),
            ]
        );
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        assert_eq!(toks(r####"r#"multi " line"# "####), vec![RawTok::Literal]);
        assert_eq!(toks(r#"b"bytes""#), vec![RawTok::Literal]);
        // `r` and `b` as identifiers still lex as identifiers.
        assert_eq!(
            toks("r.read(b)"),
            vec![
                RawTok::Ident("r".into()),
                RawTok::Punct('.'),
                RawTok::Ident("read".into()),
                RawTok::Punct('('),
                RawTok::Ident("b".into()),
                RawTok::Punct(')'),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            toks("'round: loop { break 'round; }"),
            vec![
                RawTok::Lifetime("round".into()),
                RawTok::Punct(':'),
                RawTok::Ident("loop".into()),
                RawTok::Punct('{'),
                RawTok::Ident("break".into()),
                RawTok::Lifetime("round".into()),
                RawTok::Punct(';'),
                RawTok::Punct('}'),
            ]
        );
        assert_eq!(
            toks(r"let c = 'a'; let q = '\'';"),
            vec![
                RawTok::Ident("let".into()),
                RawTok::Ident("c".into()),
                RawTok::Punct('='),
                RawTok::Literal,
                RawTok::Punct(';'),
                RawTok::Ident("let".into()),
                RawTok::Ident("q".into()),
                RawTok::Punct('='),
                RawTok::Literal,
                RawTok::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_are_dropped_and_nested() {
        assert_eq!(
            toks("a /* x /* y */ z */ b // tail\nc"),
            vec![
                RawTok::Ident("a".into()),
                RawTok::Ident("b".into()),
                RawTok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn conform_comments_become_tokens() {
        let ts = lex("// #[conform(bound = \"n_plus_1 + 1\")]\nloop {}");
        assert_eq!(
            ts[0].tok,
            RawTok::Conform("bound = \"n_plus_1 + 1\"".into())
        );
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].tok, RawTok::Ident("loop".into()));
        assert_eq!(ts[1].line, 2);
        // Doc-comment flavored annotations work too.
        let ts = lex("/// #[conform(wait_free)]\nfn f() {}");
        assert_eq!(ts[0].tok, RawTok::Conform("wait_free".into()));
    }

    #[test]
    fn line_numbers_track_strings_and_comments() {
        let ts = lex("a\n\"s1\ns2\"\nb");
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2); // the string starts on line 2
        assert_eq!(ts[2].line, 4); // and spans line 3
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        assert_eq!(
            toks("0..self.size"),
            vec![
                RawTok::Literal,
                RawTok::Punct('.'),
                RawTok::Punct('.'),
                RawTok::Ident("self".into()),
                RawTok::Punct('.'),
                RawTok::Ident("size".into()),
            ]
        );
        assert_eq!(toks("1.5_f64"), vec![RawTok::Literal]);
        assert_eq!(toks("0x1F_u64"), vec![RawTok::Literal]);
    }
}
