//! Diagnostics: rule identifiers, findings, and the machine-readable
//! report.
//!
//! The JSON emitter is hand-rolled (the analyzer is dependency-free) and
//! deterministic: findings are sorted by `(file, line, rule)`, bound rows
//! by `(file, line)`, and all maps are ordered, so the output is stable
//! across runs and suitable for golden-file tests.

use std::fmt;

/// A conformance rule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RuleId {
    /// One `ctx`-mediated shared-memory/failure-detector operation per
    /// await point, and no unawaited operation.
    C1,
    /// No host APIs that break the model (threads, clocks, entropy,
    /// blocking I/O) inside algorithm bodies.
    C2,
    /// No execution context or shared-object handle smuggled out of the
    /// algorithm (aliasing, escape wrappers, inner closures).
    C3,
    /// Every routine claiming `wait_free` has a static per-invocation step
    /// bound (annotated loop bounds, acyclic await graph).
    C4,
    /// The file could not be analyzed (unbalanced delimiters, malformed
    /// annotation).
    Parse,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 5] = [
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::C4,
        RuleId::Parse,
    ];

    /// The stable identifier used in reports and allowlists.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::C1 => "C1",
            RuleId::C2 => "C2",
            RuleId::C3 => "C3",
            RuleId::C4 => "C4",
            RuleId::Parse => "parse",
        }
    }

    /// Why the rule exists, phrased against the §3.1 model.
    pub fn why(self) -> &'static str {
        match self {
            RuleId::C1 => {
                "the simulator grants one atomic step per poll; an await point that \
                 mediates zero or multiple shared operations desynchronizes the \
                 schedule the proofs quantify over"
            }
            RuleId::C2 => {
                "algorithm steps must be deterministic functions of process state \
                 and granted responses; host time, threads, entropy and I/O \
                 introduce behavior outside the model"
            }
            RuleId::C3 => {
                "shared objects are only accessible through granted steps; a \
                 leaked context or handle could be driven outside the schedule"
            }
            RuleId::C4 => {
                "wait-freedom claims (Theorems 2, 6, 10) require a bound on the \
                 steps any invocation takes regardless of other processes"
            }
            RuleId::Parse => "an unparsable file cannot be certified",
        }
    }

    /// Parses a stable identifier back into a rule.
    pub fn from_id(id: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Repository-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (fix: {})",
            self.file,
            self.line,
            self.rule.id(),
            self.message,
            self.suggestion
        )
    }
}

/// A static step bound (or the reason none exists) for one routine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoundRow {
    /// Routine name (`<algo>` for anonymous algorithm closures).
    pub name: String,
    /// Repository-relative file path.
    pub file: String,
    /// Line of the routine.
    pub line: u32,
    /// Whether the routine claims `wait_free`.
    pub wait_free: bool,
    /// The bound expression, rendered, if one was computed.
    pub bound: Option<String>,
    /// Free parameters of the bound, sorted.
    pub params: Vec<String>,
    /// Why no bound exists, when `bound` is `None`.
    pub unbounded: Option<String>,
}

/// The complete analyzer output.
#[derive(Clone, Default, Debug)]
pub struct ConformReport {
    /// Violations not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Violations suppressed by the allowlist.
    pub suppressed: Vec<Finding>,
    /// Static step bounds for every algorithm routine.
    pub bounds: Vec<BoundRow>,
    /// Files scanned, sorted.
    pub files: Vec<String>,
}

impl ConformReport {
    /// Sorts all sections into report order.
    pub fn normalize(&mut self) {
        let key = |f: &Finding| (f.file.clone(), f.line, f.rule, f.message.clone());
        self.findings.sort_by_key(key);
        self.suppressed.sort_by_key(key);
        self.bounds
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.files.sort();
    }

    /// Looks up the bound row for a routine by file suffix and name.
    pub fn bound_for(&self, file_suffix: &str, name: &str) -> Option<&BoundRow> {
        self.bounds
            .iter()
            .find(|b| b.name == name && b.file.ends_with(file_suffix))
    }

    /// Renders the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        push_findings(&mut out, &self.findings);
        out.push_str("],\n  \"suppressed\": [");
        push_findings(&mut out, &self.suppressed);
        out.push_str("],\n  \"bounds\": [");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"name\": {}, \"file\": {}, \"line\": {}, \"wait_free\": {}",
                json_string(&b.name),
                json_string(&b.file),
                b.line,
                b.wait_free
            ));
            match &b.bound {
                Some(e) => out.push_str(&format!(", \"bound\": {}", json_string(e))),
                None => out.push_str(", \"bound\": null"),
            }
            out.push_str(", \"params\": [");
            for (j, p) in b.params.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(p));
            }
            out.push(']');
            if let Some(u) = &b.unbounded {
                out.push_str(&format!(", \"unbounded\": {}", json_string(u)));
            }
            out.push('}');
        }
        if !self.bounds.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"files_scanned\": ");
        out.push_str(&self.files.len().to_string());
        out.push_str("\n}\n");
        out
    }
}

fn push_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"suggestion\": {}",
            json_string(f.rule.id()),
            json_string(&f.file),
            f.line,
            json_string(&f.message),
            json_string(&f.suggestion)
        ));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

/// Escapes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::from_id(r.id()), Some(r));
        }
        assert_eq!(RuleId::from_id("C9"), None);
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut report = ConformReport {
            findings: vec![Finding {
                rule: RuleId::C2,
                file: "b.rs".into(),
                line: 3,
                message: "uses \"Instant::now\"".into(),
                suggestion: "use ctx.now()".into(),
            }],
            bounds: vec![BoundRow {
                name: "propose".into(),
                file: "a.rs".into(),
                line: 10,
                wait_free: true,
                bound: Some("3 * R".into()),
                params: vec!["R".into()],
                unbounded: None,
            }],
            ..ConformReport::default()
        };
        report.normalize();
        let json = report.to_json();
        assert!(json.contains("\\\"Instant::now\\\""), "{json}");
        assert!(json.contains("\"bound\": \"3 * R\""), "{json}");
        assert_eq!(json, {
            let mut r2 = report.clone();
            r2.normalize();
            r2.to_json()
        });
    }

    #[test]
    fn findings_sort_by_file_then_line() {
        let f = |file: &str, line| Finding {
            rule: RuleId::C1,
            file: file.into(),
            line,
            message: String::new(),
            suggestion: String::new(),
        };
        let mut report = ConformReport {
            findings: vec![f("b.rs", 1), f("a.rs", 9), f("a.rs", 2)],
            ..ConformReport::default()
        };
        report.normalize();
        let order: Vec<(String, u32)> = report
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
