//! Dynamic cross-check of the C4 static step bounds.
//!
//! The checker's wait-freedom certificates (`// #[conform(wait_free)]` plus
//! the await-graph bound) are *parametric*: R rounds, K sub-rounds, W wait
//! iterations and B heartbeat iterations are per-run quantities. These
//! tests close the loop for every paper-claimed wait-free routine (Fig. 1,
//! Fig. 2, k-converge, the Fig. 3 extraction client): run the routine in
//! the simulator, bind the parameters from *observable* run data (round-
//! keyed shared objects in the memory inventory, per-process query-step
//! counts), evaluate the static bound reported by `scan_workspace`, and
//! assert every process's recorded step count stays within it.
//!
//! The binding is deliberately conservative but never vacuous: B, K and R
//! track iteration *counts*, so the assertion checks that the static
//! per-iteration step cost really dominates the dynamic one.

use std::collections::BTreeMap;
use std::path::PathBuf;
use upsilon_agreement::fig1::{algorithms as fig1_algorithms, Fig1Config};
use upsilon_agreement::fig2::{algorithms as fig2_algorithms, Fig2Config};
use upsilon_conform::{parse_expr, scan_workspace, Allowlist, ConformReport};
use upsilon_converge::ConvergeInstance;
use upsilon_extract::{extraction_algorithm, phi_omega};
use upsilon_fd::{LeaderChoice, OmegaOracle, UpsilonChoice, UpsilonOracle};
use upsilon_mem::SnapshotFlavor;
use upsilon_sim::{
    algo, DummyOracle, FailurePattern, FdValue, Key, Memory, ProcessId, ProcessSet, Run,
    SeededRandom, SimBuilder, SimOutcome, StepKind, Time,
};

fn repo_report() -> ConformReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    scan_workspace(&root, &Allowlist::empty()).expect("workspace scan succeeds")
}

/// Evaluates the reported static bound of `(file, name)` under `params`.
fn eval_bound(report: &ConformReport, file: &str, name: &str, params: &[(&str, i64)]) -> i64 {
    let row = report
        .bound_for(file, name)
        .unwrap_or_else(|| panic!("no bound row for {file}::{name}"));
    assert!(
        row.wait_free,
        "{file}::{name} must carry the wait_free claim"
    );
    let text = row
        .bound
        .as_deref()
        .unwrap_or_else(|| panic!("{file}::{name} has no static bound: {row:?}"));
    let expr = parse_expr(text).unwrap_or_else(|e| panic!("bound `{text}` parses: {e}"));
    let env: BTreeMap<String, i64> = params.iter().map(|(k, v)| ((*k).to_string(), *v)).collect();
    expr.eval(&env)
        .unwrap_or_else(|e| panic!("eval `{text}`: {e}"))
}

/// The largest value of index `idx` among keys named `name` in memory —
/// the round/sub-round high-water mark of round-keyed shared objects.
fn max_key_index(memory: &Memory, name: &str, idx: usize) -> i64 {
    memory
        .inventory()
        .filter(|(_, key, _)| key.name() == name)
        .filter_map(|(_, key, _)| key.indices().get(idx).copied())
        .max()
        .unwrap_or(0) as i64
}

/// Query steps taken by `p` — in the extraction loops, exactly one per
/// iteration, so this observable bounds the iteration count.
fn queries_of<D: FdValue>(run: &Run<D>, p: ProcessId) -> i64 {
    run.events_of(p)
        .filter(|e| matches!(e.kind, StepKind::Query(_)))
        .count() as i64
}

fn assert_within(run_label: &str, steps_by: &[u64], bound: i64) {
    for (p, steps) in steps_by.iter().enumerate() {
        assert!(
            (*steps as i64) <= bound,
            "{run_label}: process {p} took {steps} steps, static bound evaluates to {bound}"
        );
    }
}

fn fig1_patterns() -> Vec<(FailurePattern, Time)> {
    vec![
        (FailurePattern::failure_free(3), Time(50)),
        (
            FailurePattern::builder(3)
                .crash(ProcessId(0), Time(40))
                .build(),
            Time(120),
        ),
    ]
}

#[test]
fn fig1_static_bound_dominates_recorded_runs() {
    let report = repo_report();
    let props = [Some(1), Some(2), Some(3)];
    for (pattern, stab) in fig1_patterns() {
        for seed in 0..3u64 {
            let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), stab, seed);
            let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(400_000);
            for (pid, a) in fig1_algorithms(Fig1Config::default(), &props) {
                builder = builder.spawn(pid, a);
            }
            let outcome = builder.run();
            assert!(
                outcome.run.decisions().iter().flatten().count() >= 1,
                "the run must exercise the protocol"
            );
            // R: every entered round immediately invokes its round-opening
            // n-converge, materializing the `n-conv` object. K: gladiator
            // sub-round k creates `u-conv[r][k]` before any exit check; the
            // +1 covers a final citizen iteration that creates nothing.
            let r = max_key_index(&outcome.memory, "n-conv", 0).max(1);
            let k = max_key_index(&outcome.memory, "u-conv", 1) + 1;
            let bound = eval_bound(
                &report,
                "fig1.rs",
                "propose",
                &[("R", r), ("K", k), ("n_plus_1", 3)],
            );
            // +1: the algorithm wrapper's final decide step.
            assert_within(
                &format!("fig1 {pattern} seed {seed} (R={r}, K={k})"),
                outcome.run.steps_by(),
                bound + 1,
            );
        }
    }
}

#[test]
fn fig2_static_bound_dominates_recorded_runs() {
    let report = repo_report();
    let props = [Some(4), Some(5), Some(6)];
    // f = n: the snapshot-wait quorum is n+1−f = 1, satisfied by the
    // gladiator's own update, so the W loop takes exactly one iteration
    // and W = 1 is an exact observable binding.
    let cfg = Fig2Config::new(2);
    for (pattern, stab) in fig1_patterns() {
        for seed in 0..3u64 {
            let oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), stab, seed);
            let mut builder = SimBuilder::<ProcessSet>::new(pattern.clone())
                .oracle(oracle)
                .adversary(SeededRandom::new(seed))
                .max_steps(400_000);
            for (pid, a) in fig2_algorithms(cfg, &props) {
                builder = builder.spawn(pid, a);
            }
            let outcome = builder.run();
            assert!(
                outcome.run.decisions().iter().flatten().count() >= 1,
                "the run must exercise the protocol"
            );
            let r = max_key_index(&outcome.memory, "f-conv", 0).max(1);
            // A sub-round may leave through the wait-loop escapes before
            // creating `u-conv[r][k]`; at most one such iteration per round,
            // hence the +1.
            let k = max_key_index(&outcome.memory, "u-conv", 1) + 1;
            let bound = eval_bound(
                &report,
                "fig2.rs",
                "propose",
                &[("R", r), ("K", k), ("W", 1), ("n_plus_1", 3)],
            );
            assert_within(
                &format!("fig2 {pattern} seed {seed} (R={r}, K={k})"),
                outcome.run.steps_by(),
                bound + 1,
            );
        }
    }
}

#[test]
fn k_converge_static_bound_dominates_recorded_runs() {
    let report = repo_report();
    let n_plus_1 = 3usize;
    for flavor in [SnapshotFlavor::Native, SnapshotFlavor::RegisterBased] {
        for seed in 0..3u64 {
            let pattern = FailurePattern::failure_free(n_plus_1);
            let mut builder = SimBuilder::<()>::new(pattern)
                .oracle(DummyOracle::new(()))
                .adversary(SeededRandom::new(seed))
                .max_steps(100_000);
            for i in 0..n_plus_1 {
                let pid = ProcessId(i);
                builder = builder.spawn(
                    pid,
                    algo(move |ctx| async move {
                        let inst = ConvergeInstance::new(Key::new("kc"), n_plus_1, flavor);
                        let (picked, _committed) =
                            inst.converge(&ctx, 2, pid.index() as u64).await?;
                        ctx.decide(picked).await?;
                        Ok(())
                    }),
                );
            }
            let outcome: SimOutcome<()> = builder.run();
            // k-converge is straight-line: the bound is parametric in
            // n_plus_1 only (it already maximizes over snapshot flavors).
            let bound = eval_bound(
                &report,
                "converge/src/lib.rs",
                "converge",
                &[("n_plus_1", n_plus_1 as i64)],
            );
            assert_within(
                &format!("k-converge {flavor:?} seed {seed}"),
                outcome.run.steps_by(),
                bound + 1,
            );
        }
    }
}

#[test]
fn fig3_extraction_client_bound_dominates_recorded_runs() {
    let report = repo_report();
    let n_plus_1 = 3usize;
    for seed in 0..2u64 {
        let pattern = FailurePattern::failure_free(n_plus_1);
        let oracle = OmegaOracle::new(&pattern, LeaderChoice::MinCorrect, Time(100), seed);
        let phi = phi_omega(n_plus_1);
        let outcome = SimBuilder::new(pattern)
            .oracle(oracle)
            .adversary(SeededRandom::new(seed))
            .max_steps(9_000)
            .spawn_all(move |_| extraction_algorithm(phi.clone()))
            .run();
        // R: each round touches its `Unstable[round]` register inside the
        // heartbeat loop; +1 covers a budget-truncated tail round that has
        // not reached its first loop iteration yet.
        let r = max_key_index(&outcome.memory, "Unstable", 0) + 1;
        for i in 0..n_plus_1 {
            let pid = ProcessId(i);
            let steps = outcome.run.steps_by()[i] as i64;
            // Every heartbeat iteration (and every round prelude) performs
            // exactly one failure-detector query, so the query count of the
            // process bounds B, the per-round iteration count.
            let b = queries_of(&outcome.run, pid).max(1);
            let bound = eval_bound(
                &report,
                "fig3.rs",
                "extraction_loop",
                &[("R", r), ("B", b), ("n_plus_1", n_plus_1 as i64)],
            );
            assert!(
                steps <= bound,
                "fig3 seed {seed} p{i}: {steps} steps > bound {bound} (R={r}, B={b})"
            );
        }
    }
}
