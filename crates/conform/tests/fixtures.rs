//! Negative golden tests: every fixture in `crates/conform/fixtures` must
//! trip its intended rule — and *only* that rule. A checker that stays
//! silent on these files proves nothing about the clean workspace scan.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use upsilon_conform::{check_sources, Allowlist, ConformReport, RuleId};

/// Loads one fixture file under the repo-relative path the scanner would
/// report for it, and checks it in isolation.
fn check_fixture(file: &str) -> ConformReport {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/src")
        .join(file);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let rel = format!("crates/conform/fixtures/src/{file}");
    check_sources(&[(rel, src)], &Allowlist::empty())
}

/// Asserts the report contains at least `min` findings, all of rule
/// `expected` and none of any other rule.
fn assert_trips_only(report: &ConformReport, expected: RuleId, min: usize) {
    assert!(
        report.findings.len() >= min,
        "expected at least {min} {expected} findings, got {:?}",
        report.findings
    );
    let rules: BTreeSet<&str> = report.findings.iter().map(|f| f.rule.id()).collect();
    assert_eq!(
        rules,
        BTreeSet::from([expected.id()]),
        "fixture must trip only {expected}: {:?}",
        report.findings
    );
    assert!(report.suppressed.is_empty(), "nothing may be allowlisted");
}

#[test]
fn c1_fixture_trips_only_c1() {
    let report = check_fixture("c1_double_op.rs");
    // stashed_step: one un-awaited issue site + one op-free await point;
    // double_op: two reads funnelled through one await.
    assert_trips_only(&report, RuleId::C1, 3);
}

#[test]
fn c2_fixture_trips_only_c2() {
    let report = check_fixture("c2_banned_api.rs");
    // Instant::now, std::thread and sleep in one algorithm body.
    assert_trips_only(&report, RuleId::C2, 3);
    let excerpts: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        excerpts.iter().any(|m| m.contains("Instant")),
        "wall clock must be named: {excerpts:?}"
    );
}

#[test]
fn c3_fixture_trips_only_c3() {
    let report = check_fixture("c3_leaked_handle.rs");
    // Boxed register escape, closure capture, ctx alias.
    assert_trips_only(&report, RuleId::C3, 3);
}

#[test]
fn c4_fixture_trips_only_c4() {
    let report = check_fixture("c4_unbounded_helping.rs");
    assert_trips_only(&report, RuleId::C4, 1);
    // The unbounded routine must still get a (boundless) report row.
    let row = report
        .bound_for("c4_unbounded_helping.rs", "helping_wait")
        .expect("bound row for the claimed routine");
    assert!(row.wait_free, "the fixture claims wait-freedom");
    assert!(row.bound.is_none(), "no bound may be derived: {row:?}");
}

#[test]
fn fixtures_are_disjoint_per_rule() {
    // The whole fixture set, checked together, yields exactly the union of
    // the per-file rule sets — no cross-file interference.
    let files = [
        "c1_double_op.rs",
        "c2_banned_api.rs",
        "c3_leaked_handle.rs",
        "c4_unbounded_helping.rs",
    ];
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|f| {
            let src = fs::read_to_string(manifest.join("fixtures/src").join(f)).expect("fixture");
            (format!("crates/conform/fixtures/src/{f}"), src)
        })
        .collect();
    let report = check_sources(&sources, &Allowlist::empty());
    for (file, rule) in files
        .iter()
        .zip([RuleId::C1, RuleId::C2, RuleId::C3, RuleId::C4])
    {
        let per_file: BTreeSet<&str> = report
            .findings
            .iter()
            .filter(|f| f.file.ends_with(file))
            .map(|f| f.rule.id())
            .collect();
        assert_eq!(
            per_file,
            BTreeSet::from([rule.id()]),
            "{file} must trip only {rule}"
        );
    }
}

#[test]
fn stepkind_rule_ids_round_trip() {
    // The simulator's dynamic StepKind→rule-id mapping and the checker's
    // rule vocabulary must stay in sync: every id the mapping can emit
    // parses back to a RuleId.
    use upsilon_sim::{Output, StepKind};
    let kinds: Vec<StepKind<()>> = vec![
        StepKind::Query(()),
        StepKind::Output(Output::Decide(0)),
        StepKind::NoOp,
    ];
    for k in &kinds {
        let id = k.conform_rule();
        let rule = RuleId::from_id(id)
            .unwrap_or_else(|| panic!("StepKind {k:?} maps to unknown rule id {id:?}"));
        assert_eq!(rule.id(), id);
    }
}
