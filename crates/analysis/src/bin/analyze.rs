//! Unified analysis driver: one entry point for every static and dynamic
//! pass the repository ships.
//!
//! ```text
//! cargo run -p upsilon-analysis --bin analyze -- lint [--json]
//! cargo run -p upsilon-analysis --bin analyze -- conform [--json]
//! cargo run -p upsilon-analysis --bin analyze -- commute [--json]
//! cargo run -p upsilon-analysis --bin analyze -- symmetry [--json]
//! cargo run -p upsilon-analysis --bin analyze -- run-conditions [--json] \
//!     [--seeds <count>] [--procs <n+1>]
//! cargo run -p upsilon-analysis --bin analyze -- scenario [--json]
//! ```
//!
//! `lint`, `conform`, `commute` and `symmetry` are the static passes
//! (determinism lint over the simulator crates, §3.1 conformance over the
//! algorithm crates, DPOR-soundness audit of the shared objects' `access()`
//! classifications, and pid-parametricity audit plus orbit derivation over
//! the protocol crates); all also exist as standalone bins. `run-conditions` is the dynamic pass: it
//! drives a built-in leader workload over a seed sweep and validates every
//! recorded run against the §3.3 run conditions with
//! [`upsilon_analysis::check_run_for`]. `scenario` is the declarative-layer
//! pass: it parses every `scenarios/*.toml` with the dependency-free schema
//! crate (analysis sits below the runner), reports axis cardinalities and
//! cell counts, and fails on orphans — parse failures or files whose `name`
//! does not match the stem — and on missing required check samples.

use std::path::PathBuf;
use std::process::ExitCode;
use upsilon_analysis::{check_run_for, RunStats};
use upsilon_mem::{RegOp, RegResp, RegisterObject};
use upsilon_sim::{
    algo, run_batch, DummyOracle, FailurePattern, Key, ProcessId, SeededRandom, SimBuilder, Time,
};

fn usage() -> ! {
    eprintln!(
        "usage: analyze <lint|conform|commute|symmetry|run-conditions|scenario> [options]\n\
         \n\
         common options:\n\
         \x20 --root <dir>        workspace root (default .)\n\
         \x20 --json              machine-readable output\n\
         \n\
         lint / conform / commute / symmetry options:\n\
         \x20 --allowlist <file>  audited-exception file (default under crates/analysis/)\n\
         \n\
         run-conditions options:\n\
         \x20 --seeds <count>     schedules per pattern (default 16)\n\
         \x20 --procs <n+1>       processes, half of them also run a crashy pattern (default 3)\n\
         \n\
         scenario: validates <root>/scenarios/*.toml against the schema"
    );
    std::process::exit(2);
}

#[derive(Default)]
struct Opts {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: bool,
    seeds: u64,
    procs: usize,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage());

    let mut opts = Opts {
        root: PathBuf::from("."),
        seeds: 16,
        procs: 3,
        ..Opts::default()
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--allowlist" => {
                opts.allowlist = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--json" => opts.json = true,
            "--seeds" => {
                opts.seeds = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--procs" => {
                opts.procs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    match mode.as_str() {
        "lint" => lint(&opts),
        "conform" => conform(&opts),
        "commute" => commute(&opts),
        "symmetry" => symmetry(&opts),
        "run-conditions" => run_conditions(&opts),
        "scenario" => scenario(&opts),
        "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown mode: {other}");
            usage();
        }
    }
}

fn lint(opts: &Opts) -> ExitCode {
    use upsilon_analysis::lint;
    let path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("crates/analysis/lint-allowlist.txt"));
    let allow = match load_or_empty(&path, lint::Allowlist::load) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let report = match lint::scan_workspace(&opts.root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.violations {
            println!("{finding}");
        }
        println!(
            "lint: {} files scanned, {} violations, {} allowlisted",
            report.files_scanned,
            report.violations.len(),
            report.suppressed.len()
        );
    }
    pass_fail(report.is_clean())
}

fn conform(opts: &Opts) -> ExitCode {
    let path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("crates/analysis/conform-allowlist.txt"));
    let allow = match load_or_empty(&path, upsilon_conform::load_allowlist) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let report = match upsilon_conform::scan_workspace(&opts.root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze conform: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "conform: {} files scanned, {} findings, {} allowlisted, {} routines bounded",
            report.files.len(),
            report.findings.len(),
            report.suppressed.len(),
            report.bounds.iter().filter(|b| b.bound.is_some()).count()
        );
    }
    pass_fail(report.findings.is_empty())
}

fn commute(opts: &Opts) -> ExitCode {
    let path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("crates/analysis/commute-allowlist.txt"));
    let allow = match load_or_empty(&path, upsilon_commute::load_allowlist) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let report = match upsilon_commute::scan_workspace(&opts.root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze commute: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "commute: {} files scanned, {} impls analyzed, {} findings, {} allowlisted",
            report.files.len(),
            report.impls.len(),
            report.findings.len(),
            report.suppressed.len()
        );
    }
    pass_fail(report.is_clean())
}

fn symmetry(opts: &Opts) -> ExitCode {
    let path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("crates/analysis/symmetry-allowlist.txt"));
    let allow = match load_or_empty(&path, upsilon_symmetry::load_allowlist) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let report = match upsilon_symmetry::scan_workspace(&opts.root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze symmetry: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        for orbit in &report.orbits {
            println!("orbit: {} -> {}", orbit.sample, orbit.orbit.label());
        }
        println!(
            "symmetry: {} files scanned, {} routines ({} symmetric), {} orbits, \
             {} findings, {} allowlisted",
            report.files.len(),
            report.routines.len(),
            report.routines.iter().filter(|v| v.symmetric).count(),
            report.orbits.len(),
            report.findings.len(),
            report.suppressed.len()
        );
    }
    pass_fail(report.is_clean())
}

/// The declarative-layer pass: schema-validate every checked-in scenario
/// file and report each matrix's cardinalities. Orphans — files that fail
/// to parse or whose `name` disagrees with the stem — and missing required
/// check samples fail the pass. Only the dependency-free schema crate is
/// used: analysis sits below the check/fuzz layer, so it validates the
/// documents without being able to run them.
fn scenario(opts: &Opts) -> ExitCode {
    use upsilon_conform::diag::json_string;
    use upsilon_scenario_schema::{Kind, ScenarioDoc, REQUIRED_SAMPLES};

    let dir = opts.root.join("scenarios");
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect(),
        Err(e) => {
            eprintln!("analyze scenario: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    paths.sort();

    let mut docs: Vec<(PathBuf, ScenarioDoc)> = Vec::new();
    let mut orphans: Vec<(PathBuf, String)> = Vec::new();
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                orphans.push((path, e.to_string()));
                continue;
            }
        };
        match ScenarioDoc::parse(&text) {
            Ok(doc) => {
                let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                if doc.name == stem {
                    docs.push((path, doc));
                } else {
                    let msg = format!("name {:?} does not match the file stem {stem:?}", doc.name);
                    orphans.push((path, msg));
                }
            }
            Err(d) => orphans.push((path, d.to_string())),
        }
    }
    let missing: Vec<&str> = REQUIRED_SAMPLES
        .iter()
        .copied()
        .filter(|r| {
            !docs
                .iter()
                .any(|(_, d)| d.name == *r && d.kind == Kind::Check)
        })
        .collect();
    let clean = orphans.is_empty() && missing.is_empty();

    if opts.json {
        let mut out = String::from("{\n  \"scenarios\": [");
        for (i, (path, doc)) in docs.iter().enumerate() {
            let s = doc.summary();
            let axes: Vec<String> = s
                .axes
                .iter()
                .map(|(name, card)| format!("{}: {card}", json_string(name)))
                .collect();
            out.push_str(&format!(
                "{}\n    {{\"name\": {}, \"path\": {}, \"kind\": {}, \"protocol\": {}, \
                 \"arms\": {}, \"axes\": {{{}}}, \"cells\": {}, \"seeds\": {}, \
                 \"repeats\": {}, \"total_runs\": {}}}",
                if i > 0 { "," } else { "" },
                json_string(&doc.name),
                json_string(&path.display().to_string()),
                json_string(doc.kind.as_str()),
                json_string(&doc.protocol),
                s.arms,
                axes.join(", "),
                s.cells,
                s.seeds,
                s.repeats,
                s.total_runs,
            ));
        }
        if !docs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"orphans\": [");
        for (i, (path, err)) in orphans.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"path\": {}, \"error\": {}}}",
                if i > 0 { "," } else { "" },
                json_string(&path.display().to_string()),
                json_string(err),
            ));
        }
        if !orphans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"missing_required\": [");
        let quoted: Vec<String> = missing.iter().map(|m| json_string(m)).collect();
        out.push_str(&quoted.join(", "));
        out.push_str(&format!("],\n  \"ok\": {clean}\n}}\n"));
        print!("{out}");
    } else {
        for (path, doc) in &docs {
            let s = doc.summary();
            let axes: Vec<String> = s
                .axes
                .iter()
                .map(|(name, card)| format!("{name}={card}"))
                .collect();
            println!(
                "scenario: {} ({}, {}) — {} arm(s), axes [{}], {} cells x {} seeds x {} \
                 repeats = {} runs — {}",
                doc.name,
                doc.kind.as_str(),
                doc.protocol,
                s.arms,
                axes.join(", "),
                s.cells,
                s.seeds,
                s.repeats,
                s.total_runs,
                path.display()
            );
        }
        for (path, err) in &orphans {
            println!("scenario: ORPHAN {}: {err}", path.display());
        }
        for m in &missing {
            println!("scenario: MISSING required check sample {m}");
        }
        println!(
            "scenario: {} valid, {} orphaned, {} required missing",
            docs.len(),
            orphans.len(),
            missing.len()
        );
    }
    pass_fail(clean)
}

/// Loads an allowlist file, treating a missing file as empty and a
/// malformed one as a usage error.
fn load_or_empty<A: Default>(
    path: &std::path::Path,
    load: impl Fn(&std::path::Path) -> std::io::Result<A>,
) -> Result<A, ExitCode> {
    if !path.exists() {
        return Ok(A::default());
    }
    load(path).map_err(|e| {
        eprintln!("analyze: bad allowlist {}: {e}", path.display());
        ExitCode::from(2)
    })
}

/// One seeded workload execution, producing (seed, crashy?, validated stats).
type RunJob = Box<dyn FnOnce() -> (u64, bool, Result<RunStats, String>) + Send>;

/// The dynamic pass: drive the built-in leader workload over failure-free
/// and crashy patterns for a seed sweep and validate every run against the
/// §3.3 run conditions.
fn run_conditions(opts: &Opts) -> ExitCode {
    let n_plus_1 = opts.procs.max(2);
    let mut jobs: Vec<RunJob> = Vec::new();
    for seed in 0..opts.seeds {
        jobs.push(Box::new(move || {
            let pattern = FailurePattern::failure_free(n_plus_1);
            let outcome = leader_workload(pattern, seed);
            (
                seed,
                false,
                check_run_for(&outcome.run).map_err(|v| v.to_string()),
            )
        }));
        jobs.push(Box::new(move || {
            // Crash the highest-numbered process partway through.
            let pattern = FailurePattern::builder(n_plus_1)
                .crash(ProcessId(n_plus_1 - 1), Time(4))
                .build();
            let outcome = leader_workload(pattern, seed);
            (
                seed,
                true,
                check_run_for(&outcome.run).map_err(|v| v.to_string()),
            )
        }));
    }
    let results = run_batch(jobs, 4);

    let mut failures: Vec<(u64, bool, String)> = Vec::new();
    let mut decisions = 0u64;
    for (seed, crashy, res) in results {
        match res {
            Ok(stats) => decisions += stats.decisions as u64,
            Err(v) => failures.push((seed, crashy, v)),
        }
    }
    failures.sort();

    if opts.json {
        use upsilon_conform::diag::json_string;
        let mut out = String::from("{\n  \"violations\": [");
        for (i, (seed, crashy, v)) in failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seed\": {seed}, \"crashy\": {crashy}, \"violation\": {}}}",
                json_string(v)
            ));
        }
        if !failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"runs_checked\": {},\n  \"decisions\": {decisions}\n}}\n",
            opts.seeds * 2
        ));
        print!("{out}");
    } else {
        for (seed, crashy, v) in &failures {
            println!(
                "run-conditions: seed {seed} ({}): {v}",
                if *crashy { "crashy" } else { "failure-free" }
            );
        }
        println!(
            "run-conditions: {} runs checked ({} seeds x 2 patterns, n+1={n_plus_1}), \
             {} violations, {decisions} decisions observed",
            opts.seeds * 2,
            opts.seeds,
            failures.len()
        );
    }
    pass_fail(failures.is_empty())
}

/// The same consensus-like workload the validator's mutation tests drive:
/// every process writes its proposal, queries the detector, then spins
/// reading the designated leader's register until it can decide.
fn leader_workload(pattern: FailurePattern, seed: u64) -> upsilon_sim::SimOutcome<u64> {
    SimBuilder::<u64>::new(pattern)
        .oracle(DummyOracle::new(0u64))
        .adversary(SeededRandom::new(seed))
        .spawn_all(move |pid| {
            algo(move |ctx| async move {
                let me = pid.index() as u64;
                let mine = Key::new("reg").at(me);
                ctx.invoke(&mine, || RegisterObject::new(u64::MAX), RegOp::Write(me))
                    .await?;
                let leader = ctx.query_fd().await?;
                loop {
                    let resp = ctx
                        .invoke(
                            &Key::new("reg").at(leader),
                            || RegisterObject::new(u64::MAX),
                            RegOp::Read,
                        )
                        .await?;
                    if let RegResp::Value(v) = resp {
                        if v != u64::MAX {
                            ctx.decide(v).await?;
                            return Ok(());
                        }
                    }
                    ctx.yield_step().await?;
                }
            })
        })
        .run()
}

fn pass_fail(clean: bool) -> ExitCode {
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
