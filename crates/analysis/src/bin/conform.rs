//! §3.1 conformance checker driver.
//!
//! Scans every algorithm body in the protocol crates for step-atomicity
//! (C1), banned host APIs (C2), escaping handles (C3) and unbounded
//! wait-free claims (C4), and exits nonzero if any unallowlisted finding
//! remains:
//!
//! ```text
//! cargo run -p upsilon-analysis --bin conform
//! cargo run -p upsilon-analysis --bin conform -- --root . --json \
//!     --allowlist crates/analysis/conform-allowlist.txt
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use upsilon_conform::{load_allowlist, scan_workspace, Allowlist};

fn usage() -> ! {
    eprintln!("usage: conform [--root <workspace-root>] [--allowlist <file>] [--json]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--allowlist" => {
                allowlist_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let allowlist_path =
        allowlist_path.unwrap_or_else(|| root.join("crates/analysis/conform-allowlist.txt"));
    let allow = if allowlist_path.exists() {
        match load_allowlist(&allowlist_path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("conform: bad allowlist {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };

    let report = match scan_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conform: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        for row in &report.bounds {
            match (&row.bound, &row.unbounded) {
                (Some(b), _) => println!(
                    "bound: {}:{} {} ≤ {}{}",
                    row.file,
                    row.line,
                    row.name,
                    b,
                    if row.wait_free { "  [wait_free]" } else { "" }
                ),
                (None, Some(why)) => {
                    println!(
                        "bound: {}:{} {} unbounded ({why})",
                        row.file, row.line, row.name
                    );
                }
                (None, None) => {}
            }
        }
        println!(
            "conform: {} files scanned, {} findings, {} allowlisted, {} routines bounded",
            report.files.len(),
            report.findings.len(),
            report.suppressed.len(),
            report.bounds.iter().filter(|b| b.bound.is_some()).count()
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
