//! Determinism lint driver.
//!
//! Scans the simulator crates for constructs that break deterministic
//! replay and exits nonzero if any unallowlisted finding remains:
//!
//! ```text
//! cargo run -p upsilon-analysis --bin lint
//! cargo run -p upsilon-analysis --bin lint -- --root . \
//!     --allowlist crates/analysis/lint-allowlist.txt
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use upsilon_analysis::lint::{scan_workspace, Allowlist};

fn usage() -> ! {
    eprintln!("usage: lint [--root <workspace-root>] [--allowlist <file>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--allowlist" => {
                allowlist_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let allowlist_path =
        allowlist_path.unwrap_or_else(|| root.join("crates/analysis/lint-allowlist.txt"));
    let allow = if allowlist_path.exists() {
        match Allowlist::load(&allowlist_path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("lint: bad allowlist {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };

    let report = match scan_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.violations {
        println!("{finding}");
    }
    println!(
        "lint: {} files scanned, {} violations, {} allowlisted",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
