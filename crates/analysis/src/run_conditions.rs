//! Pass 2: the §3.3 run-condition validator.
//!
//! A run of an algorithm is a tuple `⟨F, H, S, T⟩` (§3.3); not every tuple
//! is a run. This module re-validates the conditions on recorded
//! [`Run`]s, independently of the simulator's own bookkeeping:
//!
//! 1. **Crash respect** — no process takes a step (event, query or output)
//!    at a time `t` with `p ∈ F(t)`.
//! 2. **History consistency** — the k-th query step of the run carries
//!    exactly the k-th recorded failure-detector sample, with matching
//!    `(t, p)`; optionally ([`check_fd_history`]) every sample equals a
//!    fresh deterministic oracle's `H(p, t)` — histories are functions of
//!    `(p, t)`, so a re-instantiated oracle must reproduce them.
//! 3. **Increasing times** — `T` is strictly increasing across steps.
//! 4. **Output integrity** — the run's output list is exactly the
//!    sequence of `Output` steps in the event trace, and `Decide` outputs
//!    are irrevocable per process (§3.3's outputs are write-once
//!    decisions; repeating the same value is tolerated, changing it is
//!    not).
//! 5. **σ/T̄ alignment** — the induced trace of §3.4 lists the same
//!    `(process, output)` pairs at the same, non-decreasing times as the
//!    output list.
//!
//! The checker consumes a [`RunView`] — a plain-old-data projection of a
//! `Run` built from its public accessors — so tests can corrupt any field
//! and prove the validator rejects the corruption (see the crate's
//! mutation tests).

use std::fmt;
use upsilon_sim::{
    Event, FailurePattern, FdValue, InducedTrace, Oracle, Output, ProcessId, Run, StepKind, Time,
};

/// A corruptible projection of a [`Run`], built from public accessors.
///
/// Every field is public on purpose: the validator's own tests mutate
/// views to verify each §3.3 condition is genuinely enforced.
#[derive(Clone, Debug)]
pub struct RunView<D> {
    /// The failure pattern `F`.
    pub pattern: FailurePattern,
    /// The recorded steps `S`/`T`, in schedule order.
    pub events: Vec<Event<D>>,
    /// The outputs, in schedule order.
    pub outputs: Vec<(Time, ProcessId, Output)>,
    /// The failure-detector samples `H(p, t)` observed at query steps.
    pub fd_samples: Vec<(Time, ProcessId, D)>,
    /// The induced trace `⟨σ, T̄⟩` of §3.4.
    pub induced: InducedTrace,
}

impl<D: FdValue> RunView<D> {
    /// Projects a completed run into a view.
    pub fn of(run: &Run<D>) -> Self {
        RunView {
            pattern: run.pattern().clone(),
            events: run.events().to_vec(),
            outputs: run.outputs().to_vec(),
            fd_samples: run.fd_samples().to_vec(),
            induced: run.induced_trace(),
        }
    }
}

/// The first §3.3 condition a view violates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunViolation {
    /// Event times fail to strictly increase.
    NonIncreasingTime {
        /// Index of the offending event.
        index: usize,
        /// Its time, not greater than its predecessor's.
        time: Time,
    },
    /// A process acted at or after its crash time in `F(t)`.
    StepAfterCrash {
        /// The crashed process.
        pid: ProcessId,
        /// When it acted.
        time: Time,
        /// What it did ("step", "query", "output").
        what: &'static str,
    },
    /// Query steps and recorded samples disagree in number.
    QueryCountMismatch {
        /// `Query` events in the trace.
        queries: usize,
        /// Recorded samples.
        samples: usize,
    },
    /// The k-th query step and the k-th sample disagree.
    SampleMismatch {
        /// Which query/sample pair.
        index: usize,
        /// Human-readable discrepancy.
        detail: String,
    },
    /// A fresh oracle's `H(p, t)` differs from a recorded sample.
    FdHistoryMismatch {
        /// The queried process.
        pid: ProcessId,
        /// The query time.
        time: Time,
        /// Human-readable discrepancy.
        detail: String,
    },
    /// A process decided one value and later decided a different one.
    RevokedDecision {
        /// The offending process.
        pid: ProcessId,
        /// Its first decision.
        first: u64,
        /// The conflicting later decision.
        later: u64,
        /// When the conflict occurred.
        time: Time,
    },
    /// The output list is not the sequence of `Output` steps in the trace.
    OutputMismatch {
        /// Which position disagrees.
        index: usize,
        /// Human-readable discrepancy.
        detail: String,
    },
    /// The induced trace disagrees with the output list.
    SigmaMisaligned {
        /// Human-readable discrepancy.
        detail: String,
    },
}

impl fmt::Display for RunViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunViolation::NonIncreasingTime { index, time } => {
                write!(
                    f,
                    "event #{index}: time {time} does not increase (condition 3)"
                )
            }
            RunViolation::StepAfterCrash { pid, time, what } => {
                write!(
                    f,
                    "crashed process {pid} took a {what} at {time} (condition 1)"
                )
            }
            RunViolation::QueryCountMismatch { queries, samples } => write!(
                f,
                "{queries} query steps but {samples} fd samples (condition 2)"
            ),
            RunViolation::SampleMismatch { index, detail } => {
                write!(f, "query/sample #{index}: {detail} (condition 2)")
            }
            RunViolation::FdHistoryMismatch { pid, time, detail } => write!(
                f,
                "H({pid}, {time}) is not reproduced by a fresh oracle: {detail} (condition 2)"
            ),
            RunViolation::RevokedDecision {
                pid,
                first,
                later,
                time,
            } => write!(
                f,
                "{pid} decided {first} then revoked it to {later} at {time} (irrevocability)"
            ),
            RunViolation::OutputMismatch { index, detail } => {
                write!(f, "output #{index}: {detail}")
            }
            RunViolation::SigmaMisaligned { detail } => {
                write!(f, "induced trace misaligned: {detail} (§3.4)")
            }
        }
    }
}

/// Summary counts of a validated view, surfaced by stress campaigns.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RunStats {
    /// Events in the trace.
    pub events: usize,
    /// Query steps among them.
    pub queries: usize,
    /// Outputs produced.
    pub outputs: usize,
    /// `Decide` outputs among them.
    pub decisions: usize,
}

/// Validates every §3.3/§3.4 condition checkable without the oracle.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_run<D: FdValue>(view: &RunView<D>) -> Result<RunStats, RunViolation> {
    check_run_parts(
        &view.pattern,
        &view.events,
        &view.outputs,
        &view.fd_samples,
        &view.induced,
    )
}

/// The validator over borrowed run components — the allocation-free core
/// behind [`check_run`] and [`check_run_for`]. Campaign runners call the
/// validator on every execution, so it must not copy the trace it judges.
fn check_run_parts<D: FdValue>(
    pattern: &FailurePattern,
    events: &[Event<D>],
    outputs: &[(Time, ProcessId, Output)],
    fd_samples: &[(Time, ProcessId, D)],
    induced: &InducedTrace,
) -> Result<RunStats, RunViolation> {
    let mut stats = RunStats {
        events: events.len(),
        outputs: outputs.len(),
        ..RunStats::default()
    };

    // Condition 3: strictly increasing times; condition 1 for steps.
    let mut last: Option<Time> = None;
    for (index, ev) in events.iter().enumerate() {
        if last.is_some_and(|prev| ev.time <= prev) {
            return Err(RunViolation::NonIncreasingTime {
                index,
                time: ev.time,
            });
        }
        last = Some(ev.time);
        if pattern.is_crashed_at(ev.pid, ev.time) {
            return Err(RunViolation::StepAfterCrash {
                pid: ev.pid,
                time: ev.time,
                what: "step",
            });
        }
    }

    // Condition 2 (recorded half): the k-th query step carries the k-th
    // sample, at the same process and time.
    let queries: Vec<(&Event<D>, &D)> = events
        .iter()
        .filter_map(|ev| match &ev.kind {
            StepKind::Query(d) => Some((ev, d)),
            _ => None,
        })
        .collect();
    stats.queries = queries.len();
    if queries.len() != fd_samples.len() {
        return Err(RunViolation::QueryCountMismatch {
            queries: queries.len(),
            samples: fd_samples.len(),
        });
    }
    for (index, ((ev, d), (st, sp, sd))) in queries.iter().zip(fd_samples).enumerate() {
        if ev.time != *st || ev.pid != *sp {
            return Err(RunViolation::SampleMismatch {
                index,
                detail: format!(
                    "query step by {} at {} vs sample by {sp} at {st}",
                    ev.pid, ev.time
                ),
            });
        }
        if **d != *sd {
            return Err(RunViolation::SampleMismatch {
                index,
                detail: format!("query value {d:?} vs sample value {sd:?}"),
            });
        }
        if pattern.is_crashed_at(*sp, *st) {
            return Err(RunViolation::StepAfterCrash {
                pid: *sp,
                time: *st,
                what: "query",
            });
        }
    }

    // Output integrity: the output list is exactly the `Output` steps.
    let output_events: Vec<&Event<D>> = events
        .iter()
        .filter(|ev| matches!(ev.kind, StepKind::Output(_)))
        .collect();
    if output_events.len() != outputs.len() {
        return Err(RunViolation::OutputMismatch {
            index: output_events.len().min(outputs.len()),
            detail: format!(
                "{} output steps in the trace but {} recorded outputs",
                output_events.len(),
                outputs.len()
            ),
        });
    }
    for (index, (ev, (t, p, o))) in output_events.iter().zip(outputs).enumerate() {
        let StepKind::Output(eo) = &ev.kind else {
            unreachable!("filtered to output steps");
        };
        if ev.time != *t || ev.pid != *p || eo != o {
            return Err(RunViolation::OutputMismatch {
                index,
                detail: format!(
                    "trace has {} by {} at {}, output list has {o} by {p} at {t}",
                    eo, ev.pid, ev.time
                ),
            });
        }
        if pattern.is_crashed_at(*p, *t) {
            return Err(RunViolation::StepAfterCrash {
                pid: *p,
                time: *t,
                what: "output",
            });
        }
    }

    // Decide irrevocability.
    let mut decided: Vec<Option<u64>> = vec![None; pattern.n_plus_1()];
    for (t, p, o) in outputs {
        if let Output::Decide(v) = o {
            stats.decisions += 1;
            match decided[p.index()] {
                Some(first) if first != *v => {
                    return Err(RunViolation::RevokedDecision {
                        pid: *p,
                        first,
                        later: *v,
                        time: *t,
                    });
                }
                _ => decided[p.index()] = Some(*v),
            }
        }
    }

    // §3.4: σ and T̄ align with the output list.
    if induced.sigma.len() != induced.times.len() {
        return Err(RunViolation::SigmaMisaligned {
            detail: format!(
                "σ has {} entries but T̄ has {}",
                induced.sigma.len(),
                induced.times.len()
            ),
        });
    }
    if induced.sigma.len() != outputs.len() {
        return Err(RunViolation::SigmaMisaligned {
            detail: format!(
                "σ has {} entries but the run produced {} outputs",
                induced.sigma.len(),
                outputs.len()
            ),
        });
    }
    let mut last_t: Option<Time> = None;
    for (i, (((sp, so), st), (t, p, o))) in induced
        .sigma
        .iter()
        .zip(&induced.times)
        .zip(outputs)
        .enumerate()
    {
        if sp != p || so != o || st != t {
            return Err(RunViolation::SigmaMisaligned {
                detail: format!(
                    "σ[{i}] = ({sp}, {so}) at {st}, but output #{i} is ({p}, {o}) at {t}"
                ),
            });
        }
        if last_t.is_some_and(|prev| *st < prev) {
            return Err(RunViolation::SigmaMisaligned {
                detail: format!("T̄ decreases at position {i} ({st})"),
            });
        }
        last_t = Some(*st);
    }

    Ok(stats)
}

/// Validates a run directly (convenience over [`check_run`]).
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_run_for<D: FdValue>(run: &Run<D>) -> Result<RunStats, RunViolation> {
    // Borrow the run's components directly — no trace copy per validation.
    check_run_parts(
        run.pattern(),
        run.events(),
        run.outputs(),
        run.fd_samples(),
        &run.induced_trace(),
    )
}

/// Condition 2, determinism half: replays a freshly constructed oracle
/// (same configuration and seed as the one the run used) and requires it to
/// reproduce every recorded sample — `H(p, t)` must be a function of
/// `(p, t)`, independent of the schedule that sampled it.
///
/// # Errors
///
/// Returns [`RunViolation::FdHistoryMismatch`] on the first sample the
/// fresh oracle fails to reproduce.
pub fn check_fd_history<D: FdValue>(
    view: &RunView<D>,
    fresh: &mut dyn Oracle<D>,
) -> Result<(), RunViolation> {
    for (t, p, d) in &view.fd_samples {
        let replayed = fresh.output(*p, *t);
        if replayed != *d {
            return Err(RunViolation::FdHistoryMismatch {
                pid: *p,
                time: *t,
                detail: format!("recorded {d:?}, replayed {replayed:?}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t: u64, p: usize, kind: StepKind<u8>) -> Event<u8> {
        Event {
            time: Time(t),
            pid: ProcessId(p),
            kind,
        }
    }

    /// A hand-built well-formed view: p2 crashes at 5; p1 queries, operates
    /// and decides.
    fn good_view() -> RunView<u8> {
        let pattern = FailurePattern::builder(2)
            .crash(ProcessId(1), Time(5))
            .build();
        let events = vec![
            event(0, 0, StepKind::NoOp),
            event(1, 1, StepKind::Query(9)),
            event(2, 0, StepKind::Query(7)),
            event(3, 0, StepKind::Output(Output::Decide(3))),
        ];
        let outputs = vec![(Time(3), ProcessId(0), Output::Decide(3))];
        let fd_samples = vec![(Time(1), ProcessId(1), 9), (Time(2), ProcessId(0), 7)];
        let induced = InducedTrace {
            sigma: vec![(ProcessId(0), Output::Decide(3))],
            times: vec![Time(3)],
        };
        RunView {
            pattern,
            events,
            outputs,
            fd_samples,
            induced,
        }
    }

    #[test]
    fn accepts_well_formed_view() {
        let stats = check_run(&good_view()).expect("well-formed");
        assert_eq!(stats.events, 4);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.decisions, 1);
    }

    #[test]
    fn rejects_duplicate_time() {
        let mut v = good_view();
        v.events[2].time = Time(1);
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::NonIncreasingTime { index: 2, .. })
        ));
    }

    #[test]
    fn rejects_post_crash_step() {
        let mut v = good_view();
        v.events.push(event(6, 1, StepKind::NoOp));
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::StepAfterCrash { what: "step", .. })
        ));
    }

    #[test]
    fn rejects_sample_value_flip() {
        let mut v = good_view();
        v.fd_samples[1].2 = 8;
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::SampleMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn rejects_dropped_sample() {
        let mut v = good_view();
        v.fd_samples.pop();
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::QueryCountMismatch {
                queries: 2,
                samples: 1
            })
        ));
    }

    #[test]
    fn rejects_revoked_decision() {
        let mut v = good_view();
        v.events
            .push(event(4, 0, StepKind::Output(Output::Decide(8))));
        v.outputs.push((Time(4), ProcessId(0), Output::Decide(8)));
        v.induced.sigma.push((ProcessId(0), Output::Decide(8)));
        v.induced.times.push(Time(4));
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::RevokedDecision {
                first: 3,
                later: 8,
                ..
            })
        ));
    }

    #[test]
    fn tolerates_idempotent_re_decision() {
        let mut v = good_view();
        v.events
            .push(event(4, 0, StepKind::Output(Output::Decide(3))));
        v.outputs.push((Time(4), ProcessId(0), Output::Decide(3)));
        v.induced.sigma.push((ProcessId(0), Output::Decide(3)));
        v.induced.times.push(Time(4));
        assert!(check_run(&v).is_ok());
    }

    #[test]
    fn rejects_fabricated_output() {
        let mut v = good_view();
        v.outputs.push((Time(9), ProcessId(0), Output::Value(1)));
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::OutputMismatch { .. })
        ));
    }

    #[test]
    fn rejects_sigma_corruption() {
        let mut v = good_view();
        v.induced.sigma[0] = (ProcessId(1), Output::Decide(3));
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::SigmaMisaligned { .. })
        ));
        let mut v = good_view();
        v.induced.times[0] = Time(99);
        assert!(matches!(
            check_run(&v),
            Err(RunViolation::SigmaMisaligned { .. })
        ));
    }

    #[test]
    fn fd_history_replay_detects_divergence() {
        use upsilon_sim::{MappedOracle, NullOracle};
        let v = good_view();
        // An oracle that reproduces the recorded samples exactly…
        let mut faithful = MappedOracle::new(NullOracle, |p: ProcessId, _t, ()| match p.index() {
            1 => 9u8,
            _ => 7u8,
        });
        assert!(check_fd_history(&v, &mut faithful).is_ok());
        // …and one that diverges at p1.
        let mut divergent = MappedOracle::new(NullOracle, |_p, _t, ()| 9u8);
        assert!(matches!(
            check_fd_history(&v, &mut divergent),
            Err(RunViolation::FdHistoryMismatch { .. })
        ));
    }
}
