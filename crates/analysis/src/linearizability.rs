//! Pass 3: a Wing–Gong linearizability checker.
//!
//! The reproduction contains two snapshot implementations — the native
//! atomic snapshot object and the Afek et al. register-only construction —
//! and the extraction argument of §5 leans on both being *atomic*. Rather
//! than asserting that the two produce look-alike outputs on matched
//! schedules, this checker proves the real property: every recorded
//! concurrent history is equivalent to some sequential history of the
//! object's specification that respects the real-time partial order.
//!
//! The algorithm is the classical Wing–Gong search with the standard
//! prunings:
//!
//! * operations are indexed `0..n` (`n ≤ 64`) and the candidate set at each
//!   DFS node is encoded as a `u64` bitmask of already-linearized ops;
//! * an op is *minimal* (schedulable next) iff every op that precedes it in
//!   real time (`a.response < b.invoke`) is already in the mask;
//! * visited `(mask, state)` pairs are memoized in a `BTreeSet`, which
//!   collapses the exponential interleaving space whenever different
//!   linearization prefixes reach the same abstract state.
//!
//! Histories produced by the lockstep simulator are *complete*: a `Ctx`
//! operation returns its response before the algorithm can observe any
//! effect, so there are no pending invocations to complete or crop and
//! complete-history checking is sound. Harnesses record `invoke` as
//! `ctx.now()` immediately before the operation and `response` as
//! `ctx.now()` immediately after; since each `Ctx` call consumes at least
//! one step, the recorded interval strictly contains the op's atomic
//! moment, which is conservative (it can only *weaken* the real-time order,
//! never invent false precedence).

use std::collections::BTreeSet;
use std::fmt;
use upsilon_mem::{RegOp, RegResp, SnapOp, SnapResp, Value};
use upsilon_sim::{ProcessId, Time};

/// Maximum history length the `u64`-mask search supports.
pub const MAX_OPS: usize = 64;

/// A sequential specification of a shared object.
///
/// The checker searches for a total order of the recorded operations under
/// which replaying `apply` from `init` reproduces every recorded response.
pub trait SeqSpec {
    /// The abstract state. `Ord` is required for memoization.
    type State: Clone + Ord;
    /// Invocations.
    type Op: Clone + fmt::Debug;
    /// Responses.
    type Resp: Clone + PartialEq + fmt::Debug;

    /// The initial abstract state.
    fn init(&self) -> Self::State;

    /// Applies `op` by `p` to `state`, returning the sequential response.
    fn apply(&self, state: &mut Self::State, p: ProcessId, op: &Self::Op) -> Self::Resp;
}

/// One completed operation in a concurrent history.
pub struct OpRecord<S: SeqSpec> {
    /// The invoking process.
    pub process: ProcessId,
    /// Invocation time (before the operation's atomic moment).
    pub invoke: Time,
    /// Response time (after the operation's atomic moment).
    pub response: Time,
    /// The invocation.
    pub op: S::Op,
    /// The recorded response.
    pub resp: S::Resp,
}

// Manual impls: derives would demand `S: Clone`/`S: Debug` even though only
// the associated types appear in the fields.
impl<S: SeqSpec> Clone for OpRecord<S> {
    fn clone(&self) -> Self {
        OpRecord {
            process: self.process,
            invoke: self.invoke,
            response: self.response,
            op: self.op.clone(),
            resp: self.resp.clone(),
        }
    }
}

impl<S: SeqSpec> fmt::Debug for OpRecord<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpRecord")
            .field("process", &self.process)
            .field("invoke", &self.invoke)
            .field("response", &self.response)
            .field("op", &self.op)
            .field("resp", &self.resp)
            .finish()
    }
}

/// Why a history failed the check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinError {
    /// More than [`MAX_OPS`] operations.
    TooManyOps {
        /// The history length.
        len: usize,
    },
    /// An operation's response precedes its invocation.
    BadInterval {
        /// Index of the ill-formed record.
        index: usize,
    },
    /// Exhaustive search found no valid linearization.
    NotLinearizable {
        /// Distinct `(mask, state)` nodes explored before giving up.
        explored: usize,
    },
}

impl fmt::Display for LinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinError::TooManyOps { len } => {
                write!(f, "history has {len} ops; the checker supports ≤ {MAX_OPS}")
            }
            LinError::BadInterval { index } => {
                write!(f, "op #{index} responds before it is invoked")
            }
            LinError::NotLinearizable { explored } => write!(
                f,
                "no linearization exists ({explored} search nodes explored)"
            ),
        }
    }
}

/// Checks a complete concurrent history against a sequential spec.
///
/// On success returns a witness: indices into `history` in a linearization
/// order that respects real-time precedence and reproduces every response.
///
/// # Errors
///
/// See [`LinError`].
pub fn check_linearizable<S: SeqSpec>(
    spec: &S,
    history: &[OpRecord<S>],
) -> Result<Vec<usize>, LinError> {
    let n = history.len();
    if n > MAX_OPS {
        return Err(LinError::TooManyOps { len: n });
    }
    if let Some(index) = (0..n).find(|&i| history[i].response < history[i].invoke) {
        return Err(LinError::BadInterval { index });
    }

    // precede[i]: mask of ops that must be linearized before op i.
    let mut precede = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            if j != i && history[j].response < history[i].invoke {
                precede[i] |= 1 << j;
            }
        }
    }

    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };

    struct Search<'a, S: SeqSpec> {
        spec: &'a S,
        history: &'a [OpRecord<S>],
        precede: &'a [u64],
        full: u64,
        memo: BTreeSet<(u64, S::State)>,
        order: Vec<usize>,
        explored: usize,
    }

    impl<S: SeqSpec> Search<'_, S> {
        fn dfs(&mut self, mask: u64, state: &S::State) -> bool {
            if mask == self.full {
                return true;
            }
            if !self.memo.insert((mask, state.clone())) {
                return false;
            }
            self.explored += 1;
            for (i, rec) in self.history.iter().enumerate() {
                let bit = 1u64 << i;
                // Minimal next op: not yet taken, and everything that really
                // precedes it already linearized.
                if mask & bit != 0 || self.precede[i] & !mask != 0 {
                    continue;
                }
                let mut next = state.clone();
                let resp = self.spec.apply(&mut next, rec.process, &rec.op);
                if resp != rec.resp {
                    continue;
                }
                self.order.push(i);
                if self.dfs(mask | bit, &next) {
                    return true;
                }
                self.order.pop();
            }
            false
        }
    }

    let mut search = Search {
        spec,
        history,
        precede: &precede,
        full,
        memo: BTreeSet::new(),
        order: Vec::with_capacity(n),
        explored: 0,
    };
    let init = spec.init();
    if search.dfs(0, &init) {
        Ok(search.order)
    } else {
        Err(LinError::NotLinearizable {
            explored: search.explored,
        })
    }
}

/// Sequential spec of a multi-writer multi-reader atomic register.
#[derive(Clone, Debug)]
pub struct RegisterSpec<T> {
    /// The register's initial value.
    pub initial: T,
}

impl<T: Value + Ord> SeqSpec for RegisterSpec<T> {
    type State = T;
    type Op = RegOp<T>;
    type Resp = RegResp<T>;

    fn init(&self) -> T {
        self.initial.clone()
    }

    fn apply(&self, state: &mut T, _p: ProcessId, op: &RegOp<T>) -> RegResp<T> {
        match op {
            RegOp::Read => RegResp::Value(state.clone()),
            RegOp::Write(v) => {
                *state = v.clone();
                RegResp::Ack
            }
        }
    }
}

/// Sequential spec of an atomic snapshot with `size` segments over values
/// of type `T`.
///
/// `Update(i, v)` sets segment `i`; `Scan` returns the whole array. This is
/// the object both `upsilon-mem` snapshot flavors claim to implement.
#[derive(Clone, Debug)]
pub struct SnapshotSpec<T> {
    /// Number of segments (one per process).
    pub size: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> SnapshotSpec<T> {
    /// A snapshot spec with `size` segments, all initially empty.
    pub fn new(size: usize) -> Self {
        SnapshotSpec {
            size,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Value + Ord> SeqSpec for SnapshotSpec<T> {
    type State = Vec<Option<T>>;
    type Op = SnapOp<T>;
    type Resp = SnapResp<T>;

    fn init(&self) -> Vec<Option<T>> {
        vec![None; self.size]
    }

    fn apply(&self, state: &mut Vec<Option<T>>, _p: ProcessId, op: &SnapOp<T>) -> SnapResp<T> {
        match op {
            SnapOp::Update(i, v) => {
                state[*i] = Some(v.clone());
                SnapResp::Ack
            }
            SnapOp::Scan => SnapResp::Snap(state.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op<S: SeqSpec>(p: usize, inv: u64, res: u64, op: S::Op, resp: S::Resp) -> OpRecord<S> {
        OpRecord {
            process: ProcessId(p),
            invoke: Time(inv),
            response: Time(res),
            op,
            resp,
        }
    }

    type Reg = RegisterSpec<u64>;

    #[test]
    fn empty_history_is_linearizable() {
        let spec = Reg { initial: 0 };
        assert_eq!(check_linearizable(&spec, &[]), Ok(vec![]));
    }

    #[test]
    fn sequential_history_checks() {
        let spec = Reg { initial: 0 };
        let h = vec![
            op::<Reg>(0, 0, 1, RegOp::Write(5), RegResp::Ack),
            op::<Reg>(1, 2, 3, RegOp::Read, RegResp::Value(5)),
        ];
        assert_eq!(check_linearizable(&spec, &h), Ok(vec![0, 1]));
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        let spec = Reg { initial: 0 };
        // Write(7) concurrent with a Read that returns the *old* value:
        // linearizable by ordering the read first.
        let h = vec![
            op::<Reg>(0, 0, 10, RegOp::Write(7), RegResp::Ack),
            op::<Reg>(1, 1, 9, RegOp::Read, RegResp::Value(0)),
        ];
        let order = check_linearizable(&spec, &h).expect("linearizable");
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn stale_read_after_write_completes_is_rejected() {
        let spec = Reg { initial: 0 };
        // Write(7) fully precedes the Read, which still returns 0: new/old
        // inversion, the textbook non-linearizable register history.
        let h = vec![
            op::<Reg>(0, 0, 1, RegOp::Write(7), RegResp::Ack),
            op::<Reg>(1, 2, 3, RegOp::Read, RegResp::Value(0)),
        ];
        assert!(matches!(
            check_linearizable(&spec, &h),
            Err(LinError::NotLinearizable { .. })
        ));
    }

    #[test]
    fn split_reads_cannot_disagree_on_order() {
        let spec = Reg { initial: 0 };
        // p0: W(1) then r sees 2; p1: W(2) then r sees 1 — each read follows
        // both writes, so the two reads need contradictory write orders.
        let h = vec![
            op::<Reg>(0, 0, 1, RegOp::Write(1), RegResp::Ack),
            op::<Reg>(1, 2, 3, RegOp::Write(2), RegResp::Ack),
            op::<Reg>(0, 4, 5, RegOp::Read, RegResp::Value(1)),
            op::<Reg>(1, 6, 7, RegOp::Read, RegResp::Value(2)),
        ];
        assert!(matches!(
            check_linearizable(&spec, &h),
            Err(LinError::NotLinearizable { .. })
        ));
    }

    #[test]
    fn ill_formed_interval_is_rejected() {
        let spec = Reg { initial: 0 };
        let h = vec![op::<Reg>(0, 5, 2, RegOp::Read, RegResp::Value(0))];
        assert_eq!(
            check_linearizable(&spec, &h),
            Err(LinError::BadInterval { index: 0 })
        );
    }

    type Snap = SnapshotSpec<u64>;

    #[test]
    fn snapshot_scan_must_contain_completed_updates() {
        let spec = Snap::new(2);
        let h: Vec<OpRecord<Snap>> = vec![
            op::<Snap>(0, 0, 1, SnapOp::Update(0, 4u64), SnapResp::Ack),
            op::<Snap>(1, 2, 3, SnapOp::Scan, SnapResp::Snap(vec![Some(4), None])),
        ];
        assert!(check_linearizable(&spec, &h).is_ok());
        // The same scan missing the completed update is not linearizable.
        let bad: Vec<OpRecord<Snap>> = vec![
            op::<Snap>(0, 0, 1, SnapOp::Update(0, 4u64), SnapResp::Ack),
            op::<Snap>(1, 2, 3, SnapOp::Scan, SnapResp::Snap(vec![None, None])),
        ];
        assert!(matches!(
            check_linearizable(&spec, &bad),
            Err(LinError::NotLinearizable { .. })
        ));
    }

    #[test]
    fn concurrent_scans_respect_containment() {
        let spec = Snap::new(2);
        // Two scans concurrent with an update: one sees it, one does not —
        // fine as long as a single order explains both.
        let h: Vec<OpRecord<Snap>> = vec![
            op::<Snap>(0, 0, 10, SnapOp::Update(0, 1u64), SnapResp::Ack),
            op::<Snap>(1, 1, 4, SnapOp::Scan, SnapResp::Snap(vec![None, None])),
            op::<Snap>(1, 5, 9, SnapOp::Scan, SnapResp::Snap(vec![Some(1), None])),
        ];
        assert!(check_linearizable(&spec, &h).is_ok());
    }

    #[test]
    fn memoization_handles_many_concurrent_writes() {
        let spec = Reg { initial: 0 };
        // 12 pairwise-concurrent writes of the same value plus a read: the
        // naive search is 12! orders; the (mask, state) memo collapses it.
        let mut h: Vec<OpRecord<Reg>> = (0..12)
            .map(|i| op::<Reg>(i, 0, 100, RegOp::Write(9), RegResp::Ack))
            .collect();
        h.push(op::<Reg>(12, 101, 102, RegOp::Read, RegResp::Value(9)));
        assert!(check_linearizable(&spec, &h).is_ok());
    }
}
