//! Pass 1: the determinism lint.
//!
//! Everything this repository claims — replayable runs, seed-indexed
//! schedules, histories that are functions of `(p, t)` — rests on the
//! simulator crates being free of hidden nondeterminism. This pass scans
//! their sources line by line for the constructs that break that property:
//!
//! * `HashMap`/`HashSet` (randomized iteration order; use `BTreeMap`,
//!   `BTreeSet` or a seeded hasher),
//! * `Instant::now` / `SystemTime` (wall clocks; simulated [`Time`] only),
//! * `rand::thread_rng` (OS entropy; every generator must be seeded),
//! * `std::thread::spawn` outside the lockstep runtime in `upsilon-sim`,
//! * bare `unwrap()` in non-test simulator code (panics without an
//!   invariant message).
//!
//! Audited exceptions live in an allowlist file (one
//! `<rule-id> <path> [comment]` entry per line); the shipped allowlist is
//! empty and the intent is to keep it that way.
//!
//! [`Time`]: upsilon_sim::Time

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Crate directories under `crates/` that the lint scans.
///
/// `bench` is deliberately absent: benches measure wall time, so
/// `Instant`-based code is legitimate there and nothing in `bench` feeds
/// back into simulated behaviour. `conform` is absent for the same reason
/// `analysis` exempts its own pattern tables (`PATTERN_EXEMPT`): its rule
/// tables name the banned constructs as
/// string patterns (and it is itself a source analyzer with its own test
/// gauntlet).
pub const SCANNED_CRATES: &[&str] = &[
    "sim",
    "mem",
    "fd",
    "agreement",
    "converge",
    "extract",
    "core",
    "check",
    "fuzz",
    "analysis",
    "commute",
    "symmetry",
    "scenario",
    "swarm",
];

/// Files exempt from the whole scan because they *name* the banned
/// constructs as string patterns: the lint's own pattern table and its
/// regression tests. Scanning them would flag the scanner.
const PATTERN_EXEMPT: &[&str] = &[
    "crates/analysis/src/lint.rs",
    "crates/analysis/tests/lint_regression.rs",
];

/// Files exempt from [`Rule::ThreadSpawn`]: the thread-lockstep engine
/// (one sanctioned spawn site per process) and the run-batch worker pool
/// (parallelism *between* runs, never inside one).
const SPAWN_EXEMPT: &[&str] = &["crates/sim/src/engine.rs", "crates/sim/src/batch.rs"];

/// The individual determinism rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// `std::collections::HashMap`/`HashSet`: randomized iteration order.
    HashCollections,
    /// `Instant::now` / `SystemTime`: wall-clock reads.
    WallClock,
    /// `rand::thread_rng`: OS-entropy generator.
    ThreadRng,
    /// `std::thread::spawn` outside `upsilon-sim`'s runtime.
    ThreadSpawn,
    /// Bare `.unwrap()` in non-test simulator code.
    BareUnwrap,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::HashCollections,
        Rule::WallClock,
        Rule::ThreadRng,
        Rule::ThreadSpawn,
        Rule::BareUnwrap,
    ];

    /// Stable identifier used in reports and allowlist entries.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::ThreadRng => "thread-rng",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::BareUnwrap => "bare-unwrap",
        }
    }

    /// Parses an allowlist rule identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line rationale shown with findings.
    pub fn why(self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "iteration order depends on the hasher seed; use BTreeMap/BTreeSet \
                 or a seeded hasher"
            }
            Rule::WallClock => "wall clocks vary between runs; use simulated upsilon_sim::Time",
            Rule::ThreadRng => "thread_rng draws OS entropy; seed every generator explicitly",
            Rule::ThreadSpawn => {
                "threads outside the lockstep runtime race the scheduler; \
                 only upsilon-sim's builder/runtime may spawn"
            }
            Rule::BareUnwrap => {
                "bare unwrap() panics without an invariant message; use \
                 expect(\"...\") or propagate the error"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One matched occurrence of a banned construct.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The rule that matched.
    pub rule: Rule,
    /// Repository-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.file,
            self.line,
            self.rule,
            self.excerpt,
            self.rule.why()
        )
    }
}

/// Audited exceptions: entries of `<rule-id> <path>` that suppress findings.
#[derive(Clone, Default, Debug)]
pub struct Allowlist {
    entries: Vec<(Rule, String)>,
}

impl Allowlist {
    /// An allowlist permitting nothing.
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses allowlist text: one `<rule-id> <path> [comment]` entry per
    /// line; blank lines and lines starting with `#` are ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (rule_id, path) = match (parts.next(), parts.next()) {
                (Some(r), Some(p)) => (r, p),
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected '<rule-id> <path>'",
                        idx + 1
                    ))
                }
            };
            let rule = Rule::from_id(rule_id).ok_or_else(|| {
                format!(
                    "allowlist line {}: unknown rule '{rule_id}' (known: {})",
                    idx + 1,
                    Rule::ALL.map(Rule::id).join(", ")
                )
            })?;
            entries.push((rule, path.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Loads and parses an allowlist file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; malformed entries surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Allowlist::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Whether `rule` findings in `file` are suppressed.
    pub fn permits(&self, rule: Rule, file: &str) -> bool {
        self.entries.iter().any(|(r, p)| *r == rule && p == file)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Outcome of a workspace scan.
#[derive(Clone, Default, Debug)]
pub struct LintReport {
    /// Findings not covered by the allowlist — these fail the build.
    pub violations: Vec<Finding>,
    /// Findings suppressed by allowlist entries.
    pub suppressed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the scan is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as deterministic JSON (findings are already
    /// sorted by the scan), mirroring the conformance checker's format.
    pub fn to_json(&self) -> String {
        use upsilon_conform::diag::json_string;
        let push_findings = |out: &mut String, findings: &[Finding]| {
            for (i, f) in findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {");
                out.push_str(&format!(
                    "\"rule\": {}, \"file\": {}, \"line\": {}, \"excerpt\": {}, \"why\": {}",
                    json_string(f.rule.id()),
                    json_string(&f.file),
                    f.line,
                    json_string(&f.excerpt),
                    json_string(f.rule.why())
                ));
                out.push('}');
            }
            if !findings.is_empty() {
                out.push_str("\n  ");
            }
        };
        let mut out = String::from("{\n  \"violations\": [");
        push_findings(&mut out, &self.violations);
        out.push_str("],\n  \"suppressed\": [");
        push_findings(&mut out, &self.suppressed);
        out.push_str("],\n  \"files_scanned\": ");
        out.push_str(&self.files_scanned.to_string());
        out.push_str("\n}\n");
        out
    }
}

/// Scans every `.rs` file of the [`SCANNED_CRATES`] under `root/crates`.
///
/// # Errors
///
/// Propagates filesystem errors; a missing crate directory is an error (the
/// lint must not silently pass because it looked in the wrong place).
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for krate in SCANNED_CRATES {
        let dir = root.join("crates").join(krate);
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("scanned crate directory missing: {}", dir.display()),
            ));
        }
        let mut files = Vec::new();
        collect_rust_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = relative_path(root, &path);
            let source = fs::read_to_string(&path)?;
            report.files_scanned += 1;
            for finding in scan_source(&rel, &source) {
                if allow.permits(finding.rule, &finding.file) {
                    report.suppressed.push(finding);
                } else {
                    report.violations.push(finding);
                }
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Tracks whether the scanner is inside a `#[cfg(test)] mod` region.
#[derive(Clone, Copy, Debug)]
enum TestRegion {
    Outside,
    /// Saw `#[cfg(test)]`; waiting for the `mod` item it gates.
    Pending,
    /// Inside the gated module; holds the brace depth at its `mod` line.
    Inside(i64),
}

/// Scans one file's source. `rel_file` is the repository-relative path and
/// selects per-file rule applicability (sim-only rules, spawn exemptions,
/// `tests/`/`benches/` relaxations).
pub fn scan_source(rel_file: &str, source: &str) -> Vec<Finding> {
    if PATTERN_EXEMPT.contains(&rel_file) {
        return Vec::new();
    }
    let is_test_file = rel_file.contains("/tests/") || rel_file.contains("/benches/");
    let in_sim = rel_file.starts_with("crates/sim/src/");
    let spawn_exempt = SPAWN_EXEMPT.contains(&rel_file);

    let mut findings = Vec::new();
    let mut in_block_comment = false;
    let mut depth: i64 = 0;
    let mut region = TestRegion::Outside;

    for (idx, raw) in source.lines().enumerate() {
        let code = strip_comments(raw, &mut in_block_comment);
        let trimmed = code.trim();

        // `#[cfg(test)]`-gated module tracking (before depth update, so the
        // `mod tests {` line itself already counts as test code).
        if trimmed.contains("#[cfg(test)]") {
            region = if trimmed.contains("mod ") {
                TestRegion::Inside(depth)
            } else {
                TestRegion::Pending
            };
        } else if matches!(region, TestRegion::Pending) && !trimmed.is_empty() {
            region = if trimmed.contains("mod ") {
                TestRegion::Inside(depth)
            } else if trimmed.starts_with("#[") {
                TestRegion::Pending
            } else {
                TestRegion::Outside
            };
        }
        let in_test = is_test_file || matches!(region, TestRegion::Inside(_) | TestRegion::Pending);

        let mut push = |rule: Rule| {
            findings.push(Finding {
                rule,
                file: rel_file.to_string(),
                line: idx + 1,
                excerpt: trimmed.chars().take(120).collect(),
            });
        };

        if trimmed.contains("HashMap") || trimmed.contains("HashSet") {
            push(Rule::HashCollections);
        }
        if trimmed.contains("Instant::now") || trimmed.contains("SystemTime") {
            push(Rule::WallClock);
        }
        if trimmed.contains("thread_rng") {
            push(Rule::ThreadRng);
        }
        if !spawn_exempt
            && !in_test
            && (trimmed.contains("thread::spawn") || trimmed.contains("thread::Builder"))
        {
            push(Rule::ThreadSpawn);
        }
        if in_sim && !in_test && trimmed.contains(".unwrap()") {
            push(Rule::BareUnwrap);
        }

        depth += i64::try_from(code.matches('{').count()).unwrap_or(0);
        depth -= i64::try_from(code.matches('}').count()).unwrap_or(0);
        if let TestRegion::Inside(entry) = region {
            if depth <= entry {
                region = TestRegion::Outside;
            }
        }
    }
    findings
}

/// Removes `//` line comments and `/* */` block comments from one line,
/// carrying block-comment state across lines. String literals are not
/// parsed — a `//` inside a string would truncate the line — which is
/// acceptable for this codebase and keeps the scanner simple.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let mut out = String::new();
    let mut rest = line;
    loop {
        if *in_block {
            match rest.find("*/") {
                Some(i) => {
                    rest = &rest[i + 2..];
                    *in_block = false;
                }
                None => return out,
            }
        } else {
            match (rest.find("//"), rest.find("/*")) {
                (Some(l), Some(b)) if l < b => {
                    out.push_str(&rest[..l]);
                    return out;
                }
                (_, Some(b)) => {
                    out.push_str(&rest[..b]);
                    rest = &rest[b + 2..];
                    *in_block = true;
                }
                (Some(l), None) => {
                    out.push_str(&rest[..l]);
                    return out;
                }
                (None, None) => {
                    out.push_str(rest);
                    return out;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_hash_collections_anywhere() {
        let src = "use std::collections::HashMap;\nfn f() { let s: HashSet<u8> = x; }\n";
        let f = scan_source("crates/mem/src/foo.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![Rule::HashCollections, Rule::HashCollections]
        );
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn flags_wall_clock_and_thread_rng() {
        let src =
            "let t = Instant::now();\nlet s = SystemTime::now();\nlet r = rand::thread_rng();\n";
        let f = scan_source("crates/fd/src/foo.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![Rule::WallClock, Rule::WallClock, Rule::ThreadRng]
        );
    }

    #[test]
    fn spawn_flagged_except_in_runtime() {
        let src = "std::thread::spawn(|| {});\n";
        assert_eq!(
            rules_of(&scan_source("crates/mem/src/foo.rs", src)),
            vec![Rule::ThreadSpawn]
        );
        assert!(scan_source("crates/sim/src/engine.rs", src).is_empty());
        assert!(scan_source("crates/sim/src/batch.rs", src).is_empty());
    }

    #[test]
    fn bare_unwrap_only_in_sim_non_test() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&scan_source("crates/sim/src/object.rs", src)),
            vec![Rule::BareUnwrap]
        );
        assert!(scan_source("crates/mem/src/foo.rs", src).is_empty());
        assert!(scan_source("crates/sim/tests/foo.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt_from_test_only_rules() {
        let src = "\
fn prod() { y.expect(\"ok\"); }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); std::thread::spawn(|| {}); }
}
fn after() { z.unwrap(); }
";
        let f = scan_source("crates/sim/src/foo.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::BareUnwrap]);
        assert_eq!(f[0].line, 6, "only the unwrap after the test mod");
    }

    #[test]
    fn hash_collections_flagged_even_in_test_mods() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let f = scan_source("crates/fd/src/foo.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::HashCollections]);
    }

    #[test]
    fn comments_and_doc_comments_do_not_match() {
        let src = "\
// HashMap in a comment
/// Instant::now in docs
/* thread_rng in a
   block HashSet comment */ let ok = 1;
fn f() {} // trailing .unwrap() comment
";
        assert!(scan_source("crates/sim/src/foo.rs", src).is_empty());
    }

    #[test]
    fn allowlist_suppression_and_parsing() {
        let allow = Allowlist::parse(
            "# audited exceptions\n\nhash-collections crates/mem/src/foo.rs keeps a cache\n",
        )
        .expect("parses");
        assert_eq!(allow.len(), 1);
        assert!(allow.permits(Rule::HashCollections, "crates/mem/src/foo.rs"));
        assert!(!allow.permits(Rule::HashCollections, "crates/mem/src/bar.rs"));
        assert!(!allow.permits(Rule::WallClock, "crates/mem/src/foo.rs"));
        assert!(Allowlist::parse("no-such-rule crates/x.rs\n").is_err());
        assert!(Allowlist::parse("hash-collections\n").is_err());
    }

    #[test]
    fn rule_ids_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("bogus"), None);
    }
}
