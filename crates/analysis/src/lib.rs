//! # upsilon-analysis
//!
//! Four cooperating analysis passes that keep the reproduction honest:
//!
//! 1. **Determinism lint** ([`lint`]) — a source-level scan of the
//!    simulator crates banning constructs that silently break replayability
//!    (unseeded hash collections, wall clocks, `thread_rng`, stray thread
//!    spawns, bare `unwrap()` in simulator hot paths), with an allowlist
//!    file for audited exceptions. Run as a binary:
//!    `cargo run -p upsilon-analysis --bin lint`.
//! 2. **§3.1 conformance checker** ([`upsilon_conform`], re-hosted here as
//!    a binary: `cargo run -p upsilon-analysis --bin conform`) — a
//!    purpose-built lexer/parser that walks every algorithm body in the
//!    protocol crates and enforces the step-atomicity contract: one
//!    `ctx`-mediated shared operation per await point (C1), no host APIs
//!    (C2), no escaping handles (C3), and a static per-invocation step
//!    bound for every `wait_free`-claimed routine (C4).
//! 3. **Run-condition validator** ([`run_conditions`]) — an independent
//!    checker of the §3.3 well-formedness conditions on recorded
//!    [`upsilon_sim::Run`]s: strictly increasing step times, no steps by a
//!    process after its crash time in `F(t)`, query steps consistent with
//!    the failure-detector history `H(p, t)`, irrevocable decisions, and
//!    σ/times alignment in the induced trace of §3.4.
//! 4. **Linearizability checker** ([`linearizability`]) — a Wing–Gong
//!    style checker with partial-order pruning for register and snapshot
//!    histories, used to show that the native snapshot and the Afek et al.
//!    register-only construction implement the *same* sequential object
//!    rather than merely producing look-alike final states.
//!
//! The validator is deliberately independent of the simulator's own
//! bookkeeping: it re-derives every property from the public `Run`
//! accessors, so a bug in the recorder and a bug in the checker would have
//! to coincide to slip through.
//!
//! All passes are also reachable through one driver,
//! `cargo run -p upsilon-analysis --bin analyze -- <lint|conform|run-conditions>`,
//! which adds a shared `--json` flag for machine-readable reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod linearizability;
pub mod lint;
pub mod run_conditions;
pub mod spec;

pub use linearizability::{
    check_linearizable, LinError, OpRecord, RegisterSpec, SeqSpec, SnapshotSpec,
};
pub use lint::{Allowlist, Finding, LintReport, Rule};
pub use run_conditions::{
    check_fd_history, check_run, check_run_for, RunStats, RunView, RunViolation,
};
pub use spec::{RunConditionsSpec, RunSpec};
