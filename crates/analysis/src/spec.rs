//! A uniform interface for run-level correctness specifications.
//!
//! The systematic explorer (`upsilon-check`) evaluates every run it
//! enumerates against a set of *specs*: trace predicates that either accept
//! the run or describe a violation. [`RunSpec`] is that interface; the §3.3
//! run-condition validator is adapted here, and protocol crates
//! (`upsilon-agreement`, `upsilon-extract`) provide adapters for their own
//! task and failure-detector specifications.
//!
//! Exploration with partial-order reduction only visits one representative
//! of each class of runs equivalent up to commuting independent steps, so a
//! spec must be **trace-closed**: its verdict may not depend on the relative
//! order of steps the conflict relation declares independent. Every spec in
//! this repository is a function of per-process projections plus the failure
//! pattern, which is closed by construction.

use upsilon_sim::{FdValue, Run};

use crate::run_conditions::check_run_for;

/// A checkable correctness property of a single [`Run`].
///
/// Implementations must be cheap enough to evaluate on every explored node
/// (runs are depth-bounded and small) and must tolerate *truncated* runs:
/// exploration stops at a depth budget, so liveness-flavoured clauses
/// (termination) should only fire on runs that actually completed — see
/// [`StopReason`](upsilon_sim::StopReason).
pub trait RunSpec<D: FdValue>: Send + Sync {
    /// A short stable name for reports and counterexample tokens.
    fn name(&self) -> &str;

    /// Checks the run.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    fn check(&self, run: &Run<D>) -> Result<(), String>;
}

/// The §3.3 run-condition validator as a spec: every explored run must be a
/// well-formed run of the model before any protocol property is judged.
#[derive(Clone, Copy, Default, Debug)]
pub struct RunConditionsSpec;

impl<D: FdValue> RunSpec<D> for RunConditionsSpec {
    fn name(&self) -> &str {
        "run-conditions"
    }

    fn check(&self, run: &Run<D>) -> Result<(), String> {
        check_run_for(run).map(|_| ()).map_err(|v| v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsilon_sim::{algo, FailurePattern, SimBuilder};

    #[test]
    fn run_conditions_spec_accepts_well_formed_runs() {
        let outcome = SimBuilder::<()>::new(FailurePattern::failure_free(2))
            .spawn_all(|pid| {
                algo(move |ctx| async move {
                    ctx.decide(pid.index() as u64).await?;
                    Ok(())
                })
            })
            .run();
        let spec = RunConditionsSpec;
        assert_eq!(RunSpec::<()>::name(&spec), "run-conditions");
        assert_eq!(spec.check(&outcome.run), Ok(()));
    }
}
