//! Mutation tests for the §3.3 run-condition validator.
//!
//! Strategy: drive *real* simulator workloads (the same shapes as the
//! theorem harnesses — failure-detector queries, shared-object steps,
//! crashes, decisions), confirm the validator accepts the genuine runs,
//! then seed specific corruptions into the [`RunView`] and require each to
//! be rejected with the matching violation. A validator that accepts a
//! corrupted view would also accept a buggy simulator, so these tests are
//! what make the green path meaningful.

use upsilon_analysis::{check_fd_history, check_run, check_run_for, RunView, RunViolation};
use upsilon_mem::{RegOp, RegisterObject};
use upsilon_sim::{
    algo, DummyOracle, Event, FailurePattern, Key, MappedOracle, NullOracle, Output, ProcessId,
    SeededRandom, SimBuilder, StepKind, Time,
};

/// A consensus-like workload: every process queries the detector, writes
/// its proposal, reads the designated leader's register and decides.
fn leader_workload(pattern: FailurePattern, seed: u64) -> upsilon_sim::SimOutcome<u64> {
    let n_plus_1 = pattern.n_plus_1();
    SimBuilder::<u64>::new(pattern)
        // "Leader" detector: constantly points at process 0.
        .oracle(DummyOracle::new(0u64))
        .adversary(SeededRandom::new(seed))
        .spawn_all(move |pid| {
            algo(move |ctx| async move {
                let me = pid.index() as u64;
                let mine = Key::new("reg").at(me);
                ctx.invoke(&mine, || RegisterObject::new(u64::MAX), RegOp::Write(me))
                    .await?;
                let leader = ctx.query_fd().await?;
                loop {
                    let resp = ctx
                        .invoke(
                            &Key::new("reg").at(leader),
                            || RegisterObject::new(u64::MAX),
                            RegOp::Read,
                        )
                        .await?;
                    if let upsilon_mem::RegResp::Value(v) = resp {
                        if v != u64::MAX {
                            ctx.decide(v).await?;
                            return Ok(());
                        }
                    }
                    let _ = n_plus_1; // capture for symmetry with real harnesses
                    ctx.yield_step().await?;
                }
            })
        })
        .run()
}

#[test]
fn genuine_failure_free_runs_pass() {
    for seed in [1u64, 7, 42] {
        let outcome = leader_workload(FailurePattern::failure_free(3), seed);
        let stats = check_run_for(&outcome.run)
            .unwrap_or_else(|v| panic!("seed {seed}: genuine run rejected: {v}"));
        assert_eq!(stats.decisions, 3, "all three processes decide");
        assert!(stats.queries >= 3, "every process queries the detector");
    }
}

#[test]
fn genuine_crashy_runs_pass() {
    // Process 2 crashes early; the survivors still decide on the leader's
    // value. The validator must accept the run even though the trace stops
    // scheduling p2.
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(2), Time(4))
        .build();
    let outcome = leader_workload(pattern, 99);
    let stats = check_run_for(&outcome.run).expect("genuine crashy run rejected");
    assert!(stats.decisions >= 2, "both correct processes decide");
}

#[test]
fn fd_history_replay_accepts_deterministic_oracle() {
    let outcome = leader_workload(FailurePattern::failure_free(3), 5);
    let view = RunView::of(&outcome.run);
    // The run used DummyOracle::new(0); a freshly built copy must replay
    // every sample (H is a function of (p, t), not of the schedule).
    let mut fresh = DummyOracle::new(0u64);
    check_fd_history(&view, &mut fresh).expect("deterministic oracle must replay");
    // A detector pointing elsewhere is immediately caught.
    let mut wrong = DummyOracle::new(1u64);
    assert!(matches!(
        check_fd_history(&view, &mut wrong),
        Err(RunViolation::FdHistoryMismatch { .. })
    ));
}

/// Seeded corruption: swap two event times so `T` is no longer increasing.
#[test]
fn corruption_reordered_times_is_rejected() {
    let outcome = leader_workload(FailurePattern::failure_free(2), 11);
    let mut view = RunView::of(&outcome.run);
    assert!(check_run(&view).is_ok(), "sanity: uncorrupted view passes");
    let t0 = view.events[0].time;
    let t1 = view.events[1].time;
    view.events[0].time = t1;
    view.events[1].time = t0;
    assert!(matches!(
        check_run(&view),
        Err(RunViolation::NonIncreasingTime { .. })
    ));
}

/// Seeded corruption: a step by a process after its crash time in `F(t)`.
#[test]
fn corruption_post_crash_step_is_rejected() {
    let pattern = FailurePattern::builder(3)
        .crash(ProcessId(2), Time(4))
        .build();
    let outcome = leader_workload(pattern, 99);
    let mut view = RunView::of(&outcome.run);
    assert!(check_run(&view).is_ok(), "sanity: uncorrupted view passes");
    let last_time = view.events.last().expect("nonempty run").time;
    view.events.push(Event {
        time: Time(last_time.0 + 1),
        pid: ProcessId(2),
        kind: StepKind::NoOp,
    });
    assert!(matches!(
        check_run(&view),
        Err(RunViolation::StepAfterCrash {
            pid: ProcessId(2),
            what: "step",
            ..
        })
    ));
}

/// Seeded corruption: flip a decision value after the fact.
#[test]
fn corruption_flipped_decision_is_rejected() {
    let outcome = leader_workload(FailurePattern::failure_free(2), 3);
    let mut view = RunView::of(&outcome.run);
    assert!(check_run(&view).is_ok(), "sanity: uncorrupted view passes");
    // Flip the decided value in the output list but not in the trace:
    // exactly the kind of recorder bug the cross-check exists to catch.
    let pos = view
        .outputs
        .iter()
        .position(|(_, _, o)| matches!(o, Output::Decide(_)))
        .expect("workload decides");
    view.outputs[pos].2 = Output::Decide(u64::MAX);
    assert!(matches!(
        check_run(&view),
        Err(RunViolation::OutputMismatch { .. })
    ));
}

/// Seeded corruption: a later, different decision by the same process.
#[test]
fn corruption_revoked_decision_is_rejected() {
    let outcome = leader_workload(FailurePattern::failure_free(2), 3);
    let mut view = RunView::of(&outcome.run);
    let (t, p, _) = *view
        .outputs
        .iter()
        .find(|(_, _, o)| matches!(o, Output::Decide(_)))
        .expect("workload decides");
    let t_after = Time(view.events.last().expect("nonempty").time.0 + 1);
    view.events.push(Event {
        time: t_after,
        pid: p,
        kind: StepKind::Output(Output::Decide(u64::MAX - 1)),
    });
    view.outputs
        .push((t_after, p, Output::Decide(u64::MAX - 1)));
    view.induced.sigma.push((p, Output::Decide(u64::MAX - 1)));
    view.induced.times.push(t_after);
    let _ = t;
    assert!(matches!(
        check_run(&view),
        Err(RunViolation::RevokedDecision { .. })
    ));
}

/// Seeded corruption: drop a failure-detector sample.
#[test]
fn corruption_dropped_sample_is_rejected() {
    let outcome = leader_workload(FailurePattern::failure_free(2), 21);
    let mut view = RunView::of(&outcome.run);
    view.fd_samples.pop();
    assert!(matches!(
        check_run(&view),
        Err(RunViolation::QueryCountMismatch { .. })
    ));
}

/// Seeded corruption: misalign the induced trace of §3.4.
#[test]
fn corruption_sigma_misalignment_is_rejected() {
    let outcome = leader_workload(FailurePattern::failure_free(2), 21);
    let mut view = RunView::of(&outcome.run);
    view.induced.sigma.reverse();
    let err = check_run(&view);
    assert!(
        matches!(
            err,
            Err(RunViolation::SigmaMisaligned { .. }) | Err(RunViolation::OutputMismatch { .. })
        ),
        "got {err:?}"
    );
}

/// The validator also works over mapped oracles (trivial reductions).
#[test]
fn mapped_oracle_runs_validate() {
    let outcome = SimBuilder::<u64>::new(FailurePattern::failure_free(2))
        .oracle(MappedOracle::new(NullOracle, |_p, _t, ()| 0u64))
        .adversary(SeededRandom::new(8))
        .spawn_all(|_pid| {
            algo(move |ctx| async move {
                let leader = ctx.query_fd().await?;
                ctx.decide(leader).await?;
                Ok(())
            })
        })
        .run();
    let stats = check_run_for(&outcome.run).expect("mapped-oracle run");
    assert_eq!(stats.decisions, 2);
}
