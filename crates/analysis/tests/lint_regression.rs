//! End-to-end lint regression test: seed a determinism violation into a
//! synthetic workspace and require [`scan_workspace`] to flag it, exactly
//! as CI runs the `lint` binary against the real tree.

use std::fs;
use std::path::PathBuf;
use upsilon_analysis::lint::{scan_workspace, Allowlist, Rule, SCANNED_CRATES};

/// Builds a throwaway workspace skeleton under the test target dir and
/// returns its root. Each test gets its own directory to stay independent.
fn fake_workspace(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-{tag}"));
    if root.exists() {
        fs::remove_dir_all(&root).expect("clean stale fixture");
    }
    for krate in SCANNED_CRATES {
        fs::create_dir_all(root.join("crates").join(krate).join("src"))
            .expect("create fixture crate dir");
    }
    root
}

#[test]
fn seeded_hashmap_in_sim_fails_the_lint() {
    let root = fake_workspace("seeded-hashmap");
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n",
    )
    .expect("seed violation");

    let report = scan_workspace(&root, &Allowlist::empty()).expect("scan");
    assert!(!report.is_clean(), "seeded HashMap must fail the lint");
    assert!(report
        .violations
        .iter()
        .all(|f| f.rule == Rule::HashCollections && f.file == "crates/sim/src/lib.rs"));
}

#[test]
fn allowlisted_violation_is_suppressed_but_counted() {
    let root = fake_workspace("allowlisted");
    fs::write(
        root.join("crates/mem/src/lib.rs"),
        "use std::time::Instant;\npub fn t() { let _ = Instant::now(); }\n",
    )
    .expect("seed violation");

    let allow = Allowlist::parse(
        "# audited: fixture exception\nwall-clock crates/mem/src/lib.rs fixture justification\n",
    )
    .expect("parse allowlist");
    let report = scan_workspace(&root, &allow).expect("scan");
    assert!(report.is_clean(), "allowlisted finding must not fail");
    assert_eq!(
        report.suppressed.len(),
        1,
        "the Instant::now use is suppressed"
    );
}

#[test]
fn clean_fixture_tree_passes() {
    let root = fake_workspace("clean");
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n",
    )
    .expect("write clean file");
    let report = scan_workspace(&root, &Allowlist::empty()).expect("scan");
    assert!(report.is_clean());
    assert_eq!(report.files_scanned, 1);
}

/// The real repository must be lint-clean with the checked-in (empty)
/// allowlist — the same invariant CI enforces via the binary.
#[test]
fn real_tree_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow = Allowlist::load(&root.join("crates/analysis/lint-allowlist.txt"))
        .expect("checked-in allowlist parses");
    let report = scan_workspace(&root, &allow).expect("scan real tree");
    assert!(
        report.is_clean(),
        "determinism lint violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
