//! Property tests: every oracle in the crate satisfies its own
//! specification checker for random patterns, seeds and stabilization
//! times — the two halves (generators and checkers) cross-validate.

use proptest::prelude::*;
use upsilon_fd::{
    check_anti_omega, check_eventually_perfect, check_omega, check_omega_k, check_upsilon_f,
    AntiOmegaOracle, EventuallyPerfectOracle, LeaderChoice, OmegaKChoice, OmegaKOracle,
    OmegaOracle, PerfectOracle, UpsilonChoice, UpsilonOracle,
};
use upsilon_sim::{FailurePattern, FdValue, Oracle, ProcessId, Time};

const N_PLUS_1: usize = 4;

fn arb_pattern() -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec(proptest::option::of(0u64..80), N_PLUS_1).prop_map(|crashes| {
        let mut crashes = crashes;
        crashes[0] = None; // keep p1 correct
        let mut b = FailurePattern::builder(N_PLUS_1);
        for (i, c) in crashes.iter().enumerate() {
            if let Some(t) = c {
                b = b.crash(ProcessId(i), Time(*t));
            }
        }
        b.build()
    })
}

fn dense_samples<D: FdValue>(
    pattern: &FailurePattern,
    oracle: &mut dyn Oracle<D>,
    horizon: u64,
) -> Vec<(Time, ProcessId, D)> {
    let mut out = Vec::new();
    for t in 0..horizon {
        for i in 0..pattern.n_plus_1() {
            let p = ProcessId(i);
            if !pattern.is_crashed_at(p, Time(t)) {
                out.push((Time(t), p, oracle.output(p, Time(t))));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    #[test]
    fn upsilon_f_oracles_satisfy_their_spec(
        pattern in arb_pattern(),
        seed in 0u64..10_000,
        stab in 0u64..150,
        f_raw in 1usize..N_PLUS_1,
    ) {
        prop_assume!(pattern.in_environment(f_raw));
        let mut o = UpsilonOracle::new(&pattern, f_raw, UpsilonChoice::RandomLegal, Time(stab), seed);
        let samples = dense_samples(&pattern, &mut o, stab + 60);
        prop_assert!(check_upsilon_f(&pattern, f_raw, &samples, 5).is_ok(),
            "{:?}", check_upsilon_f(&pattern, f_raw, &samples, 5));
    }

    #[test]
    fn omega_oracles_satisfy_their_spec(
        pattern in arb_pattern(),
        seed in 0u64..10_000,
        stab in 0u64..150,
    ) {
        let mut o = OmegaOracle::new(&pattern, LeaderChoice::RandomCorrect, Time(stab), seed);
        let samples = dense_samples(&pattern, &mut o, stab + 60);
        prop_assert!(check_omega(&pattern, &samples, 5).is_ok());
    }

    #[test]
    fn omega_k_oracles_satisfy_their_spec(
        pattern in arb_pattern(),
        seed in 0u64..10_000,
        stab in 0u64..150,
        k in 1usize..=N_PLUS_1,
    ) {
        let mut o = OmegaKOracle::new(&pattern, k, OmegaKChoice::RandomLegal, Time(stab), seed);
        let samples = dense_samples(&pattern, &mut o, stab + 60);
        prop_assert!(check_omega_k(&pattern, k, &samples, 5).is_ok());
    }

    #[test]
    fn perfect_detectors_satisfy_their_spec(
        pattern in arb_pattern(),
        seed in 0u64..10_000,
        stab in 0u64..150,
    ) {
        let horizon = stab.max(pattern.settled_at().value()) + 60;
        let mut p = PerfectOracle::new(&pattern);
        let samples = dense_samples(&pattern, &mut p, horizon);
        prop_assert!(check_eventually_perfect(&pattern, &samples, 5).is_ok());
        // P also satisfies strong accuracy at every sampled point.
        for (t, _, suspects) in &samples {
            prop_assert!(suspects.is_subset(pattern.crashed_by(*t)));
        }
        let mut ep = EventuallyPerfectOracle::new(&pattern, Time(stab), seed);
        let samples = dense_samples(&pattern, &mut ep, horizon);
        prop_assert!(check_eventually_perfect(&pattern, &samples, 5).is_ok());
    }

    #[test]
    fn anti_omega_oracles_satisfy_their_spec(
        pattern in arb_pattern(),
        seed in 0u64..10_000,
        quiesce in 0u64..100,
    ) {
        let mut o = AntiOmegaOracle::new(&pattern, Time(quiesce), seed);
        let samples = dense_samples(&pattern, &mut o, quiesce * 2 + 200);
        let witness = check_anti_omega(&pattern, &samples);
        prop_assert!(witness.is_ok(), "{witness:?}");
        prop_assert!(pattern.is_correct(witness.unwrap()));
    }

    /// Cross-check: a Υ oracle's stable set is never accepted by the Ω_k
    /// checker "by accident" when it lacks a correct member and k matches.
    #[test]
    fn checkers_do_not_cross_accept(
        pattern in arb_pattern(),
        seed in 0u64..10_000,
    ) {
        prop_assume!(!pattern.faulty().is_empty());
        // A Υ history stabilizing on exactly the faulty set (legal for Υ
        // when |faulty| ≥ n+1-f i.e. f = n and faulty non-empty)…
        let f = pattern.n_plus_1() - 1;
        let mut o = UpsilonOracle::new(
            &pattern, f, UpsilonChoice::FaultyPadded, Time(10), seed);
        let samples = dense_samples(&pattern, &mut o, 80);
        let k = o.stable_set().len();
        // …is a spec-violating Ω_k history whenever its stable set contains
        // no correct process.
        if o.stable_set().intersection(pattern.correct()).is_empty() {
            prop_assert!(check_omega_k(&pattern, k, &samples, 1).is_err());
        }
    }
}
