//! The anti-Ω failure detector (Zielinski \[22,23\], discussed in the paper's
//! related work): outputs a single process identifier such that some correct
//! process is eventually never output.
//!
//! Anti-Ω is *unstable* — its output need never converge — and strictly
//! weaker than Υ; it marks the outer edge of the paper's minimality result
//! (Υ is minimal among *stable* detectors; anti-Ω shows the stability
//! restriction matters). The repository implements the oracle and its spec
//! checker for the failure-detector strength table; Zielinski's CHT-style
//! sufficiency algorithm is out of scope (see DESIGN.md §6).

use crate::noise::{noise_pid, noise_rng};
use rand::Rng;
use upsilon_sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

/// An anti-Ω oracle: after `quiesce_at` it never outputs the designated
/// "protected" correct process; before that, and for all other choices, the
/// output keeps fluctuating forever (no stabilization — anti-Ω's defining
/// feature).
#[derive(Clone, Debug)]
pub struct AntiOmegaOracle {
    n_plus_1: usize,
    protected: ProcessId,
    quiesce_at: Time,
    seed: u64,
}

impl AntiOmegaOracle {
    /// An anti-Ω history for `pattern`: eventually the smallest correct
    /// process is never output again.
    pub fn new(pattern: &FailurePattern, quiesce_at: Time, seed: u64) -> Self {
        AntiOmegaOracle {
            n_plus_1: pattern.n_plus_1(),
            protected: pattern.correct().min().expect("some process is correct"),
            quiesce_at,
            seed,
        }
    }

    /// The correct process that is eventually never output.
    pub fn protected(&self) -> ProcessId {
        self.protected
    }

    /// The time after which the protected process is never output.
    pub fn quiesce_at(&self) -> Time {
        self.quiesce_at
    }
}

impl Oracle<ProcessId> for AntiOmegaOracle {
    fn output(&mut self, p: ProcessId, t: Time) -> ProcessId {
        if t < self.quiesce_at {
            return noise_pid(self.seed, p, t, self.n_plus_1);
        }
        // Forever fluctuating, but never the protected process: pick among
        // the other n processes.
        let mut rng = noise_rng(self.seed ^ 0xA11A, p, t);
        loop {
            let q = ProcessId(rng.gen_range(0..self.n_plus_1));
            if q != self.protected {
                return q;
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "anti-Omega(protects={}, at={})",
            self.protected, self.quiesce_at
        )
    }
}

/// Finite-run surrogate of the anti-Ω specification: some correct process
/// does not appear among the sampled outputs in the second half of the run
/// (the infinite spec says "eventually never output"; on a finite prefix we
/// demand the avoidance be visible for at least half the observations).
pub fn check_anti_omega(
    pattern: &FailurePattern,
    samples: &[(Time, ProcessId, ProcessId)],
) -> Result<ProcessId, String> {
    if samples.is_empty() {
        return Err("no samples to check".to_string());
    }
    let tail = &samples[samples.len() / 2..];
    let seen_in_tail: ProcessSet = tail.iter().map(|(_, _, out)| *out).collect();
    let witness = pattern.correct().difference(seen_in_tail).min();
    witness.ok_or_else(|| {
        format!(
            "every correct process ({}) is still being output in the trailing half of the \
             run — no eventually-avoided correct process is visible",
            pattern.correct()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_crash() -> FailurePattern {
        FailurePattern::builder(3)
            .crash(ProcessId(0), Time(4))
            .build()
    }

    #[test]
    fn protected_process_is_correct_and_eventually_avoided() {
        let pat = one_crash();
        let mut o = AntiOmegaOracle::new(&pat, Time(50), 3);
        assert!(pat.is_correct(o.protected()));
        for t in 50..500u64 {
            for i in 0..3 {
                assert_ne!(o.output(ProcessId(i), Time(t)), o.protected());
            }
        }
    }

    #[test]
    fn output_keeps_fluctuating_after_quiescence() {
        let pat = one_crash();
        let mut o = AntiOmegaOracle::new(&pat, Time(0), 3);
        let distinct: std::collections::BTreeSet<ProcessId> = (0..200u64)
            .map(|t| o.output(ProcessId(1), Time(t)))
            .collect();
        assert!(
            distinct.len() >= 2,
            "anti-Ω is unstable: it never converges"
        );
    }

    #[test]
    fn checker_accepts_a_valid_history() {
        let pat = one_crash();
        let mut o = AntiOmegaOracle::new(&pat, Time(20), 3);
        let samples: Vec<(Time, ProcessId, ProcessId)> = (0..300u64)
            .map(|t| {
                (
                    Time(t),
                    ProcessId((t % 3) as usize),
                    o.output(ProcessId((t % 3) as usize), Time(t)),
                )
            })
            .collect();
        let witness = check_anti_omega(&pat, &samples).expect("valid anti-Ω history");
        assert_eq!(witness, o.protected());
    }

    #[test]
    fn checker_rejects_a_history_covering_all_correct_processes() {
        let pat = one_crash();
        // A "round-robin over correct" output violates anti-Ω.
        let samples: Vec<(Time, ProcessId, ProcessId)> = (0..100u64)
            .map(|t| (Time(t), ProcessId(1), ProcessId(1 + (t % 2) as usize)))
            .collect();
        assert!(check_anti_omega(&pat, &samples).is_err());
    }

    #[test]
    fn checker_rejects_empty_samples() {
        assert!(check_anti_omega(&one_crash(), &[]).is_err());
    }
}
