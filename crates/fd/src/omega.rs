//! The leader oracles Ω (Chandra–Hadzilacos–Toueg \[3\]) and Ω_k (Neiger
//! \[18\]; `Ω_n` and `Ω_f` in the paper).
//!
//! Ω outputs a single process; eventually the same *correct* leader is
//! output at all correct processes. Ω_k outputs a set of exactly `k`
//! processes; eventually the same set, containing at least one correct
//! process, is output at all correct processes. `Ω_1 = Ω`.

use crate::noise::{noise_pid, noise_set_of_size};
use rand::Rng;
use upsilon_sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

/// Policies for the stable leader of an Ω history.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LeaderChoice {
    /// The correct process with the smallest identifier.
    #[default]
    MinCorrect,
    /// The correct process with the largest identifier.
    MaxCorrect,
    /// A fixed process, validated to be correct.
    Fixed(ProcessId),
    /// A seeded uniformly random correct process.
    RandomCorrect,
}

fn choose_leader(pattern: &FailurePattern, choice: LeaderChoice, seed: u64) -> ProcessId {
    let correct = pattern.correct();
    match choice {
        LeaderChoice::MinCorrect => correct.min().expect("some process is correct"),
        LeaderChoice::MaxCorrect => correct.max().expect("some process is correct"),
        LeaderChoice::Fixed(p) => {
            assert!(
                correct.contains(p),
                "fixed leader {p} is faulty in {pattern}"
            );
            p
        }
        LeaderChoice::RandomCorrect => {
            let mut rng = crate::noise::noise_rng(seed, ProcessId(0), Time(u64::MAX - 1));
            let k = rng.gen_range(0..correct.len());
            correct.iter().nth(k).expect("index in range")
        }
    }
}

/// The Ω oracle: noisy leaders before stabilization, then a fixed correct
/// leader at every process.
#[derive(Clone, Debug)]
pub struct OmegaOracle {
    n_plus_1: usize,
    leader: ProcessId,
    stabilize_at: Time,
    seed: u64,
}

impl OmegaOracle {
    /// An Ω history for `pattern` stabilizing at `stabilize_at`.
    pub fn new(
        pattern: &FailurePattern,
        choice: LeaderChoice,
        stabilize_at: Time,
        seed: u64,
    ) -> Self {
        OmegaOracle {
            n_plus_1: pattern.n_plus_1(),
            leader: choose_leader(pattern, choice, seed),
            stabilize_at,
            seed,
        }
    }

    /// The stable (correct) leader.
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// When the history stabilizes.
    pub fn stabilize_at(&self) -> Time {
        self.stabilize_at
    }
}

impl Oracle<ProcessId> for OmegaOracle {
    fn output(&mut self, p: ProcessId, t: Time) -> ProcessId {
        if t >= self.stabilize_at {
            self.leader
        } else {
            noise_pid(self.seed, p, t, self.n_plus_1)
        }
    }

    fn describe(&self) -> String {
        format!("Omega(leader={}, at={})", self.leader, self.stabilize_at)
    }
}

/// Policies for the stable set of an Ω_k history.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OmegaKChoice {
    /// The smallest correct process plus the `k − 1` smallest other
    /// processes (favouring faulty ones, the adversarially interesting
    /// shape: the set is mostly dead weight).
    #[default]
    OneCorrectRestFaulty,
    /// The `k` smallest correct processes (padded with faulty ones if fewer
    /// than `k` are correct).
    MostlyCorrect,
    /// A fixed set, validated: size `k`, at least one correct member.
    Fixed(ProcessSet),
    /// A seeded random legal set.
    RandomLegal,
}

fn choose_omega_k_set(
    pattern: &FailurePattern,
    k: usize,
    choice: OmegaKChoice,
    seed: u64,
) -> ProcessSet {
    let correct = pattern.correct();
    let faulty = pattern.faulty();
    let pad = |mut s: ProcessSet, pool: ProcessSet| {
        for p in pool {
            if s.len() >= k {
                break;
            }
            s.insert(p);
        }
        s
    };
    let set = match choice {
        OmegaKChoice::OneCorrectRestFaulty => {
            let lead = ProcessSet::singleton(correct.min().expect("some correct"));
            pad(pad(lead, faulty), correct)
        }
        OmegaKChoice::MostlyCorrect => pad(pad(ProcessSet::new(), correct), faulty),
        OmegaKChoice::Fixed(s) => s,
        OmegaKChoice::RandomLegal => {
            let mut rng = crate::noise::noise_rng(seed, ProcessId(0), Time(u64::MAX - 2));
            let mut s = ProcessSet::singleton(
                correct
                    .iter()
                    .nth(rng.gen_range(0..correct.len()))
                    .expect("in range"),
            );
            while s.len() < k {
                s.insert(ProcessId(rng.gen_range(0..pattern.n_plus_1())));
            }
            s
        }
    };
    assert_eq!(
        set.len(),
        k,
        "Ω_{k} outputs sets of size exactly {k}, got {set}"
    );
    assert!(
        !set.intersection(correct).is_empty(),
        "Ω_{k} stable set must contain a correct process"
    );
    set
}

/// The Ω_k oracle (`k = n` gives the paper's Ω_n, `k = f` its Ω_f).
#[derive(Clone, Debug)]
pub struct OmegaKOracle {
    n_plus_1: usize,
    k: usize,
    stable: ProcessSet,
    stabilize_at: Time,
    seed: u64,
}

impl OmegaKOracle {
    /// An Ω_k history for `pattern` stabilizing at `stabilize_at`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ n + 1` and the chosen set is legal.
    pub fn new(
        pattern: &FailurePattern,
        k: usize,
        choice: OmegaKChoice,
        stabilize_at: Time,
        seed: u64,
    ) -> Self {
        assert!((1..=pattern.n_plus_1()).contains(&k));
        OmegaKOracle {
            n_plus_1: pattern.n_plus_1(),
            k,
            stable: choose_omega_k_set(pattern, k, choice, seed),
            stabilize_at,
            seed,
        }
    }

    /// The stable set (size `k`, at least one correct member).
    pub fn stable_set(&self) -> ProcessSet {
        self.stable
    }

    /// The set size parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// When the history stabilizes.
    pub fn stabilize_at(&self) -> Time {
        self.stabilize_at
    }
}

impl Oracle<ProcessSet> for OmegaKOracle {
    fn output(&mut self, p: ProcessId, t: Time) -> ProcessSet {
        if t >= self.stabilize_at {
            self.stable
        } else {
            noise_set_of_size(self.seed, p, t, self.n_plus_1, self.k)
        }
    }

    fn describe(&self) -> String {
        format!(
            "Omega_{}(stable={}, at={})",
            self.k, self.stable, self.stabilize_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_crash(n_plus_1: usize) -> FailurePattern {
        FailurePattern::builder(n_plus_1)
            .crash(ProcessId(0), Time(7))
            .build()
    }

    #[test]
    fn omega_stable_leader_is_correct() {
        let p = one_crash(3);
        for choice in [
            LeaderChoice::MinCorrect,
            LeaderChoice::MaxCorrect,
            LeaderChoice::RandomCorrect,
        ] {
            let o = OmegaOracle::new(&p, choice, Time(20), 3);
            assert!(p.is_correct(o.leader()), "{choice:?}");
        }
        assert_eq!(
            OmegaOracle::new(&p, LeaderChoice::MinCorrect, Time(0), 0).leader(),
            ProcessId(1)
        );
        assert_eq!(
            OmegaOracle::new(&p, LeaderChoice::MaxCorrect, Time(0), 0).leader(),
            ProcessId(2)
        );
    }

    #[test]
    #[should_panic(expected = "faulty")]
    fn omega_fixed_leader_must_be_correct() {
        let p = one_crash(3);
        let _ = OmegaOracle::new(&p, LeaderChoice::Fixed(ProcessId(0)), Time(0), 0);
    }

    #[test]
    fn omega_output_stabilizes() {
        let p = one_crash(3);
        let mut o = OmegaOracle::new(&p, LeaderChoice::MinCorrect, Time(30), 5);
        for t in 30..100u64 {
            for i in 0..3 {
                assert_eq!(o.output(ProcessId(i), Time(t)), ProcessId(1));
            }
        }
        let noisy: std::collections::BTreeSet<ProcessId> = (0..30u64)
            .map(|t| o.output(ProcessId(0), Time(t)))
            .collect();
        assert!(noisy.len() > 1, "leaders before stabilization vary");
    }

    #[test]
    fn omega_k_stable_set_shape() {
        let p = one_crash(4); // faulty {p1}, correct {p2,p3,p4}
        let o = OmegaKOracle::new(&p, 2, OmegaKChoice::OneCorrectRestFaulty, Time(10), 1);
        assert_eq!(o.stable_set().len(), 2);
        assert!(o.stable_set().contains(ProcessId(1)), "one correct member");
        assert!(
            o.stable_set().contains(ProcessId(0)),
            "padded with the faulty process"
        );
        let o2 = OmegaKOracle::new(&p, 3, OmegaKChoice::MostlyCorrect, Time(10), 1);
        assert_eq!(o2.stable_set(), p.correct());
        assert_eq!(o2.k(), 3);
    }

    #[test]
    fn omega_k_noise_has_exact_size() {
        let p = one_crash(5);
        let mut o = OmegaKOracle::new(&p, 3, OmegaKChoice::default(), Time(1000), 9);
        for t in 0..100u64 {
            assert_eq!(o.output(ProcessId(2), Time(t)).len(), 3);
        }
    }

    #[test]
    fn omega_k_random_legal_is_legal() {
        for seed in 0..20u64 {
            let p = one_crash(5);
            let o = OmegaKOracle::new(&p, 3, OmegaKChoice::RandomLegal, Time(0), seed);
            assert_eq!(o.stable_set().len(), 3);
            assert!(!o.stable_set().intersection(p.correct()).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "size exactly")]
    fn omega_k_fixed_wrong_size_rejected() {
        let p = one_crash(4);
        let _ = OmegaKOracle::new(
            &p,
            2,
            OmegaKChoice::Fixed(ProcessSet::singleton(ProcessId(1))),
            Time(0),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "correct process")]
    fn omega_k_fixed_all_faulty_rejected() {
        let p = FailurePattern::builder(4)
            .crash(ProcessId(0), Time(0))
            .crash(ProcessId(1), Time(0))
            .build();
        let _ = OmegaKOracle::new(
            &p,
            2,
            OmegaKChoice::Fixed(ProcessSet::from_iter([ProcessId(0), ProcessId(1)])),
            Time(0),
            0,
        );
    }

    #[test]
    fn describes() {
        let p = one_crash(3);
        assert!(OmegaOracle::new(&p, LeaderChoice::default(), Time(2), 0)
            .describe()
            .starts_with("Omega(leader="));
        assert!(
            OmegaKOracle::new(&p, 2, OmegaKChoice::default(), Time(2), 0)
                .describe()
                .starts_with("Omega_2(stable=")
        );
    }
}
