//! Deterministic noise for pre-stabilization failure-detector output.
//!
//! Υ "might provide random information for an arbitrarily long period of
//! time" (§1). Oracles model this with *stateless* pseudo-random noise: the
//! value at `(p, t)` is a pure function of `(seed, p, t)`, so histories stay
//! schedule-independent as §3.2 requires, no matter in which order the
//! simulator samples them.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use upsilon_sim::{ProcessId, ProcessSet, Time};

/// SplitMix64 finalizer: decorrelates the packed `(seed, p, t)` triple.
fn mix(seed: u64, p: ProcessId, t: Time) -> u64 {
    let mut z = seed
        ^ (p.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ t.value().wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG for the noise at `(p, t)`.
pub fn noise_rng(seed: u64, p: ProcessId, t: Time) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(mix(seed, p, t))
}

/// A pseudo-random non-empty process set — legal noise for Υ
/// (range `2^Π − {∅}`).
pub fn noise_nonempty_set(seed: u64, p: ProcessId, t: Time, n_plus_1: usize) -> ProcessSet {
    let mut rng = noise_rng(seed, p, t);
    loop {
        let bits: u64 = rng.gen();
        let s = ProcessSet::from_bits(bits).intersection(ProcessSet::all(n_plus_1));
        if !s.is_empty() {
            return s;
        }
    }
}

/// A pseudo-random process set of size exactly `k` — legal noise for Ω_k.
pub fn noise_set_of_size(
    seed: u64,
    p: ProcessId,
    t: Time,
    n_plus_1: usize,
    k: usize,
) -> ProcessSet {
    assert!(k >= 1 && k <= n_plus_1);
    let mut rng = noise_rng(seed, p, t);
    let mut s = ProcessSet::new();
    while s.len() < k {
        s.insert(ProcessId(rng.gen_range(0..n_plus_1)));
    }
    s
}

/// A pseudo-random process set of size at least `m` — legal noise for Υ^f
/// (range `{U ⊆ Π : |U| ≥ n + 1 − f}`).
pub fn noise_set_at_least(
    seed: u64,
    p: ProcessId,
    t: Time,
    n_plus_1: usize,
    m: usize,
) -> ProcessSet {
    assert!(m >= 1 && m <= n_plus_1);
    let mut rng = noise_rng(seed, p, t);
    let size = rng.gen_range(m..=n_plus_1);
    let mut s = ProcessSet::new();
    while s.len() < size {
        s.insert(ProcessId(rng.gen_range(0..n_plus_1)));
    }
    s
}

/// A pseudo-random process identifier — legal noise for Ω and anti-Ω.
pub fn noise_pid(seed: u64, p: ProcessId, t: Time, n_plus_1: usize) -> ProcessId {
    let mut rng = noise_rng(seed, p, t);
    ProcessId(rng.gen_range(0..n_plus_1))
}

/// A pseudo-random (possibly empty) subset — legal noise for ◇P.
pub fn noise_any_set(seed: u64, p: ProcessId, t: Time, n_plus_1: usize) -> ProcessSet {
    let mut rng = noise_rng(seed, p, t);
    let bits: u64 = rng.gen();
    ProcessSet::from_bits(bits).intersection(ProcessSet::all(n_plus_1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_a_pure_function_of_seed_pid_time() {
        let a = noise_nonempty_set(1, ProcessId(2), Time(30), 5);
        let b = noise_nonempty_set(1, ProcessId(2), Time(30), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_varies_with_inputs() {
        let base = noise_nonempty_set(1, ProcessId(0), Time(0), 6);
        let differing = (1..50u64)
            .map(|t| noise_nonempty_set(1, ProcessId(0), Time(t), 6))
            .filter(|s| *s != base)
            .count();
        assert!(differing > 10, "noise should change over time");
    }

    #[test]
    fn nonempty_noise_is_nonempty_and_in_universe() {
        for t in 0..100u64 {
            let s = noise_nonempty_set(7, ProcessId(1), Time(t), 3);
            assert!(!s.is_empty());
            assert!(s.is_subset(ProcessSet::all(3)));
        }
    }

    #[test]
    fn sized_noise_has_exact_size() {
        for t in 0..50u64 {
            let s = noise_set_of_size(7, ProcessId(0), Time(t), 5, 3);
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn at_least_noise_respects_lower_bound() {
        for t in 0..50u64 {
            let s = noise_set_at_least(9, ProcessId(0), Time(t), 5, 4);
            assert!(s.len() >= 4);
        }
    }

    #[test]
    fn pid_noise_is_in_range() {
        for t in 0..50u64 {
            assert!(noise_pid(3, ProcessId(0), Time(t), 4).index() < 4);
        }
    }

    #[test]
    fn any_set_noise_within_universe() {
        for t in 0..50u64 {
            assert!(noise_any_set(3, ProcessId(1), Time(t), 4).is_subset(ProcessSet::all(4)));
        }
    }
}
