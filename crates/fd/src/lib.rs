//! # upsilon-fd
//!
//! Failure detectors for the reproduction of *"On the weakest failure
//! detector ever"*: the paper's Υ and Υ^f oracles, the surrounding
//! hierarchy (Ω, Ω_k, P, ◇P, anti-Ω), specification checkers that validate
//! observed histories against each detector's definition, and the paper's
//! direct value-level reductions (§4).
//!
//! Oracles implement [`upsilon_sim::Oracle`]: deterministic,
//! schedule-independent histories `H(p, t)` with seeded noise before a
//! configurable stabilization time. Checkers consume the samples recorded in
//! a [`upsilon_sim::Run`] (or the emulated outputs of a reduction algorithm)
//! and accept or reject with a precise [`SpecViolation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anti_omega;
pub mod locally_stable;
pub mod noise;
pub mod omega;
pub mod perfect;
pub mod recorded;
pub mod reductions;
pub mod spec;
pub mod upsilon;

pub use anti_omega::{check_anti_omega, AntiOmegaOracle};
pub use locally_stable::{check_locally_stable, LocallyStableUpsilonOracle};
pub use omega::{LeaderChoice, OmegaKChoice, OmegaKOracle, OmegaOracle};
pub use perfect::{EventuallyPerfectOracle, PerfectOracle};
pub use recorded::{table_from_log, HistoryRecorder, TableOracle};
pub use reductions::{
    omega_from_upsilon_two_proc, omega_k_to_upsilon_f, omega_to_upsilon, upsilon_f_from_omega_k,
    upsilon_from_omega, upsilon_to_omega_two_proc,
};
pub use spec::{
    check_eventually_perfect, check_eventually_stable, check_omega, check_omega_k, check_upsilon,
    check_upsilon_f, held_variable_samples, SpecViolation, StabilityReport,
};
pub use upsilon::{
    all_legal_stable_sets, upsilon_stable_legal, UpsilonChoice, UpsilonNoise, UpsilonOracle,
};
