//! The perfect (`P`) and eventually perfect (`◇P`) failure detectors of
//! Chandra–Toueg \[4\] — classic *stable* detectors used here as inputs to the
//! Fig. 3 extraction (E3): both can be used to solve f-resilient impossible
//! problems, so Theorem 10 says Υ^f must be extractable from them.

use crate::noise::noise_any_set;
use upsilon_sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

/// The perfect failure detector `P`: outputs the set of processes crashed by
/// the query time.
///
/// Strong accuracy (no process is suspected before it crashes) and strong
/// completeness (eventually every faulty process is permanently suspected)
/// hold by construction; `P` is stable — once every faulty process has
/// crashed the output is `faulty(F)` forever.
#[derive(Clone, Debug)]
pub struct PerfectOracle {
    pattern: FailurePattern,
}

impl PerfectOracle {
    /// A `P` history for `pattern`.
    pub fn new(pattern: &FailurePattern) -> Self {
        PerfectOracle {
            pattern: pattern.clone(),
        }
    }

    /// The stable value the history converges to (`faulty(F)`).
    pub fn stable_set(&self) -> ProcessSet {
        self.pattern.faulty()
    }

    /// When the history stabilizes (once every faulty process has crashed).
    pub fn stabilize_at(&self) -> Time {
        self.pattern.settled_at()
    }
}

impl Oracle<ProcessSet> for PerfectOracle {
    fn output(&mut self, _p: ProcessId, t: Time) -> ProcessSet {
        self.pattern.crashed_by(t)
    }

    fn describe(&self) -> String {
        format!("P(faulty={})", self.pattern.faulty())
    }
}

/// The eventually perfect failure detector `◇P`: arbitrary suspicions for a
/// finite period, then exactly `faulty(F)` forever at every process.
#[derive(Clone, Debug)]
pub struct EventuallyPerfectOracle {
    n_plus_1: usize,
    faulty: ProcessSet,
    stabilize_at: Time,
    seed: u64,
}

impl EventuallyPerfectOracle {
    /// A `◇P` history for `pattern` stabilizing at `stabilize_at`.
    pub fn new(pattern: &FailurePattern, stabilize_at: Time, seed: u64) -> Self {
        EventuallyPerfectOracle {
            n_plus_1: pattern.n_plus_1(),
            faulty: pattern.faulty(),
            stabilize_at,
            seed,
        }
    }

    /// The stable value the history converges to (`faulty(F)`).
    pub fn stable_set(&self) -> ProcessSet {
        self.faulty
    }

    /// When the history stabilizes.
    pub fn stabilize_at(&self) -> Time {
        self.stabilize_at
    }
}

impl Oracle<ProcessSet> for EventuallyPerfectOracle {
    fn output(&mut self, p: ProcessId, t: Time) -> ProcessSet {
        if t >= self.stabilize_at {
            self.faulty
        } else {
            noise_any_set(self.seed, p, t, self.n_plus_1)
        }
    }

    fn describe(&self) -> String {
        format!("<>P(faulty={}, at={})", self.faulty, self.stabilize_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_crashes() -> FailurePattern {
        FailurePattern::builder(4)
            .crash(ProcessId(1), Time(5))
            .crash(ProcessId(3), Time(12))
            .build()
    }

    #[test]
    fn perfect_tracks_crashes_exactly() {
        let pat = two_crashes();
        let mut p = PerfectOracle::new(&pat);
        assert_eq!(p.output(ProcessId(0), Time(0)), ProcessSet::EMPTY);
        assert_eq!(
            p.output(ProcessId(0), Time(5)),
            ProcessSet::singleton(ProcessId(1))
        );
        assert_eq!(p.output(ProcessId(2), Time(50)), pat.faulty());
        assert_eq!(p.stable_set(), pat.faulty());
        assert_eq!(p.stabilize_at(), Time(12));
    }

    #[test]
    fn perfect_never_suspects_a_live_process() {
        let pat = two_crashes();
        let mut p = PerfectOracle::new(&pat);
        for t in 0..40u64 {
            let suspects = p.output(ProcessId(0), Time(t));
            assert!(
                suspects.is_subset(pat.crashed_by(Time(t))),
                "strong accuracy"
            );
        }
    }

    #[test]
    fn eventually_perfect_converges_to_faulty() {
        let pat = two_crashes();
        let mut o = EventuallyPerfectOracle::new(&pat, Time(30), 3);
        for t in 30..100u64 {
            for i in 0..4 {
                assert_eq!(o.output(ProcessId(i), Time(t)), pat.faulty());
            }
        }
    }

    #[test]
    fn eventually_perfect_may_lie_early() {
        let pat = two_crashes();
        let mut o = EventuallyPerfectOracle::new(&pat, Time(1000), 3);
        let lied = (0..200u64).any(|t| o.output(ProcessId(0), Time(t)).contains(ProcessId(2)));
        assert!(
            lied,
            "◇P should wrongly suspect a correct process during noise"
        );
    }

    #[test]
    fn describes() {
        let pat = two_crashes();
        assert!(PerfectOracle::new(&pat).describe().starts_with("P(faulty="));
        assert!(EventuallyPerfectOracle::new(&pat, Time(3), 0)
            .describe()
            .starts_with("<>P(faulty="));
    }
}
