//! *Locally stable* failure detectors (the paper's §6.2, footnote 2):
//! every correct process's output is eventually constant, but different
//! processes may stabilize on **different** values.
//!
//! The paper remarks that its lower-bound proofs "actually work also for
//! 'locally stable' failure detectors"; its *positive* construction
//! (Fig. 3) however genuinely needs global stability — pre-stabilized
//! disagreement keeps the extraction restarting (or, worse, lets a
//! failure-free run sit at output `Π = correct(F)`). This module provides a
//! locally-stable Υ-shaped oracle plus the matching checker, and the
//! boundary is demonstrated by a negative test in `upsilon-extract`: Fig. 3
//! run on this oracle fails the Υ spec in failure-free runs, which is
//! exactly why Theorem 10 is stated for stable detectors.

use crate::noise::noise_set_at_least;
use crate::spec::SpecViolation;
use upsilon_sim::{FailurePattern, FdValue, Oracle, ProcessId, ProcessSet, Time};

/// A Υ-shaped oracle that is only *locally* stable: after `stabilize_at`,
/// process `p_i` permanently outputs its own personal legal set — chosen so
/// that the sets of different processes disagree whenever the system has at
/// least two processes.
#[derive(Clone, Debug)]
pub struct LocallyStableUpsilonOracle {
    n_plus_1: usize,
    f: usize,
    per_process: Vec<ProcessSet>,
    stabilize_at: Time,
    seed: u64,
}

impl LocallyStableUpsilonOracle {
    /// A locally stable Υ^f history for `pattern`: process `p_i` stabilizes
    /// on `Π − {c_i}` where `c_i` cycles over the correct processes — every
    /// per-process value is a legal Υ^f stable set, but no two adjacent
    /// processes agree (when at least two processes are correct).
    pub fn new(pattern: &FailurePattern, f: usize, stabilize_at: Time, seed: u64) -> Self {
        let n_plus_1 = pattern.n_plus_1();
        assert!((1..=n_plus_1 - 1).contains(&f));
        let correct: Vec<ProcessId> = pattern.correct().iter().collect();
        let per_process = (0..n_plus_1)
            .map(|i| {
                let excluded = correct[i % correct.len()];
                ProcessSet::singleton(excluded).complement(n_plus_1)
            })
            .collect();
        LocallyStableUpsilonOracle {
            n_plus_1,
            f,
            per_process,
            stabilize_at,
            seed,
        }
    }

    /// The value process `p` stabilizes on.
    pub fn stable_at(&self, p: ProcessId) -> ProcessSet {
        self.per_process[p.index()]
    }

    /// Whether at least two processes stabilize on different values.
    pub fn is_genuinely_divergent(&self) -> bool {
        self.per_process.windows(2).any(|w| w[0] != w[1])
    }
}

impl Oracle<ProcessSet> for LocallyStableUpsilonOracle {
    fn output(&mut self, p: ProcessId, t: Time) -> ProcessSet {
        if t >= self.stabilize_at {
            self.per_process[p.index()]
        } else {
            noise_set_at_least(self.seed, p, t, self.n_plus_1, self.n_plus_1 - self.f)
        }
    }

    fn describe(&self) -> String {
        format!(
            "locally-stable-Upsilon^{}(at={})",
            self.f, self.stabilize_at
        )
    }
}

/// Checks the *locally stable* kernel: each correct process's samples end
/// in a constant value (values may differ across processes). Returns the
/// per-process final values.
///
/// The finite surrogate accepts any observation whose per-process sample
/// sequences are non-empty; "eventually constant" holds trivially of finite
/// sequences, so the report is primarily used to *exhibit* divergence.
///
/// # Errors
///
/// Returns [`SpecViolation::NoSamples`] when a correct process has no
/// samples.
pub fn check_locally_stable<D: FdValue>(
    pattern: &FailurePattern,
    samples: &[(Time, ProcessId, D)],
) -> Result<Vec<Option<D>>, SpecViolation> {
    let mut finals: Vec<Option<D>> = vec![None; pattern.n_plus_1()];
    for (_, p, v) in samples {
        finals[p.index()] = Some(v.clone());
    }
    for p in pattern.correct() {
        if finals[p.index()].is_none() {
            return Err(SpecViolation::NoSamples(p));
        }
    }
    Ok(finals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upsilon::upsilon_stable_legal;

    fn pattern() -> FailurePattern {
        FailurePattern::failure_free(3)
    }

    #[test]
    fn per_process_values_are_individually_legal_but_divergent() {
        let o = LocallyStableUpsilonOracle::new(&pattern(), 2, Time(10), 1);
        for i in 0..3 {
            let v = o.stable_at(ProcessId(i));
            assert!(upsilon_stable_legal(&pattern(), 2, v), "p{}: {v}", i + 1);
        }
        assert!(o.is_genuinely_divergent());
    }

    #[test]
    fn output_stabilizes_per_process() {
        let mut o = LocallyStableUpsilonOracle::new(&pattern(), 2, Time(20), 2);
        for t in 20..80u64 {
            for i in 0..3 {
                assert_eq!(o.output(ProcessId(i), Time(t)), o.stable_at(ProcessId(i)));
            }
        }
    }

    #[test]
    fn globally_stable_check_rejects_it() {
        use crate::spec::check_eventually_stable;
        let mut o = LocallyStableUpsilonOracle::new(&pattern(), 2, Time(10), 3);
        let mut samples = Vec::new();
        for t in 0..60u64 {
            for i in 0..3 {
                samples.push((Time(t), ProcessId(i), o.output(ProcessId(i), Time(t))));
            }
        }
        assert!(
            check_eventually_stable(&pattern(), &samples).is_err(),
            "divergent finals must fail the (global) stability kernel"
        );
        let finals = check_locally_stable(&pattern(), &samples).expect("locally stable");
        assert!(finals.iter().all(|f| f.is_some()));
    }

    #[test]
    fn checker_requires_samples() {
        let samples: Vec<(Time, ProcessId, u8)> = vec![(Time(0), ProcessId(0), 1)];
        assert!(check_locally_stable(&pattern(), &samples).is_err());
    }
}
