//! Recorded and table-driven histories.
//!
//! A [`TableOracle`] serves explicit `(p, t) → d` entries over a default —
//! the "golden history" pattern: spec-checker tests and protocol unit tests
//! can pin down the exact history a scenario needs, instead of steering a
//! seeded generator. A [`HistoryRecorder`] wraps any oracle and logs every
//! value it serves, so a run's full history can be captured and replayed
//! later through a `TableOracle`.

use std::sync::{Arc, Mutex};
use upsilon_sim::{FdValue, Oracle, ProcessId, Time};

/// An oracle defined by an explicit table of `(process, time) → value`
/// entries over a default value.
///
/// Lookup rule: the entry for `(p, t)` is the table row for `p` with the
/// largest time `≤ t` (histories are step functions of time); if none, the
/// default. This makes writing golden histories terse: one row per change
/// point.
#[derive(Clone, Debug)]
pub struct TableOracle<D> {
    default: D,
    // Per process: change points sorted by time.
    rows: Vec<Vec<(Time, D)>>,
}

impl<D: FdValue> TableOracle<D> {
    /// A table oracle for `n_plus_1` processes, initially constant
    /// `default` everywhere.
    pub fn new(n_plus_1: usize, default: D) -> Self {
        TableOracle {
            default,
            rows: vec![Vec::new(); n_plus_1],
        }
    }

    /// Sets the value served to `p` from time `t` on (until a later change
    /// point).
    pub fn set_from(mut self, p: ProcessId, t: Time, value: D) -> Self {
        let row = &mut self.rows[p.index()];
        row.push((t, value));
        row.sort_by_key(|(t, _)| *t);
        self
    }

    /// Sets the value served to *all* processes from time `t` on.
    pub fn set_all_from(mut self, t: Time, value: D) -> Self {
        for i in 0..self.rows.len() {
            self = self.set_from(ProcessId(i), t, value.clone());
        }
        self
    }
}

impl<D: FdValue> Oracle<D> for TableOracle<D> {
    fn output(&mut self, p: ProcessId, t: Time) -> D {
        self.rows[p.index()]
            .iter()
            .rev()
            .find(|(from, _)| *from <= t)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| self.default.clone())
    }

    fn describe(&self) -> String {
        "table".to_string()
    }
}

/// Wraps an oracle and records every `(p, t, d)` it serves.
///
/// The log is shared: clone the handle returned by
/// [`HistoryRecorder::log`] before moving the recorder into a
/// [`SimBuilder`](upsilon_sim::SimBuilder).
pub struct HistoryRecorder<D, O> {
    inner: O,
    log: Arc<Mutex<Vec<(Time, ProcessId, D)>>>,
}

impl<D: FdValue, O: Oracle<D>> HistoryRecorder<D, O> {
    /// Wraps `inner` with recording.
    pub fn new(inner: O) -> Self {
        HistoryRecorder {
            inner,
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The shared log handle.
    pub fn log(&self) -> Arc<Mutex<Vec<(Time, ProcessId, D)>>> {
        Arc::clone(&self.log)
    }
}

impl<D: FdValue, O: Oracle<D>> Oracle<D> for HistoryRecorder<D, O> {
    fn output(&mut self, p: ProcessId, t: Time) -> D {
        let v = self.inner.output(p, t);
        self.log
            .lock()
            .expect("history log lock")
            .push((t, p, v.clone()));
        v
    }

    fn describe(&self) -> String {
        format!("recorded({})", self.inner.describe())
    }
}

impl<D, O: std::fmt::Debug> std::fmt::Debug for HistoryRecorder<D, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryRecorder")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

/// Builds a [`TableOracle`] replaying a recorded log exactly at its sample
/// points: each recorded `(t, p, d)` becomes a change point, so re-querying
/// the same `(p, t)` pairs reproduces the same values.
pub fn table_from_log<D: FdValue>(
    n_plus_1: usize,
    default: D,
    log: &[(Time, ProcessId, D)],
) -> TableOracle<D> {
    let mut t = TableOracle::new(n_plus_1, default);
    for (time, p, v) in log {
        t = t.set_from(*p, *time, v.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upsilon::{UpsilonChoice, UpsilonOracle};
    use upsilon_sim::{FailurePattern, ProcessSet};

    #[test]
    fn table_serves_step_functions() {
        let mut o = TableOracle::new(2, 0u64)
            .set_from(ProcessId(0), Time(10), 5)
            .set_from(ProcessId(0), Time(20), 9);
        assert_eq!(o.output(ProcessId(0), Time(0)), 0);
        assert_eq!(o.output(ProcessId(0), Time(10)), 5);
        assert_eq!(o.output(ProcessId(0), Time(19)), 5);
        assert_eq!(o.output(ProcessId(0), Time(25)), 9);
        assert_eq!(
            o.output(ProcessId(1), Time(25)),
            0,
            "other process untouched"
        );
    }

    #[test]
    fn set_all_from_affects_everyone() {
        let mut o = TableOracle::new(3, 1u8).set_all_from(Time(5), 2);
        for i in 0..3 {
            assert_eq!(o.output(ProcessId(i), Time(4)), 1);
            assert_eq!(o.output(ProcessId(i), Time(5)), 2);
        }
    }

    #[test]
    fn golden_history_for_upsilon_checker() {
        // A hand-written Υ history: noise {p1} at p1 / {p2} at p2 until
        // t = 8, then the common stable set {p1}.
        use crate::spec::check_upsilon;
        let pattern = FailurePattern::failure_free(2);
        let stable = ProcessSet::singleton(ProcessId(0));
        let mut o =
            TableOracle::new(2, ProcessSet::singleton(ProcessId(1))).set_all_from(Time(8), stable);
        let mut samples = Vec::new();
        for t in 0..40u64 {
            for i in 0..2 {
                samples.push((Time(t), ProcessId(i), o.output(ProcessId(i), Time(t))));
            }
        }
        let report = check_upsilon(&pattern, &samples, 5).expect("golden history is legal");
        assert_eq!(report.value, stable);
        assert_eq!(report.stable_from, Time(8));
    }

    #[test]
    fn recorder_captures_and_replays() {
        let pattern = FailurePattern::failure_free(2);
        let inner = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(6), 3);
        let mut recorder = HistoryRecorder::new(inner);
        let log_handle = recorder.log();
        let mut originals = Vec::new();
        for t in 0..20u64 {
            originals.push(recorder.output(ProcessId((t % 2) as usize), Time(t)));
        }
        let log = log_handle.lock().unwrap().clone();
        assert_eq!(log.len(), 20);

        // Replay through a table oracle: identical values at the same
        // sample points.
        let mut replay = table_from_log(2, ProcessSet::all(2), &log);
        for (i, t) in (0..20u64).enumerate() {
            let p = ProcessId((t % 2) as usize);
            assert_eq!(replay.output(p, Time(t)), originals[i], "at {t}");
        }
    }
}
