//! Failure-detector specification checkers.
//!
//! A checker consumes a finite observation of a history — samples
//! `(t, p, H(p, t))`, either from an oracle's query steps or from the
//! emulated `D-output` variables of a reduction algorithm (§3.5) — together
//! with the run's failure pattern, and decides whether the observation is
//! consistent with a detector's specification.
//!
//! Eventual properties ("eventually the same value is permanently output at
//! all correct processes") are checked on finite prefixes as follows: every
//! correct process must have at least one sample; each correct process's
//! samples must *end* in a common value `U`; the report records when the
//! common suffix starts and how many post-stabilization samples support it,
//! so callers can demand arbitrarily strong evidence.

use std::fmt;
use upsilon_sim::{FailurePattern, FdValue, ProcessId, ProcessSet, Time};

/// Why an observation violates a specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecViolation {
    /// A correct process produced no samples at all.
    NoSamples(ProcessId),
    /// A value outside the detector's range was observed.
    RangeViolation(String),
    /// Correct processes do not converge to a common final value.
    NotStable(String),
    /// The stable value itself is illegal for the failure pattern.
    IllegalStableValue(String),
    /// Not enough post-stabilization evidence was gathered.
    InsufficientEvidence(String),
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::NoSamples(p) => write!(f, "correct process {p} has no samples"),
            SpecViolation::RangeViolation(s) => write!(f, "range violation: {s}"),
            SpecViolation::NotStable(s) => write!(f, "output does not stabilize: {s}"),
            SpecViolation::IllegalStableValue(s) => write!(f, "illegal stable value: {s}"),
            SpecViolation::InsufficientEvidence(s) => write!(f, "insufficient evidence: {s}"),
        }
    }
}

impl std::error::Error for SpecViolation {}

/// Evidence that an eventual property held in a finite observation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StabilityReport<D> {
    /// The common stable value.
    pub value: D,
    /// The earliest time from which every correct-process sample equals
    /// `value`.
    pub stable_from: Time,
    /// The smallest number of at-or-after-`stable_from` samples over the
    /// correct processes — the strength of the evidence.
    pub tail_samples_min: usize,
}

/// Converts *publish-on-change* outputs of a reduction algorithm into
/// held-variable samples: the emulated `D-output` variable of §3.5 keeps
/// its value between publications, so each process's last published value
/// is extended with a synthetic sample at `horizon` (the end of the
/// observed run). Checkers can then treat the outputs like ordinary
/// query-step samples.
pub fn held_variable_samples<D: FdValue>(
    n_plus_1: usize,
    outputs: &[(Time, ProcessId, D)],
    horizon: Time,
) -> Vec<(Time, ProcessId, D)> {
    let mut extended = outputs.to_vec();
    let mut last: Vec<Option<D>> = vec![None; n_plus_1];
    for (_, p, v) in outputs {
        last[p.index()] = Some(v.clone());
    }
    for (i, v) in last.into_iter().enumerate() {
        if let Some(v) = v {
            extended.push((horizon, ProcessId(i), v));
        }
    }
    extended
}

/// Checks the *stable* kernel shared by Υ, Υ^f, Ω, Ω_k, ◇P, …: eventually
/// the same value is permanently output at every correct process (§6.2).
///
/// # Errors
///
/// Returns a [`SpecViolation`] when a correct process has no samples or the
/// correct processes' final values disagree.
pub fn check_eventually_stable<D: FdValue>(
    pattern: &FailurePattern,
    samples: &[(Time, ProcessId, D)],
) -> Result<StabilityReport<D>, SpecViolation> {
    let correct = pattern.correct();
    let mut final_value: Option<D> = None;
    for p in correct {
        let last = samples
            .iter()
            .filter(|(_, q, _)| *q == p)
            .map(|(_, _, v)| v)
            .next_back()
            .ok_or(SpecViolation::NoSamples(p))?;
        match &final_value {
            None => final_value = Some(last.clone()),
            Some(v) if v == last => {}
            Some(v) => {
                return Err(SpecViolation::NotStable(format!(
                    "final values disagree across correct processes: {v:?} vs {last:?} at {p}"
                )))
            }
        }
    }
    let value = final_value.expect("at least one correct process exists");

    // stable_from = just after the last sample at a correct process that
    // differs from the common final value.
    let stable_from = samples
        .iter()
        .filter(|(_, q, v)| correct.contains(*q) && *v != value)
        .map(|(t, _, _)| t.next())
        .max()
        .unwrap_or(Time::ZERO);

    let tail_samples_min = correct
        .iter()
        .map(|p| {
            samples
                .iter()
                .filter(|(t, q, _)| *q == p && *t >= stable_from)
                .count()
        })
        .min()
        .unwrap_or(0);

    Ok(StabilityReport {
        value,
        stable_from,
        tail_samples_min,
    })
}

/// Checks an observation against the Υ^f specification (§5.3; Υ is
/// `f = n`): range `{U : |U| ≥ n + 1 − f, U ≠ ∅}`, eventual common stable
/// value `U`, and `U ≠ correct(F)`.
///
/// `min_evidence` post-stabilization samples are required per correct
/// process.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_upsilon_f(
    pattern: &FailurePattern,
    f: usize,
    samples: &[(Time, ProcessId, ProcessSet)],
    min_evidence: usize,
) -> Result<StabilityReport<ProcessSet>, SpecViolation> {
    let n_plus_1 = pattern.n_plus_1();
    let min_size = n_plus_1 - f;
    for (t, p, v) in samples {
        if v.is_empty() || v.len() < min_size || !v.is_subset(ProcessSet::all(n_plus_1)) {
            return Err(SpecViolation::RangeViolation(format!(
                "{p} observed {v} at {t}, outside R_Upsilon^{f} (size ≥ {min_size})"
            )));
        }
    }
    let report = check_eventually_stable(pattern, samples)?;
    if report.value == pattern.correct() {
        return Err(SpecViolation::IllegalStableValue(format!(
            "stable set {} equals correct(F)",
            report.value
        )));
    }
    if report.tail_samples_min < min_evidence {
        return Err(SpecViolation::InsufficientEvidence(format!(
            "only {} post-stabilization samples at some correct process (need {min_evidence})",
            report.tail_samples_min
        )));
    }
    Ok(report)
}

/// Checks an observation against the wait-free Υ specification (§4).
///
/// ```
/// use upsilon_fd::{check_upsilon, UpsilonChoice, UpsilonOracle};
/// use upsilon_sim::{FailurePattern, Oracle, ProcessId, Time};
///
/// let pattern = FailurePattern::failure_free(2);
/// let mut oracle = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(5), 1);
/// let mut samples = Vec::new();
/// for t in 0..30 {
///     for i in 0..2 {
///         samples.push((Time(t), ProcessId(i), oracle.output(ProcessId(i), Time(t))));
///     }
/// }
/// let report = check_upsilon(&pattern, &samples, 3).unwrap();
/// assert_ne!(report.value, pattern.correct());
/// ```
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_upsilon(
    pattern: &FailurePattern,
    samples: &[(Time, ProcessId, ProcessSet)],
    min_evidence: usize,
) -> Result<StabilityReport<ProcessSet>, SpecViolation> {
    check_upsilon_f(pattern, pattern.n(), samples, min_evidence)
}

/// Checks an observation against the Ω specification \[3\]: eventually the
/// same *correct* leader is output at all correct processes.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_omega(
    pattern: &FailurePattern,
    samples: &[(Time, ProcessId, ProcessId)],
    min_evidence: usize,
) -> Result<StabilityReport<ProcessId>, SpecViolation> {
    for (t, p, v) in samples {
        if v.index() >= pattern.n_plus_1() {
            return Err(SpecViolation::RangeViolation(format!(
                "{p} observed out-of-range leader {v} at {t}"
            )));
        }
    }
    let report = check_eventually_stable(pattern, samples)?;
    if !pattern.is_correct(report.value) {
        return Err(SpecViolation::IllegalStableValue(format!(
            "stable leader {} is faulty",
            report.value
        )));
    }
    if report.tail_samples_min < min_evidence {
        return Err(SpecViolation::InsufficientEvidence(format!(
            "only {} post-stabilization samples (need {min_evidence})",
            report.tail_samples_min
        )));
    }
    Ok(report)
}

/// Checks an observation against the Ω_k specification \[18\]: sets of size
/// exactly `k`; eventually the same set, containing at least one correct
/// process, at all correct processes.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_omega_k(
    pattern: &FailurePattern,
    k: usize,
    samples: &[(Time, ProcessId, ProcessSet)],
    min_evidence: usize,
) -> Result<StabilityReport<ProcessSet>, SpecViolation> {
    for (t, p, v) in samples {
        if v.len() != k || !v.is_subset(ProcessSet::all(pattern.n_plus_1())) {
            return Err(SpecViolation::RangeViolation(format!(
                "{p} observed {v} at {t}, outside R_Omega_{k}"
            )));
        }
    }
    let report = check_eventually_stable(pattern, samples)?;
    if report.value.intersection(pattern.correct()).is_empty() {
        return Err(SpecViolation::IllegalStableValue(format!(
            "stable set {} contains no correct process",
            report.value
        )));
    }
    if report.tail_samples_min < min_evidence {
        return Err(SpecViolation::InsufficientEvidence(format!(
            "only {} post-stabilization samples (need {min_evidence})",
            report.tail_samples_min
        )));
    }
    Ok(report)
}

/// Checks an observation against the ◇P specification \[4\]: eventually the
/// output is permanently exactly `faulty(F)` at every correct process.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] found.
pub fn check_eventually_perfect(
    pattern: &FailurePattern,
    samples: &[(Time, ProcessId, ProcessSet)],
    min_evidence: usize,
) -> Result<StabilityReport<ProcessSet>, SpecViolation> {
    let report = check_eventually_stable(pattern, samples)?;
    if report.value != pattern.faulty() {
        return Err(SpecViolation::IllegalStableValue(format!(
            "stable suspicion set {} differs from faulty(F) = {}",
            report.value,
            pattern.faulty()
        )));
    }
    if report.tail_samples_min < min_evidence {
        return Err(SpecViolation::InsufficientEvidence(format!(
            "only {} post-stabilization samples (need {min_evidence})",
            report.tail_samples_min
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omega::{LeaderChoice, OmegaKChoice, OmegaKOracle, OmegaOracle};
    use crate::perfect::EventuallyPerfectOracle;
    use crate::upsilon::{UpsilonChoice, UpsilonOracle};
    use upsilon_sim::Oracle;

    fn one_crash(n_plus_1: usize) -> FailurePattern {
        FailurePattern::builder(n_plus_1)
            .crash(ProcessId(0), Time(6))
            .build()
    }

    /// Samples an oracle densely at every (alive process, time) pair.
    fn sample_oracle<D: FdValue>(
        pattern: &FailurePattern,
        oracle: &mut dyn Oracle<D>,
        horizon: u64,
    ) -> Vec<(Time, ProcessId, D)> {
        let mut out = Vec::new();
        for t in 0..horizon {
            for i in 0..pattern.n_plus_1() {
                let p = ProcessId(i);
                if !pattern.is_crashed_at(p, Time(t)) {
                    out.push((Time(t), p, oracle.output(p, Time(t))));
                }
            }
        }
        out
    }

    #[test]
    fn upsilon_oracle_satisfies_its_spec() {
        for choice in [
            UpsilonChoice::ComplementOfCorrect,
            UpsilonChoice::All,
            UpsilonChoice::FaultyPadded,
            UpsilonChoice::RandomLegal,
        ] {
            let pat = one_crash(4);
            let mut o = UpsilonOracle::wait_free(&pat, choice, Time(60), 5);
            let samples = sample_oracle(&pat, &mut o, 200);
            let report =
                check_upsilon(&pat, &samples, 10).unwrap_or_else(|e| panic!("{choice:?}: {e}"));
            assert_eq!(report.value, o.stable_set());
            assert!(report.stable_from <= Time(60));
        }
    }

    #[test]
    fn upsilon_f_oracle_satisfies_its_spec() {
        let pat = one_crash(5);
        for f in 1..=4usize {
            let mut o = UpsilonOracle::new(&pat, f, UpsilonChoice::default(), Time(40), 9);
            let samples = sample_oracle(&pat, &mut o, 150);
            check_upsilon_f(&pat, f, &samples, 10).unwrap_or_else(|e| panic!("f={f}: {e}"));
        }
    }

    #[test]
    fn upsilon_checker_rejects_correct_set_as_stable_value() {
        let pat = one_crash(3);
        // A fake history that stabilizes on exactly the correct set.
        let bad = pat.correct();
        let samples: Vec<_> = (0..50u64)
            .flat_map(|t| (1..3usize).map(move |i| (Time(t), ProcessId(i), bad)))
            .collect();
        let err = check_upsilon(&pat, &samples, 1).unwrap_err();
        assert!(matches!(err, SpecViolation::IllegalStableValue(_)), "{err}");
    }

    #[test]
    fn upsilon_checker_rejects_empty_set_in_range() {
        let pat = one_crash(3);
        let samples = vec![(Time(0), ProcessId(1), ProcessSet::EMPTY)];
        let err = check_upsilon(&pat, &samples, 0).unwrap_err();
        assert!(matches!(err, SpecViolation::RangeViolation(_)), "{err}");
    }

    #[test]
    fn upsilon_checker_rejects_diverging_processes() {
        let pat = FailurePattern::failure_free(3);
        let mut samples = Vec::new();
        for t in 0..50u64 {
            samples.push((Time(t), ProcessId(0), ProcessSet::singleton(ProcessId(0))));
            samples.push((Time(t), ProcessId(1), ProcessSet::singleton(ProcessId(1))));
            samples.push((Time(t), ProcessId(2), ProcessSet::singleton(ProcessId(0))));
        }
        let err = check_upsilon(&pat, &samples, 1).unwrap_err();
        assert!(matches!(err, SpecViolation::NotStable(_)), "{err}");
    }

    #[test]
    fn upsilon_checker_requires_samples_from_every_correct_process() {
        let pat = FailurePattern::failure_free(3);
        let samples = vec![
            (Time(0), ProcessId(0), ProcessSet::singleton(ProcessId(2))),
            (Time(1), ProcessId(1), ProcessSet::singleton(ProcessId(2))),
        ];
        let err = check_upsilon(&pat, &samples, 0).unwrap_err();
        assert_eq!(err, SpecViolation::NoSamples(ProcessId(2)));
    }

    #[test]
    fn evidence_threshold_is_enforced() {
        let pat = one_crash(3);
        let mut o = UpsilonOracle::wait_free(&pat, UpsilonChoice::default(), Time(90), 5);
        let samples = sample_oracle(&pat, &mut o, 100);
        let err = check_upsilon(&pat, &samples, 1000).unwrap_err();
        assert!(
            matches!(err, SpecViolation::InsufficientEvidence(_)),
            "{err}"
        );
    }

    #[test]
    fn omega_oracle_satisfies_its_spec() {
        let pat = one_crash(4);
        let mut o = OmegaOracle::new(&pat, LeaderChoice::MinCorrect, Time(30), 3);
        let samples = sample_oracle(&pat, &mut o, 120);
        let report = check_omega(&pat, &samples, 10).expect("valid Ω history");
        assert_eq!(report.value, ProcessId(1));
    }

    #[test]
    fn omega_checker_rejects_faulty_stable_leader() {
        let pat = one_crash(3);
        let samples: Vec<_> = (10..60u64)
            .flat_map(|t| (1..3usize).map(move |i| (Time(t), ProcessId(i), ProcessId(0))))
            .collect();
        let err = check_omega(&pat, &samples, 1).unwrap_err();
        assert!(matches!(err, SpecViolation::IllegalStableValue(_)), "{err}");
    }

    #[test]
    fn omega_k_oracle_satisfies_its_spec() {
        let pat = one_crash(5);
        for k in 1..=4usize {
            let mut o = OmegaKOracle::new(&pat, k, OmegaKChoice::default(), Time(25), 7);
            let samples = sample_oracle(&pat, &mut o, 100);
            check_omega_k(&pat, k, &samples, 10).unwrap_or_else(|e| panic!("k={k}: {e}"));
        }
    }

    #[test]
    fn omega_k_checker_rejects_wrong_size() {
        let pat = one_crash(4);
        let samples = vec![(Time(0), ProcessId(1), ProcessSet::all(4))];
        let err = check_omega_k(&pat, 2, &samples, 0).unwrap_err();
        assert!(matches!(err, SpecViolation::RangeViolation(_)), "{err}");
    }

    #[test]
    fn eventually_perfect_oracle_satisfies_its_spec() {
        let pat = one_crash(4);
        let mut o = EventuallyPerfectOracle::new(&pat, Time(40), 3);
        let samples = sample_oracle(&pat, &mut o, 150);
        let report = check_eventually_perfect(&pat, &samples, 10).expect("valid ◇P history");
        assert_eq!(report.value, pat.faulty());
    }

    #[test]
    fn stability_report_locates_the_change_point() {
        let pat = FailurePattern::failure_free(2);
        let u = ProcessSet::singleton(ProcessId(0));
        let noise = ProcessSet::all(2);
        let mut samples = Vec::new();
        for t in 0..10u64 {
            samples.push((Time(t), ProcessId(0), noise));
            samples.push((Time(t), ProcessId(1), noise));
        }
        for t in 10..30u64 {
            samples.push((Time(t), ProcessId(0), u));
            samples.push((Time(t), ProcessId(1), u));
        }
        let report = check_eventually_stable(&pat, &samples).expect("stable");
        assert_eq!(report.value, u);
        assert_eq!(report.stable_from, Time(10));
        assert_eq!(report.tail_samples_min, 20);
    }

    #[test]
    fn violations_display_readably() {
        let v = SpecViolation::NoSamples(ProcessId(2));
        assert!(v.to_string().contains("p3"));
        let v = SpecViolation::RangeViolation("x".into());
        assert!(v.to_string().contains("range"));
    }
}
