//! The failure detectors Υ and Υ^f (§4 and §5.3) — the paper's primary
//! contribution.
//!
//! Υ outputs a non-empty set of processes such that eventually (1) the same
//! set `U` is permanently output at all correct processes and (2)
//! `U ≠ correct(F)`. Υ^f additionally requires `|U| ≥ n + 1 − f` and is
//! exactly Υ when `f = n`.
//!
//! The oracle here realizes one history per run: arbitrary (deterministic,
//! seeded) noise before a configurable stabilization time, then a stable set
//! chosen by an [`UpsilonChoice`] policy. The policies cover every shape of
//! legal output the paper discusses — `U` containing a faulty process, `U`
//! missing a correct process, `U = Π`, `U` a strict subset of the correct
//! set — because the set-agreement protocol must cope with all of them.

use crate::noise::noise_set_at_least;
use rand::Rng;
use upsilon_sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

/// Whether `set` is a legal *stable* output of Υ^f for pattern `F`:
/// non-empty, of size at least `n + 1 − f`, and not the correct set.
pub fn upsilon_stable_legal(pattern: &FailurePattern, f: usize, set: ProcessSet) -> bool {
    let n_plus_1 = pattern.n_plus_1();
    !set.is_empty()
        && set.len() >= n_plus_1 - f
        && set.is_subset(ProcessSet::all(n_plus_1))
        && set != pattern.correct()
}

/// Policies for choosing the stable set `U` of a Υ^f history.
///
/// Each policy falls back to [`UpsilonChoice::ComplementOfCorrect`] when its
/// preferred shape is illegal under the given pattern (e.g. `All` in a
/// failure-free run), so every policy always yields a legal history.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UpsilonChoice {
    /// `U = Π − {p}` for the smallest correct `p`: always legal (a correct
    /// process is excluded, so `U ≠ correct(F)`; `|U| = n ≥ n + 1 − f`).
    /// In the paper's gladiator metaphor, there is a correct *citizen*.
    #[default]
    ComplementOfCorrect,
    /// `U = Π` when some process is faulty (then `Π ≠ correct(F)`): every
    /// process is a gladiator and at least one of them crashes.
    All,
    /// `U ⊇ faulty(F)`, padded with the smallest correct processes up to
    /// size `n + 1 − f`: a faulty gladiator exists whenever `faulty ≠ ∅`.
    FaultyPadded,
    /// A strict subset of `correct(F)` of size `n + 1 − f` when one exists:
    /// all gladiators are correct, but a correct citizen exists too.
    SubsetOfCorrect,
    /// A fixed set, validated against the pattern at construction.
    Fixed(ProcessSet),
    /// A uniformly random legal set derived from the oracle seed.
    RandomLegal,
}

fn choose_stable(
    pattern: &FailurePattern,
    f: usize,
    choice: UpsilonChoice,
    seed: u64,
) -> ProcessSet {
    let n_plus_1 = pattern.n_plus_1();
    let correct = pattern.correct();
    let faulty = pattern.faulty();
    let min_size = n_plus_1 - f;
    let fallback = || {
        let p = correct.min().expect("at least one correct process");
        ProcessSet::singleton(p).complement(n_plus_1)
    };
    let candidate = match choice {
        UpsilonChoice::ComplementOfCorrect => fallback(),
        UpsilonChoice::All => {
            if faulty.is_empty() {
                fallback()
            } else {
                ProcessSet::all(n_plus_1)
            }
        }
        UpsilonChoice::FaultyPadded => {
            if faulty.is_empty() {
                fallback()
            } else {
                let mut u = faulty;
                for p in correct {
                    if u.len() >= min_size {
                        break;
                    }
                    u.insert(p);
                }
                u
            }
        }
        UpsilonChoice::SubsetOfCorrect => {
            if correct.len() > min_size && min_size >= 1 {
                correct.iter().take(min_size).collect()
            } else {
                fallback()
            }
        }
        UpsilonChoice::Fixed(set) => {
            assert!(
                upsilon_stable_legal(pattern, f, set),
                "fixed set {set} is not a legal stable Υ^{f} output for {pattern}"
            );
            set
        }
        UpsilonChoice::RandomLegal => {
            let mut rng = crate::noise::noise_rng(seed, ProcessId(0), Time(u64::MAX));
            loop {
                let size = rng.gen_range(min_size..=n_plus_1);
                let mut s = ProcessSet::new();
                while s.len() < size {
                    s.insert(ProcessId(rng.gen_range(0..n_plus_1)));
                }
                if upsilon_stable_legal(pattern, f, s) {
                    break s;
                }
            }
        }
    };
    debug_assert!(upsilon_stable_legal(pattern, f, candidate));
    candidate
}

/// Pre-stabilization noise policies for [`UpsilonOracle`].
///
/// The definition allows *any* range values before stabilization; the two
/// policies are the interesting extremes:
///
/// * [`UpsilonNoise::Random`] — seeded per-(process, time) random sets.
///   Statistically this often *helps* the set-agreement protocols (a noisy
///   "citizen" view lets a value die early) — the average case.
/// * [`UpsilonNoise::ConstantAll`] — output `Π` everywhere until
///   stabilization. Everyone is a gladiator, no instability is ever
///   observed, and (under a lock-step schedule) no converge can commit:
///   the protocols provably wait for the true stabilization — the worst
///   case, used by the latency experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UpsilonNoise {
    /// Seeded random sets within the range.
    #[default]
    Random,
    /// The full set `Π` at every process until stabilization.
    ConstantAll,
}

/// The Υ^f oracle (Υ is the special case `f = n`).
///
/// ```
/// use upsilon_fd::{UpsilonChoice, UpsilonOracle};
/// use upsilon_sim::{FailurePattern, Oracle, ProcessId, Time};
///
/// let pattern = FailurePattern::failure_free(3);
/// let mut ups = UpsilonOracle::wait_free(&pattern, UpsilonChoice::default(), Time(100), 7);
/// // After stabilization every process sees the same legal set.
/// let u = ups.output(ProcessId(0), Time(100));
/// assert_eq!(u, ups.output(ProcessId(2), Time(5000)));
/// assert_ne!(u, pattern.correct());
/// ```
#[derive(Clone, Debug)]
pub struct UpsilonOracle {
    n_plus_1: usize,
    f: usize,
    stable: ProcessSet,
    stabilize_at: Time,
    seed: u64,
    noise: UpsilonNoise,
}

impl UpsilonOracle {
    /// A Υ^f history for `pattern`: noise before `stabilize_at`, then the
    /// stable set selected by `choice`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `1..=n`, if the pattern exceeds `E_f`, or if
    /// a [`UpsilonChoice::Fixed`] set is illegal.
    pub fn new(
        pattern: &FailurePattern,
        f: usize,
        choice: UpsilonChoice,
        stabilize_at: Time,
        seed: u64,
    ) -> Self {
        let n_plus_1 = pattern.n_plus_1();
        assert!((1..=n_plus_1 - 1).contains(&f), "Υ^f requires 1 ≤ f ≤ n");
        assert!(
            pattern.in_environment(f),
            "pattern {pattern} has more than f = {f} faults; Υ^f is only defined in E_f"
        );
        let stable = choose_stable(pattern, f, choice, seed);
        UpsilonOracle {
            n_plus_1,
            f,
            stable,
            stabilize_at,
            seed,
            noise: UpsilonNoise::Random,
        }
    }

    /// Replaces the pre-stabilization noise policy.
    pub fn with_noise(mut self, noise: UpsilonNoise) -> Self {
        self.noise = noise;
        self
    }

    /// The wait-free Υ (`f = n`).
    pub fn wait_free(
        pattern: &FailurePattern,
        choice: UpsilonChoice,
        stabilize_at: Time,
        seed: u64,
    ) -> Self {
        Self::new(pattern, pattern.n(), choice, stabilize_at, seed)
    }

    /// The stable set `U` this history converges to.
    pub fn stable_set(&self) -> ProcessSet {
        self.stable
    }

    /// When the history stabilizes.
    pub fn stabilize_at(&self) -> Time {
        self.stabilize_at
    }

    /// The resilience parameter `f`.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl Oracle<ProcessSet> for UpsilonOracle {
    fn output(&mut self, p: ProcessId, t: Time) -> ProcessSet {
        if t >= self.stabilize_at {
            self.stable
        } else {
            // Pre-stabilization: arbitrary values within the range
            // R_{Υ^f} = {U ⊆ Π : |U| ≥ n + 1 − f}, possibly different at
            // different processes.
            match self.noise {
                UpsilonNoise::Random => {
                    noise_set_at_least(self.seed, p, t, self.n_plus_1, self.n_plus_1 - self.f)
                }
                UpsilonNoise::ConstantAll => ProcessSet::all(self.n_plus_1),
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "Upsilon^{}(stable={}, at={})",
            self.f, self.stable, self.stabilize_at
        )
    }
}

/// Every legal stable Υ^f output for `pattern`, enumerated (small systems) —
/// used by exhaustive experiments: the set-agreement protocol must work for
/// *any* of these.
pub fn all_legal_stable_sets(pattern: &FailurePattern, f: usize) -> Vec<ProcessSet> {
    ProcessSet::all_nonempty_subsets(pattern.n_plus_1())
        .into_iter()
        .filter(|s| upsilon_stable_legal(pattern, f, *s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    fn pattern_one_crash(n_plus_1: usize) -> FailurePattern {
        FailurePattern::builder(n_plus_1)
            .crash(ProcessId(0), Time(10))
            .build()
    }

    #[test]
    fn legality_predicate_matches_the_definition() {
        let p = pattern_one_crash(3); // correct = {p2, p3}
        let correct = p.correct();
        assert!(!upsilon_stable_legal(&p, 2, ProcessSet::EMPTY));
        assert!(
            !upsilon_stable_legal(&p, 2, correct),
            "U must differ from correct(F)"
        );
        assert!(upsilon_stable_legal(
            &p,
            2,
            ProcessSet::singleton(ProcessId(0))
        ));
        assert!(upsilon_stable_legal(&p, 2, ProcessSet::all(3)));
        // Υ^1 over 3 processes requires |U| ≥ 3: only Π qualifies.
        assert!(!upsilon_stable_legal(
            &p,
            1,
            ProcessSet::singleton(ProcessId(0))
        ));
        assert!(upsilon_stable_legal(&p, 1, ProcessSet::all(3)));
    }

    #[test]
    fn paper_example_three_processes() {
        // §1: p1 fails, p2 and p3 correct; eventually Υ may output any
        // subset but {p2, p3}.
        let p = pattern_one_crash(3);
        let legal = all_legal_stable_sets(&p, 2);
        assert_eq!(
            legal.len(),
            6,
            "any non-empty subset except correct = 7 - 1"
        );
        assert!(!legal.contains(&p.correct()));
    }

    #[test]
    fn every_choice_policy_yields_legal_stable_sets() {
        let patterns = [
            FailurePattern::failure_free(4),
            pattern_one_crash(4),
            FailurePattern::builder(4)
                .crash(ProcessId(1), Time(5))
                .crash(ProcessId(2), Time(9))
                .build(),
        ];
        let choices = [
            UpsilonChoice::ComplementOfCorrect,
            UpsilonChoice::All,
            UpsilonChoice::FaultyPadded,
            UpsilonChoice::SubsetOfCorrect,
            UpsilonChoice::RandomLegal,
        ];
        for pat in &patterns {
            for f in 1..=pat.n() {
                if !pat.in_environment(f) {
                    continue;
                }
                for choice in choices {
                    let o = UpsilonOracle::new(pat, f, choice, Time(50), 3);
                    assert!(
                        upsilon_stable_legal(pat, f, o.stable_set()),
                        "{choice:?} under {pat} f={f} produced {}",
                        o.stable_set()
                    );
                }
            }
        }
    }

    #[test]
    fn output_is_stable_after_stabilization() {
        let p = pattern_one_crash(3);
        let mut o = UpsilonOracle::wait_free(&p, UpsilonChoice::All, Time(40), 11);
        let u = o.stable_set();
        for t in 40..200u64 {
            for i in 0..3 {
                assert_eq!(o.output(ProcessId(i), Time(t)), u);
            }
        }
    }

    #[test]
    fn noise_respects_the_range() {
        let p = FailurePattern::failure_free(5);
        let mut o = UpsilonOracle::new(&p, 2, UpsilonChoice::default(), Time(1000), 13);
        for t in 0..200u64 {
            for i in 0..5 {
                let s = o.output(ProcessId(i), Time(t));
                assert!(
                    s.len() >= 3,
                    "Υ^2 over 5 processes outputs sets of size ≥ 3"
                );
            }
        }
    }

    #[test]
    fn noise_actually_varies_before_stabilization() {
        let p = FailurePattern::failure_free(4);
        let mut o = UpsilonOracle::wait_free(&p, UpsilonChoice::default(), Time(500), 17);
        let distinct: std::collections::BTreeSet<u64> = (0..100u64)
            .map(|t| o.output(ProcessId(0), Time(t)).bits())
            .collect();
        assert!(
            distinct.len() > 5,
            "pre-stabilization output should look random"
        );
    }

    #[test]
    fn histories_are_deterministic() {
        let p = pattern_one_crash(4);
        let mut a = UpsilonOracle::wait_free(&p, UpsilonChoice::RandomLegal, Time(50), 23);
        let mut b = UpsilonOracle::wait_free(&p, UpsilonChoice::RandomLegal, Time(50), 23);
        for t in 0..100u64 {
            for i in 0..4 {
                assert_eq!(
                    a.output(ProcessId(i), Time(t)),
                    b.output(ProcessId(i), Time(t))
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a legal stable")]
    fn fixed_choice_validates_legality() {
        let p = pattern_one_crash(3);
        let _ = UpsilonOracle::wait_free(&p, UpsilonChoice::Fixed(p.correct()), Time(0), 0);
    }

    #[test]
    #[should_panic(expected = "E_f")]
    fn pattern_outside_environment_rejected() {
        let p = FailurePattern::builder(4)
            .crash(ProcessId(0), Time(0))
            .crash(ProcessId(1), Time(0))
            .build();
        let _ = UpsilonOracle::new(&p, 1, UpsilonChoice::default(), Time(0), 0);
    }

    #[test]
    fn constant_all_noise_outputs_pi_until_stabilization() {
        let p = pattern_one_crash(3);
        let mut o = UpsilonOracle::wait_free(&p, UpsilonChoice::default(), Time(50), 3)
            .with_noise(UpsilonNoise::ConstantAll);
        for t in 0..50u64 {
            assert_eq!(o.output(ProcessId(1), Time(t)), ProcessSet::all(3));
        }
        assert_eq!(o.output(ProcessId(1), Time(50)), o.stable_set());
    }

    #[test]
    fn describe_mentions_the_stable_set() {
        let p = pattern_one_crash(3);
        let o = UpsilonOracle::wait_free(&p, UpsilonChoice::All, Time(9), 0);
        assert!(o.describe().contains("Upsilon^2"));
        assert!(o.describe().contains("t=9"));
    }
}
