//! Direct (value-level) reductions between failure detectors (§4, §5.3).
//!
//! These reductions need no shared memory at all: each process applies a
//! pure map to its own module's output. The paper uses them to place Υ in
//! the detector hierarchy:
//!
//! * Ω → Υ: "every process outputs the complement of Ω in Π" — the stable
//!   leader is correct, so `Π − {leader} ≠ correct(F)`; legal for every
//!   `Υ^f` with `f ≥ 1`.
//! * Υ → Ω for two processes: "every process outputs the complement of Υ if
//!   this is a singleton, and outputs the process identifier otherwise".
//! * Ω_k → Υ^f (`k = f`): "to emulate Υ^f, every process simply outputs the
//!   complement of Ω_f in Π" — the complement has size `n + 1 − f` and
//!   misses a correct process.
//!
//! Reductions that *do* need shared memory (Υ¹ → Ω in `E_1`, Fig. 3's
//! generic extraction) live in `upsilon-extract`.

use crate::omega::{OmegaKOracle, OmegaOracle};
use upsilon_sim::{MappedOracle, Oracle, ProcessId, ProcessSet};

/// The Ω → Υ value map: the complement of the leader in `Π`.
pub fn omega_to_upsilon(n_plus_1: usize, leader: ProcessId) -> ProcessSet {
    ProcessSet::singleton(leader).complement(n_plus_1)
}

/// The Υ → Ω value map for a two-process system (§4): if the complement of
/// the Υ output is a singleton, elect that process; otherwise elect
/// yourself.
pub fn upsilon_to_omega_two_proc(me: ProcessId, upsilon: ProcessSet) -> ProcessId {
    let complement = upsilon.complement(2);
    if complement.len() == 1 {
        complement.min().expect("singleton")
    } else {
        me
    }
}

/// The Ω_k → Υ^f value map (`k = f`): the complement of the Ω_f set in `Π`.
pub fn omega_k_to_upsilon_f(n_plus_1: usize, omega_k_set: ProcessSet) -> ProcessSet {
    omega_k_set.complement(n_plus_1)
}

/// An Ω oracle complemented into a Υ oracle — a legal Υ (indeed Υ^f for any
/// `f ≥ 1`) history built from Ω, used as the Ω-based baseline in E9.
pub fn upsilon_from_omega(n_plus_1: usize, omega: OmegaOracle) -> impl Oracle<ProcessSet> {
    MappedOracle::new(omega, move |_p, _t, leader: ProcessId| {
        omega_to_upsilon(n_plus_1, leader)
    })
}

/// An Ω_k oracle complemented into a Υ^f oracle (`f = k`) — the paper's
/// "complement of Ω_n is a legal output for Υ" (§4), and the baseline for
/// Corollary 3: Fig. 1 running on this oracle is an Ω_n-based set-agreement
/// algorithm.
pub fn upsilon_f_from_omega_k(n_plus_1: usize, omega_k: OmegaKOracle) -> impl Oracle<ProcessSet> {
    MappedOracle::new(omega_k, move |_p, _t, set: ProcessSet| {
        omega_k_to_upsilon_f(n_plus_1, set)
    })
}

/// A two-process Υ oracle mapped into an Ω oracle (§4's other direction).
pub fn omega_from_upsilon_two_proc(
    upsilon: impl Oracle<ProcessSet> + 'static,
) -> impl Oracle<ProcessId> {
    MappedOracle::new(upsilon, move |p, _t, u: ProcessSet| {
        upsilon_to_omega_two_proc(p, u)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omega::{LeaderChoice, OmegaKChoice};
    use crate::spec::{check_omega, check_upsilon, check_upsilon_f};
    use crate::upsilon::{upsilon_stable_legal, UpsilonChoice, UpsilonOracle};
    use upsilon_sim::{FailurePattern, Time};

    fn sample<D: upsilon_sim::FdValue>(
        pattern: &FailurePattern,
        oracle: &mut dyn Oracle<D>,
        horizon: u64,
    ) -> Vec<(Time, ProcessId, D)> {
        let mut out = Vec::new();
        for t in 0..horizon {
            for i in 0..pattern.n_plus_1() {
                let p = ProcessId(i);
                if !pattern.is_crashed_at(p, Time(t)) {
                    out.push((Time(t), p, oracle.output(p, Time(t))));
                }
            }
        }
        out
    }

    #[test]
    fn complement_of_omega_is_legal_upsilon_for_every_f() {
        let pat = FailurePattern::builder(5)
            .crash(ProcessId(4), Time(3))
            .build();
        let leader = ProcessId(0); // correct
        let u = omega_to_upsilon(5, leader);
        assert_eq!(u.len(), 4);
        for f in 1..=4usize {
            assert!(upsilon_stable_legal(&pat, f, u), "f={f}");
        }
    }

    #[test]
    fn omega_complement_history_passes_upsilon_spec() {
        let pat = FailurePattern::builder(4)
            .crash(ProcessId(2), Time(5))
            .build();
        let omega = OmegaOracle::new(&pat, LeaderChoice::MinCorrect, Time(40), 3);
        let mut ups = upsilon_from_omega(4, omega);
        let samples = sample(&pat, &mut ups, 150);
        check_upsilon(&pat, &samples, 10).expect("complement of Ω is a legal Υ");
    }

    #[test]
    fn omega_k_complement_history_passes_upsilon_f_spec() {
        let pat = FailurePattern::builder(5)
            .crash(ProcessId(1), Time(4))
            .build();
        for f in 1..=4usize {
            let ok = OmegaKOracle::new(&pat, f, OmegaKChoice::default(), Time(30), 7);
            let mut ups = upsilon_f_from_omega_k(5, ok);
            let samples = sample(&pat, &mut ups, 120);
            check_upsilon_f(&pat, f, &samples, 10).unwrap_or_else(|e| panic!("f={f}: {e}"));
        }
    }

    #[test]
    fn two_process_upsilon_gives_omega() {
        // §4: in a system of 2 processes, Υ and Ω are equivalent.
        for (pat, seed) in [
            (FailurePattern::failure_free(2), 1u64),
            (
                FailurePattern::builder(2)
                    .crash(ProcessId(0), Time(8))
                    .build(),
                2,
            ),
            (
                FailurePattern::builder(2)
                    .crash(ProcessId(1), Time(8))
                    .build(),
                3,
            ),
        ] {
            for choice in [UpsilonChoice::ComplementOfCorrect, UpsilonChoice::All] {
                let ups = UpsilonOracle::wait_free(&pat, choice, Time(30), seed);
                let mut omega = omega_from_upsilon_two_proc(ups);
                let samples = sample(&pat, &mut omega, 120);
                check_omega(&pat, &samples, 10).unwrap_or_else(|e| panic!("{pat} {choice:?}: {e}"));
            }
        }
    }

    #[test]
    fn two_process_map_is_the_papers_rule() {
        // Complement singleton → elect it; otherwise elect self.
        assert_eq!(
            upsilon_to_omega_two_proc(ProcessId(0), ProcessSet::singleton(ProcessId(0))),
            ProcessId(1)
        );
        assert_eq!(
            upsilon_to_omega_two_proc(ProcessId(1), ProcessSet::all(2)),
            ProcessId(1)
        );
    }

    #[test]
    fn round_trip_omega_upsilon_omega_in_two_process_system() {
        // Ω → Υ → Ω preserves a legal Ω history.
        let pat = FailurePattern::builder(2)
            .crash(ProcessId(0), Time(6))
            .build();
        let omega = OmegaOracle::new(&pat, LeaderChoice::MinCorrect, Time(20), 5);
        let expect = omega.leader();
        let ups = upsilon_from_omega(2, omega);
        let mut back = omega_from_upsilon_two_proc(ups);
        let samples = sample(&pat, &mut back, 100);
        let report = check_omega(&pat, &samples, 10).expect("round trip stays legal");
        assert_eq!(report.value, expect);
    }
}
