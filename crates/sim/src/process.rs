//! Process identifiers and sets of processes.
//!
//! The paper (§3.1) considers a system `Π = {p_1, …, p_{n+1}}` of `n + 1`
//! processes. We index processes from `0` to `n` and render them as
//! `p1 … p(n+1)` in human-readable output so that displayed traces match the
//! paper's notation.

use std::fmt;

/// Identifier of a process in the system `Π`.
///
/// Internally zero-based; [`fmt::Display`] renders the paper's one-based
/// `p<i>` notation.
///
/// ```
/// use upsilon_sim::ProcessId;
/// let p = ProcessId(0);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Zero-based index of this process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// A set of processes, represented as a bitmask.
///
/// Supports at most [`ProcessSet::MAX_PROCESSES`] processes, far beyond any
/// configuration exercised by the paper's experiments. `ProcessSet` is `Copy`
/// and ordered, so it can be used directly as a failure-detector range value
/// (e.g. the range of Υ is `2^Π − {∅}`, §4).
///
/// ```
/// use upsilon_sim::{ProcessId, ProcessSet};
/// let u = ProcessSet::from_iter([ProcessId(0), ProcessId(2)]);
/// assert!(u.contains(ProcessId(2)));
/// assert_eq!(u.len(), 2);
/// assert_eq!(u.complement(3), ProcessSet::singleton(ProcessId(1)));
/// assert_eq!(u.to_string(), "{p1,p3}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSet(u64);

impl ProcessSet {
    /// Maximum number of processes a `ProcessSet` can hold.
    pub const MAX_PROCESSES: usize = 64;

    /// The empty set.
    pub const EMPTY: ProcessSet = ProcessSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        ProcessSet(0)
    }

    /// The set `Π = {p_1, …, p_{n_plus_1}}` of all processes.
    ///
    /// # Panics
    ///
    /// Panics if `n_plus_1` exceeds [`ProcessSet::MAX_PROCESSES`].
    pub fn all(n_plus_1: usize) -> Self {
        assert!(n_plus_1 <= Self::MAX_PROCESSES, "too many processes");
        if n_plus_1 == 64 {
            ProcessSet(u64::MAX)
        } else {
            ProcessSet((1u64 << n_plus_1) - 1)
        }
    }

    /// The singleton `{p}`.
    pub fn singleton(p: ProcessId) -> Self {
        assert!(p.0 < Self::MAX_PROCESSES, "process id out of range");
        ProcessSet(1u64 << p.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of processes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `p` belongs to the set.
    pub fn contains(self, p: ProcessId) -> bool {
        p.0 < Self::MAX_PROCESSES && self.0 & (1u64 << p.0) != 0
    }

    /// Inserts `p`, returning whether it was newly added.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let fresh = !self.contains(p);
        self.0 |= 1u64 << p.0;
        fresh
    }

    /// Removes `p`, returning whether it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let present = self.contains(p);
        self.0 &= !(1u64 << p.0);
        present
    }

    /// Set union.
    pub fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference `self − other`.
    pub fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !other.0)
    }

    /// Complement within a universe of `n_plus_1` processes (`Π − self`).
    pub fn complement(self, n_plus_1: usize) -> ProcessSet {
        Self::all(n_plus_1).difference(self)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊂ other` (proper subset).
    pub fn is_proper_subset(self, other: ProcessSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// The member with the smallest identifier, if any.
    pub fn min(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId(self.0.trailing_zeros() as usize))
        }
    }

    /// The member with the largest identifier, if any.
    pub fn max(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId(63 - self.0.leading_zeros() as usize))
        }
    }

    /// Iterates over members in increasing identifier order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Enumerates every non-empty subset of `Π` for a small system.
    ///
    /// Used by exhaustive tests and by oracle constructors that need "any
    /// legal output of Υ".
    pub fn all_nonempty_subsets(n_plus_1: usize) -> Vec<ProcessSet> {
        assert!(
            n_plus_1 <= 16,
            "exhaustive enumeration limited to 16 processes"
        );
        (1u64..(1u64 << n_plus_1)).map(ProcessSet).collect()
    }

    /// Raw bitmask accessor (stable across the crate; used for hashing into
    /// deterministic RNG streams).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Builds a set from a raw bitmask.
    pub fn from_bits(bits: u64) -> Self {
        ProcessSet(bits)
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`].
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ProcessId;
    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessId(i))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(ProcessId(0).to_string(), "p1");
        assert_eq!(ProcessId(4).to_string(), "p5");
    }

    #[test]
    fn all_has_expected_members() {
        let s = ProcessSet::all(3);
        assert_eq!(s.len(), 3);
        assert!(s.contains(ProcessId(0)));
        assert!(s.contains(ProcessId(2)));
        assert!(!s.contains(ProcessId(3)));
    }

    #[test]
    fn all_with_max_processes() {
        let s = ProcessSet::all(64);
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId(5)));
        assert!(!s.insert(ProcessId(5)));
        assert!(s.contains(ProcessId(5)));
        assert!(s.remove(ProcessId(5)));
        assert!(!s.remove(ProcessId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn complement_within_universe() {
        let u = ProcessSet::from_iter([ProcessId(0), ProcessId(2)]);
        let c = u.complement(4);
        assert_eq!(c, ProcessSet::from_iter([ProcessId(1), ProcessId(3)]));
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::from_iter([ProcessId(0), ProcessId(1)]);
        let b = ProcessSet::from_iter([ProcessId(1), ProcessId(2)]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), ProcessSet::singleton(ProcessId(1)));
        assert_eq!(a.difference(b), ProcessSet::singleton(ProcessId(0)));
        assert!(a.intersection(b).is_subset(a));
        assert!(a.intersection(b).is_proper_subset(a));
        assert!(!a.is_proper_subset(a));
    }

    #[test]
    fn min_max_members() {
        let s = ProcessSet::from_iter([ProcessId(3), ProcessId(1), ProcessId(5)]);
        assert_eq!(s.min(), Some(ProcessId(1)));
        assert_eq!(s.max(), Some(ProcessId(5)));
        assert_eq!(ProcessSet::EMPTY.min(), None);
        assert_eq!(ProcessSet::EMPTY.max(), None);
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = ProcessSet::from_iter([ProcessId(4), ProcessId(0), ProcessId(2)]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![ProcessId(0), ProcessId(2), ProcessId(4)]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn nonempty_subset_enumeration_is_complete() {
        let subsets = ProcessSet::all_nonempty_subsets(3);
        assert_eq!(subsets.len(), 7);
        assert!(subsets.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn display_set_matches_paper_notation() {
        let s = ProcessSet::from_iter([ProcessId(0), ProcessId(1), ProcessId(2)]);
        assert_eq!(s.to_string(), "{p1,p2,p3}");
        assert_eq!(ProcessSet::EMPTY.to_string(), "{}");
    }
}
