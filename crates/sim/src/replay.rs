//! Replayable run tokens (`UCHK1:` strings).
//!
//! A counterexample found by systematic exploration (`upsilon-check`) is a
//! point in the space quantified over by §3's definitions: a failure pattern
//! `F`, a schedule `S`, and the failure-detector values sampled along it.
//! [`ReplayToken`] packs the three into one printable ASCII string so a
//! violation can be stored in a test, pasted into a bug report, and
//! re-executed bit-identically under either engine via
//! [`SimBuilder::replay`].
//!
//! Format (version `UCHK1`), semicolon-separated `key=value` fields after
//! the prefix:
//!
//! ```text
//! UCHK1:n=3;c=-,4,-;q=-|0,1|-;s=0,1,2,0
//! ```
//!
//! * `n` — number of processes (`n+1` in the paper's notation).
//! * `c` — per-process crash time, `-` for correct processes.
//! * `q` — per-process failure-detector choice script, `|`-separated; each
//!   entry is a comma-separated list of candidate indices consumed by the
//!   k-th query of that process (`-` when empty). The simulator itself does
//!   not interpret these — they parameterize a scripted oracle such as
//!   `upsilon-check`'s menu oracle; histories remain functions of `(p, t)`.
//! * `s` — the schedule: the process index granted each step, in order.

use crate::builder::SimBuilder;
use crate::failure::FailurePattern;
use crate::oracle::FdValue;
use crate::process::ProcessId;
use crate::sched::Scripted;
use crate::time::Time;
use std::fmt;

/// A parse failure for a `UCHK1:` token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TokenError(String);

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid UCHK1 token: {}", self.0)
    }
}

impl std::error::Error for TokenError {}

fn bad(msg: impl Into<String>) -> TokenError {
    TokenError(msg.into())
}

/// A self-contained, replayable description of one explored run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayToken {
    /// Number of processes in the system.
    pub n_plus_1: usize,
    /// Crash time per process (`None` = correct), defining `F`.
    pub crashes: Vec<Option<Time>>,
    /// Scripted failure-detector candidate picks, per process, consumed in
    /// query order by a scripted oracle.
    pub fd_choices: Vec<Vec<u32>>,
    /// The schedule: which process took each granted step.
    pub schedule: Vec<ProcessId>,
}

impl ReplayToken {
    /// Renders the token as its canonical `UCHK1:` string.
    pub fn encode(&self) -> String {
        let c = self
            .crashes
            .iter()
            .map(|c| match c {
                Some(t) => t.0.to_string(),
                None => "-".to_string(),
            })
            .collect::<Vec<_>>()
            .join(",");
        let q = self
            .fd_choices
            .iter()
            .map(|picks| {
                if picks.is_empty() {
                    "-".to_string()
                } else {
                    picks
                        .iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                }
            })
            .collect::<Vec<_>>()
            .join("|");
        let s = if self.schedule.is_empty() {
            "-".to_string()
        } else {
            self.schedule
                .iter()
                .map(|p| p.index().to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("UCHK1:n={};c={c};q={q};s={s}", self.n_plus_1)
    }

    /// Parses a `UCHK1:` string produced by [`ReplayToken::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`TokenError`] describing the first malformed field.
    pub fn parse(token: &str) -> Result<ReplayToken, TokenError> {
        let body = token
            .trim()
            .strip_prefix("UCHK1:")
            .ok_or_else(|| bad("missing UCHK1: prefix"))?;
        let mut n_plus_1 = None;
        let mut crashes = None;
        let mut fd_choices = None;
        let mut schedule = None;
        for field in body.split(';') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad(format!("field without '=': {field:?}")))?;
            match key {
                "n" => {
                    let n: usize = value.parse().map_err(|_| bad("bad process count"))?;
                    if n == 0 {
                        return Err(bad("process count must be positive"));
                    }
                    n_plus_1 = Some(n);
                }
                "c" => {
                    let parsed: Result<Vec<Option<Time>>, TokenError> = value
                        .split(',')
                        .map(|c| match c {
                            "-" => Ok(None),
                            t => t
                                .parse::<u64>()
                                .map(|t| Some(Time(t)))
                                .map_err(|_| bad(format!("bad crash time {t:?}"))),
                        })
                        .collect();
                    crashes = Some(parsed?);
                }
                "q" => {
                    let parsed: Result<Vec<Vec<u32>>, TokenError> = value
                        .split('|')
                        .map(|picks| match picks {
                            "-" | "" => Ok(Vec::new()),
                            list => list
                                .split(',')
                                .map(|x| {
                                    x.parse::<u32>()
                                        .map_err(|_| bad(format!("bad fd pick {x:?}")))
                                })
                                .collect(),
                        })
                        .collect();
                    fd_choices = Some(parsed?);
                }
                "s" => {
                    let parsed: Result<Vec<ProcessId>, TokenError> = match value {
                        "-" | "" => Ok(Vec::new()),
                        list => list
                            .split(',')
                            .map(|x| {
                                x.parse::<usize>()
                                    .map(ProcessId)
                                    .map_err(|_| bad(format!("bad schedule entry {x:?}")))
                            })
                            .collect(),
                    };
                    schedule = Some(parsed?);
                }
                other => return Err(bad(format!("unknown field {other:?}"))),
            }
        }
        let n_plus_1 = n_plus_1.ok_or_else(|| bad("missing n field"))?;
        let crashes = crashes.ok_or_else(|| bad("missing c field"))?;
        let fd_choices = fd_choices.ok_or_else(|| bad("missing q field"))?;
        let schedule = schedule.ok_or_else(|| bad("missing s field"))?;
        if crashes.len() != n_plus_1 {
            return Err(bad(format!(
                "crash list has {} entries for {} processes",
                crashes.len(),
                n_plus_1
            )));
        }
        if fd_choices.len() != n_plus_1 {
            return Err(bad(format!(
                "fd choice list has {} entries for {} processes",
                fd_choices.len(),
                n_plus_1
            )));
        }
        if crashes.iter().all(Option::is_some) {
            return Err(bad("every process crashes; patterns need a correct one"));
        }
        if let Some(p) = schedule.iter().find(|p| p.index() >= n_plus_1) {
            return Err(bad(format!("schedule references out-of-range {p}")));
        }
        Ok(ReplayToken {
            n_plus_1,
            crashes,
            fd_choices,
            schedule,
        })
    }

    /// The failure pattern `F` the token describes.
    pub fn pattern(&self) -> FailurePattern {
        let mut b = FailurePattern::builder(self.n_plus_1);
        for (i, c) in self.crashes.iter().enumerate() {
            if let Some(t) = c {
                b = b.crash(ProcessId(i), *t);
            }
        }
        b.build()
    }
}

impl fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

impl<D: FdValue> SimBuilder<D> {
    /// Starts a builder that re-executes the run a [`ReplayToken`]
    /// describes: the token's failure pattern, its schedule as a
    /// [`Scripted`] adversary with no fallback, and a step budget equal to
    /// the schedule length. The caller supplies the same algorithms (and,
    /// if the run queries a failure detector, an oracle honouring
    /// [`ReplayToken::fd_choices`]) that produced the token; determinism
    /// then reproduces the original run event for event.
    pub fn replay(token: &ReplayToken) -> SimBuilder<D> {
        SimBuilder::new(token.pattern())
            .adversary(Scripted::new(token.schedule.clone()))
            .max_steps(token.schedule.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayToken {
        ReplayToken {
            n_plus_1: 3,
            crashes: vec![None, Some(Time(4)), None],
            fd_choices: vec![vec![], vec![0, 1], vec![]],
            schedule: vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(0)],
        }
    }

    #[test]
    fn round_trip() {
        let tok = sample();
        let s = tok.encode();
        assert_eq!(s, "UCHK1:n=3;c=-,4,-;q=-|0,1|-;s=0,1,2,0");
        assert_eq!(ReplayToken::parse(&s).unwrap(), tok);
    }

    #[test]
    fn empty_schedule_round_trips() {
        let tok = ReplayToken {
            n_plus_1: 2,
            crashes: vec![None, None],
            fd_choices: vec![vec![], vec![]],
            schedule: vec![],
        };
        assert_eq!(ReplayToken::parse(&tok.encode()).unwrap(), tok);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "nope",
            "UCHK1:n=0;c=;q=;s=-",
            "UCHK1:n=2;c=-,-;q=-|-",
            "UCHK1:n=2;c=-;q=-|-;s=-",
            "UCHK1:n=2;c=-,-;q=-|-;s=5",
            "UCHK1:n=2;c=1,2;q=-|-;s=-",
            "UCHK1:n=2;c=-,-;q=-|-;s=0;z=1",
        ] {
            assert!(ReplayToken::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn pattern_reflects_crashes() {
        let p = sample().pattern();
        assert!(p.is_crashed_at(ProcessId(1), Time(4)));
        assert!(!p.is_crashed_at(ProcessId(1), Time(3)));
        assert!(p.crash_time(ProcessId(0)).is_none());
    }

    #[test]
    fn replay_builder_scripts_the_schedule() {
        use crate::builder::algo;
        let tok = ReplayToken {
            n_plus_1: 2,
            crashes: vec![None, None],
            fd_choices: vec![vec![], vec![]],
            schedule: vec![ProcessId(1), ProcessId(0), ProcessId(1)],
        };
        let outcome = SimBuilder::<()>::replay(&tok)
            .spawn_all(|_| {
                algo(move |ctx| async move {
                    loop {
                        ctx.yield_step().await?;
                    }
                })
            })
            .run();
        assert_eq!(outcome.run.schedule(), tok.schedule);
    }
}
